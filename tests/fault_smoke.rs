//! Fault-enabled smoke scenario (mirrored by the CI workflow): a small
//! campaign under the `crash-partition` chaos preset must reproduce a
//! committed golden fingerprint — any change to the fault subsystem,
//! the retry policies, or the campaign's event order shows up here —
//! and the injected chaos must visibly damage outcomes relative to the
//! rates-only paper plan.

use azure_repro::prelude::*;

/// The smoke campaign: three busy days on six hosts, so every
/// `crash-partition` episode (front-end storm, partition stall, host-3
/// crash, network partition, host-5 gray failure) lands on real work.
fn smoke_cfg(faults: FaultPlan) -> ModisConfig {
    ModisConfig {
        workers: 48,
        days: 3,
        arrival_scale: 6.0,
        request_tiles: (2, 4),
        request_days: (4, 10),
        tile_pool: 12,
        day_pool: 30,
        faults,
        seed: 0xFA17,
        ..ModisConfig::quick()
    }
}

fn smoke_run(faults: FaultPlan) -> (u64, modis::CampaignReport) {
    let sim = Sim::new(0xFA17);
    let report = modis::campaign::run_campaign_on(&sim, smoke_cfg(faults));
    (sim.trace_fingerprint(), report)
}

/// Golden event-schedule fingerprint of the chaos smoke campaign.
/// Regenerate with
/// `cargo test --test fault_smoke -- --nocapture golden` after an
/// intentional schedule change, and note why in the commit message.
const GOLDEN_CHAOS_FINGERPRINT: u64 = 15355204976617541810;

#[test]
fn golden_chaos_campaign_fingerprint() {
    let (fp, report) = smoke_run(FaultPlan::crash_partition());
    println!(
        "chaos smoke fingerprint: {fp} ({} executions)",
        report.executions
    );
    assert!(
        report.executions > 500,
        "smoke too small: {}",
        report.executions
    );
    assert_eq!(
        fp, GOLDEN_CHAOS_FINGERPRINT,
        "chaos smoke campaign schedule changed; if intentional, update the golden"
    );
}

#[test]
fn chaos_preset_damages_outcomes() {
    let (_, chaos) = smoke_run(FaultPlan::crash_partition());
    let (_, calm) = smoke_run(FaultPlan::paper());
    // The front-end storm's 500s are the unambiguous chaos signature:
    // the paper's steady-state rate makes internal errors roughly
    // one-in-a-million, the storm makes them 15 % for its window.
    let internal = |r: &modis::CampaignReport| r.telemetry.count(Outcome::InternalStorageError);
    assert!(
        internal(&chaos) > internal(&calm),
        "storm 500s missing: chaos {} vs calm {}",
        internal(&chaos),
        internal(&calm)
    );
    // The partition window stretches storage round trips past the
    // client timeouts: strictly more transport-level failure classes.
    let transport = |r: &modis::CampaignReport| {
        r.telemetry.count(Outcome::OperationTimeout)
            + r.telemetry.count(Outcome::ConnectionFailure)
            + r.telemetry.count(Outcome::ServerBusy)
    };
    assert!(
        transport(&chaos) > transport(&calm),
        "chaos transport failures {} not above calm {}",
        transport(&chaos),
        transport(&calm)
    );
}

/// Acceptance check for the fault subsystem's calibration: the default
/// paper plan (steady-state rates, no episodes) must reproduce the
/// Table 2 outcome-class shares within 1 % absolute at full campaign
/// scale, as an emergent property of the mechanisms. Minutes of wall
/// time, so ignored by default; run with
/// `cargo test --release --test fault_smoke -- --ignored`.
#[test]
#[ignore = "full-scale campaign (minutes); run explicitly with -- --ignored"]
fn paper_plan_reproduces_table2_shares_at_full_scale() {
    let report = modis::run_campaign(ModisConfig::default());
    let total = report.executions as f64;
    for class in modis::taxonomy::TABLE {
        let Some(pct) = class.paper_pct else { continue };
        let measured = report.telemetry.count(class.outcome) as f64 / total;
        let delta = (measured - pct / 100.0).abs();
        assert!(
            delta <= 0.01,
            "{}: measured {:.4} vs paper {:.4} (|Δ| = {:.4} > 1 % absolute)",
            class.label,
            measured,
            pct / 100.0,
            delta
        );
    }
}
