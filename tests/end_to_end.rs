//! Cross-crate integration: a small cloud application provisioned
//! through the fabric, storing through the stamp, computing on hosts —
//! plus determinism guarantees across the whole stack.

use std::cell::RefCell;
use std::rc::Rc;

use azure_repro::prelude::*;

/// Deploy a worker role, stage data, fan work out over a queue, compute
/// on instances' hosts, upload results — the canonical bag-of-tasks app.
fn run_app(seed: u64) -> (Vec<f64>, u64, SimTime) {
    let sim = Sim::new(seed);
    let fc = FabricController::new(
        &sim,
        FabricConfig {
            startup_failure_p: 0.0,
            ..FabricConfig::default()
        },
    );
    let stamp = StorageStamp::standalone(&sim, StampConfig::default());
    stamp.blob_service().seed("in", "dataset", 40.0e6);

    let results: Rc<RefCell<Vec<f64>>> = Rc::default();
    let r = results.clone();
    let st = Rc::clone(&stamp);
    let app = sim.spawn(async move {
        // Provision 4 small workers.
        let dep = fc
            .create_deployment(DeploymentSpec::paper_test(RoleType::Worker, VmSize::Small))
            .await
            .unwrap();
        dep.run().await.unwrap();
        let dep = Rc::new(dep);

        // Seed the work queue.
        let seeder = st.attach_small_client();
        for i in 0..12 {
            seeder
                .queue
                .add("work", format!("chunk{i}"), 512.0)
                .await
                .unwrap();
        }

        // Workers drain the queue: download, compute, upload.
        let workers: Vec<_> = (0..dep.instance_count())
            .map(|i| {
                let (st, dep, r) = (Rc::clone(&st), Rc::clone(&dep), r.clone());
                async move {
                    let client = st.attach_small_client();
                    // Visibility must exceed the task length or the
                    // message reappears mid-task (§5.2's trap — tested
                    // explicitly in recommendations.rs).
                    while let Some(msg) = client
                        .queue
                        .receive("work", SimDuration::from_mins(30))
                        .await
                        .unwrap()
                    {
                        let dl = client.blob.get("in", "dataset").await.unwrap();
                        dep.execute_on(i, SimDuration::from_secs(60)).await;
                        let name = format!("out-{}", msg.message.body);
                        client.blob.put("out", &name, 5.0e6).await.unwrap();
                        client
                            .queue
                            .delete_message("work", msg.receipt)
                            .await
                            .unwrap();
                        r.borrow_mut().push(dl.rate_bps() / 1.0e6);
                    }
                }
            })
            .collect();
        join_all(workers).await;
        dep.suspend().await.unwrap();
        dep.delete().await.unwrap();
    });
    sim.run();
    app.try_take().expect("app finished");
    let out = results.borrow().clone();
    (out, sim.trace_fingerprint(), sim.now())
}

#[test]
fn bag_of_tasks_app_completes_all_chunks() {
    let (rates, _, end) = run_app(1);
    assert_eq!(rates.len(), 12, "all chunks processed");
    // Concurrent downloads on small instances: each between ~3 and 13 MB/s.
    for r in &rates {
        assert!((2.0..13.5).contains(r), "download rate {r} MB/s");
    }
    // Provisioning (~10 min) dominates; the whole run is under an hour.
    assert!(end.as_secs_f64() > 600.0);
    assert!(end.as_secs_f64() < 3600.0, "end={end}");
}

#[test]
fn whole_stack_is_deterministic() {
    let (a_rates, a_fp, a_end) = run_app(7);
    let (b_rates, b_fp, b_end) = run_app(7);
    assert_eq!(a_fp, b_fp, "event traces diverged");
    assert_eq!(a_rates, b_rates);
    assert_eq!(a_end, b_end);
}

#[test]
fn different_seeds_diverge() {
    let (_, a_fp, _) = run_app(7);
    let (_, b_fp, _) = run_app(8);
    assert_ne!(a_fp, b_fp);
}

#[test]
fn storage_failures_surface_typed_errors_not_panics() {
    let sim = Sim::new(3);
    let mut cfg = StampConfig {
        faults: FaultProfile::production(),
        ..Default::default()
    };
    cfg.faults.connection_fail_p = 0.3; // cranked
    let stamp = StorageStamp::standalone(&sim, cfg);
    stamp.blob_service().seed("d", "x", 1000.0);
    let client = stamp.attach_small_client();
    let h = sim.spawn(async move {
        let mut errs = 0;
        for _ in 0..50 {
            match client.blob.get("d", "x").await {
                Ok(_) => {}
                Err(StorageError::ConnectionFailed) => errs += 1,
                Err(e) => panic!("unexpected class {e}"),
            }
        }
        errs
    });
    sim.run();
    let errs: i32 = h.try_take().unwrap();
    assert!(errs > 3, "injection inactive: {errs}");
}
