//! The paper's §6 recommendations as executable claims: each test sets
//! up the scenario the recommendation addresses and verifies that
//! following the advice actually helps on the simulated platform.

use std::cell::RefCell;
use std::rc::Rc;

use azure_repro::prelude::*;
use simcore::combinators::join_all;

/// §6.1: "using data replication on the blob storage to expand the
/// server-side bandwidth limit" — striping 128 readers across two
/// replicas of the data beats hammering a single blob.
#[test]
fn replicating_hot_blobs_expands_server_bandwidth() {
    fn aggregate_mbps(replicas: usize) -> f64 {
        let sim = Sim::new(11);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        for rep in 0..replicas {
            stamp
                .blob_service()
                .seed("hot", &format!("data-{rep}"), 300.0e6);
        }
        let t0 = sim.now();
        let clients = 128;
        for c in 0..clients {
            let client = stamp.attach_small_client();
            let name = format!("data-{}", c % replicas);
            sim.spawn(async move {
                client.blob.get("hot", &name).await.unwrap();
            });
        }
        sim.run();
        clients as f64 * 300.0 / (sim.now() - t0).as_secs_f64()
    }
    let single = aggregate_mbps(1);
    let double = aggregate_mbps(2);
    // One blob caps near 400 MB/s; two replicas nearly double it.
    assert!((300.0..450.0).contains(&single), "single={single}");
    assert!(double > single * 1.5, "single={single} double={double}");
}

/// §6.1: "Multiple queues should be used for supporting many concurrent
/// readers/writers."
#[test]
fn multiple_queues_beat_one_for_many_writers() {
    fn makespan(queues: usize) -> f64 {
        let sim = Sim::new(12);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        let writers = 128;
        let per_writer = 30;
        for w in 0..writers {
            let client = stamp.attach_small_client();
            let q = format!("q{}", w % queues);
            sim.spawn(async move {
                for i in 0..per_writer {
                    client.queue.add(&q, format!("m{i}"), 512.0).await.unwrap();
                }
            });
        }
        sim.run();
        sim.now().as_secs_f64()
    }
    let one = makespan(1);
    let four = makespan(4);
    assert!(
        four < one * 0.55,
        "4 queues should cut the makespan roughly with the sharding factor: one={one:.1}s four={four:.1}s"
    );
}

/// §6.1: "users should avoid querying tables using property filters
/// under performance-critical or large concurrency circumstances" — on
/// a pre-populated partition the key-addressed query returns in tens of
/// milliseconds while the property filter burns tens of seconds or
/// times out.
#[test]
fn property_filters_are_catastrophically_slower_than_key_queries() {
    let sim = Sim::new(13);
    let stamp = StorageStamp::standalone(&sim, StampConfig::default());
    for i in 0..100_000 {
        stamp
            .table_service()
            .seed("t", Entity::new("p", format!("r{i:06}")));
    }
    let client = stamp.attach_small_client();
    let s = sim.clone();
    let h = sim.spawn(async move {
        let t0 = s.now();
        client.table.query_point("t", "p", "r000042").await.unwrap();
        let point = (s.now() - t0).as_secs_f64();
        let t0 = s.now();
        let res = client.table.query_filter("t", "p", |_| false).await;
        let scan = (s.now() - t0).as_secs_f64();
        (point, scan, res.is_err())
    });
    sim.run();
    let (point, scan, _timed_out) = h.try_take().unwrap();
    assert!(point < 0.2, "point query took {point}s");
    assert!(
        scan > point * 50.0,
        "scan ({scan}s) should dwarf the point query ({point}s)"
    );
}

/// §6.2: "If fast scaling out is important, hot-standbys may be
/// required if a 10 min delay is not acceptable" — adding capacity on
/// demand takes ~10–17 minutes; a suspended standby resumes much faster
/// than a cold create+run only in the sense that the package is staged,
/// so the honest comparison is on-demand add vs pre-provisioned idle
/// capacity (zero delay).
#[test]
fn scaling_out_on_demand_costs_ten_plus_minutes() {
    let sim = Sim::new(14);
    let fc = FabricController::new(
        &sim,
        FabricConfig {
            startup_failure_p: 0.0,
            ..FabricConfig::default()
        },
    );
    let h = sim.spawn(async move {
        let dep = fc
            .create_deployment(DeploymentSpec::paper_test(RoleType::Worker, VmSize::Small))
            .await
            .unwrap();
        dep.run().await.unwrap();
        let add = dep.add_instances().await.unwrap();
        add.duration.as_secs_f64()
    });
    sim.run();
    let add_secs = h.try_take().unwrap();
    assert!(
        add_secs > 600.0,
        "on-demand scale-out should take 10+ minutes, took {add_secs}s"
    );
    // A hot standby already running serves immediately: the delay it
    // avoids IS add_secs. Nothing further to measure; the cost trade is
    // economic (paper: "this option would incur a higher economic cost").
}

/// §6.1 (blob caching): re-reading a blob costs the same as the first
/// read — there is no server-side caching — so clients that re-use data
/// should cache locally. The saving equals the full transfer each time.
#[test]
fn repeated_blob_reads_pay_full_price_every_time() {
    let sim = Sim::new(15);
    let stamp = StorageStamp::standalone(&sim, StampConfig::default());
    stamp.blob_service().seed("d", "x", 30.0e6);
    let client = stamp.attach_small_client();
    let h = sim.spawn(async move {
        let a = client
            .blob
            .get("d", "x")
            .await
            .unwrap()
            .elapsed
            .as_secs_f64();
        let b = client
            .blob
            .get("d", "x")
            .await
            .unwrap()
            .elapsed
            .as_secs_f64();
        (a, b)
    });
    sim.run();
    let (first, second) = h.try_take().unwrap();
    assert!(
        (second / first - 1.0).abs() < 0.3,
        "second read should cost about the same: {first}s vs {second}s"
    );
    assert!(second > 1.0, "a 30 MB re-read is not free: {second}s");
}

/// §5.2/§6.3: the queue's built-in visibility-timeout retry is
/// insufficient for long tasks — a slow consumer's message reappears
/// and a second worker duplicates the work; the explicit monitor +
/// delete-by-receipt discipline catches this as a failed stale delete.
#[test]
fn visibility_timeout_redelivery_duplicates_work() {
    let sim = Sim::new(16);
    let stamp = StorageStamp::standalone(&sim, StampConfig::default());
    let slow = stamp.attach_small_client();
    let fast = stamp.attach_small_client();
    let s = sim.clone();
    let executions: Rc<RefCell<Vec<&'static str>>> = Rc::default();
    let ex = executions.clone();
    let h = sim.spawn(async move {
        slow.queue.add("tasks", "t1", 512.0).await.unwrap();
        // Slow worker receives with a 5 min visibility but takes 15 min.
        let m1 = slow
            .queue
            .receive("tasks", SimDuration::from_mins(5))
            .await
            .unwrap()
            .unwrap();
        ex.borrow_mut().push("slow-start");
        let slow_task = async {
            s.delay(SimDuration::from_mins(15)).await;
            slow.queue.delete_message("tasks", m1.receipt).await
        };
        // Meanwhile the message reappears and a fast worker grabs it.
        let fast_task = async {
            s.delay(SimDuration::from_mins(6)).await;
            let m2 = fast.queue.receive_default("tasks").await.unwrap().unwrap();
            ex.borrow_mut().push("fast-duplicate");
            fast.queue.delete_message("tasks", m2.receipt).await
        };
        let (slow_res, fast_res) = {
            let both = join_all(vec![
                Box::pin(slow_task) as std::pin::Pin<Box<dyn std::future::Future<Output = _>>>,
                Box::pin(fast_task),
            ])
            .await;
            (both[0].clone(), both[1].clone())
        };
        (slow_res, fast_res)
    });
    sim.run();
    let (slow_res, fast_res) = h.try_take().unwrap();
    assert_eq!(executions.borrow().len(), 2, "the task ran twice");
    // The fast duplicate deleted the message; the slow original's
    // receipt went stale — exactly the corruption hazard §5.2 describes.
    assert!(fast_res.is_ok());
    assert_eq!(slow_res.unwrap_err(), StorageError::NotFound);
}
