//! Determinism guarantees of the fault-injection subsystem: a fault
//! plan is part of the seed, not a source of nondeterminism. Identical
//! seed + identical plan must reproduce the campaign event-for-event —
//! including the serialized simtrace output — and a structurally
//! different plan must actually change the schedule.

use proptest::prelude::*;

use azure_repro::prelude::*;

/// A micro campaign: two busy simulated days on half a rack, small
/// enough to run several times per property case. `crash-partition`'s
/// episodes all start inside the first day, and 48 workers give the
/// pool six hosts, so the host-3 crash and host-5 gray failure both
/// land.
fn micro_cfg(seed: u64, faults: FaultPlan) -> ModisConfig {
    ModisConfig {
        workers: 48,
        days: 2,
        arrival_scale: 6.0,
        request_tiles: (2, 4),
        request_days: (4, 10),
        tile_pool: 12,
        day_pool: 30,
        faults,
        seed,
        ..ModisConfig::quick()
    }
}

/// Run the campaign with tracing on; return the kernel's order-sensitive
/// event fingerprint plus the fully serialized Chrome trace.
fn traced_run(seed: u64, faults: FaultPlan) -> (u64, String) {
    let sim = Sim::new(seed);
    let tracer = simtrace::Tracer::new(&sim);
    let guard = tracer.install();
    let report = modis::campaign::run_campaign_on(&sim, micro_cfg(seed, faults));
    drop(guard);
    assert!(report.executions > 0, "micro campaign ran nothing");
    (sim.trace_fingerprint(), tracer.chrome_trace())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same seed + same plan ⇒ byte-identical simtrace output and equal
    /// event fingerprints, for both a rates-only and an episode-heavy
    /// plan.
    #[test]
    fn same_seed_same_plan_is_byte_identical(seed in 1u64..1_000_000) {
        for plan in [FaultPlan::paper(), FaultPlan::crash_partition()] {
            let (fp_a, trace_a) = traced_run(seed, plan.clone());
            let (fp_b, trace_b) = traced_run(seed, plan);
            prop_assert_eq!(fp_a, fp_b, "event schedules diverged (seed {})", seed);
            prop_assert_eq!(trace_a.as_bytes(), trace_b.as_bytes(),
                "serialized traces diverged (seed {})", seed);
        }
    }

    /// Different plans on the same seed ⇒ different schedules: the
    /// chaos preset's episodes must actually perturb the campaign.
    #[test]
    fn different_plans_diverge(seed in 1u64..1_000_000) {
        let (fp_paper, _) = traced_run(seed, FaultPlan::paper());
        let (fp_chaos, _) = traced_run(seed, FaultPlan::crash_partition());
        prop_assert_ne!(fp_paper, fp_chaos,
            "crash-partition plan left the schedule untouched (seed {})", seed);
    }
}
