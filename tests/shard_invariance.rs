//! The simlab determinism contract (DESIGN.md §6): a campaign's merged
//! output — stdout, artifact files, anchor verdicts, manifest entry —
//! is byte-identical for any `--shards N`, because cells are assigned
//! to shards by a fixed rule and merged in canonical cell order.

use bench::campaigns::{self, CampaignOutput};
use simfault::FaultPlan;
use simlab::{CampaignEntry, Manifest, RunOpts};

fn run_at(name: &str, shards: usize, faults: Option<FaultPlan>) -> CampaignOutput {
    let opts = RunOpts {
        shards,
        faults,
        trace: None,
        tau: None,
    };
    campaigns::run(name, true, &opts).expect("known campaign name")
}

/// Wrap a campaign output in a one-campaign manifest with a fixed
/// header, so the normalized JSON isolates the campaign-dependent part.
fn manifest_json(out: CampaignOutput) -> String {
    Manifest {
        quick: true,
        shards: 0,
        faults: "n/a".to_string(),
        campaigns: vec![CampaignEntry {
            name: out.name.to_string(),
            cells: out.cells,
            wall_us: 123,
            anchors: out.anchors,
            artifacts: out.files.into_iter().map(|(n, _)| n).collect(),
        }],
    }
    .to_json_normalized()
}

fn assert_shard_invariant(name: &str, faults: Option<FaultPlan>) {
    let a = run_at(name, 1, faults.clone());
    let b = run_at(name, 8, faults);
    assert_eq!(
        a.stdout, b.stdout,
        "{name}: stdout differs between 1 and 8 shards"
    );
    assert_eq!(
        a.files, b.files,
        "{name}: artifact files differ between 1 and 8 shards"
    );
    let lines_a: Vec<String> = a.anchors.iter().map(|c| c.line()).collect();
    let lines_b: Vec<String> = b.anchors.iter().map(|c| c.line()).collect();
    assert_eq!(
        lines_a, lines_b,
        "{name}: anchor verdicts differ between 1 and 8 shards"
    );
    assert_eq!(
        manifest_json(a),
        manifest_json(b),
        "{name}: normalized manifest entry differs between 1 and 8 shards"
    );
}

#[test]
fn fig1_quick_is_shard_invariant() {
    assert_shard_invariant("fig1", None);
}

#[test]
fn fig3_quick_is_shard_invariant() {
    assert_shard_invariant("fig3", None);
}

#[test]
fn fig4_quick_is_shard_invariant() {
    assert_shard_invariant("fig4", None);
}

/// The day-segmented ModisAzure campaign: segments merge with
/// cumulative day offsets, so the reassembled Table 2 / Fig 7 must not
/// depend on which worker simulated which segment.
#[test]
fn modis_quick_is_shard_invariant() {
    assert_shard_invariant("modis", None);
}

/// The open-loop frontier campaign: arrival schedules are drawn
/// up-front from a dedicated RNG stream per cell, so the sweep (and the
/// knee/anchor lines derived from it) must not depend on sharding.
#[test]
fn frontier_quick_is_shard_invariant() {
    assert_shard_invariant("frontier", None);
}

/// Frontier under fault injection: crashes and partitions perturb the
/// open-loop measurements, but identically on every shard layout.
#[test]
fn frontier_quick_under_faults_is_shard_invariant() {
    let plan = FaultPlan::by_name("crash-partition").expect("preset");
    assert_shard_invariant("frontier", Some(plan));
}

/// Fault injection rides the same contract: the plan is installed on
/// whichever worker thread runs each cell, so an injected campaign is
/// as shard-invariant as a clean one.
#[test]
fn fig1_quick_under_faults_is_shard_invariant() {
    let plan = FaultPlan::by_name("crash-partition").expect("preset");
    assert_shard_invariant("fig1", Some(plan));
}

/// A fault plan must actually change the outcome (i.e. it reaches the
/// sweep workers) — guards against the historical gap where `--faults`
/// only armed the main thread.
#[test]
fn faults_reach_sharded_workers() {
    let clean = run_at("fig1", 8, None);
    let plan = FaultPlan::by_name("crash-partition").expect("preset");
    let injected = run_at("fig1", 8, Some(plan));
    assert_ne!(
        clean.stdout, injected.stdout,
        "crash-partition plan had no effect on sharded fig1 cells"
    );
}

/// The shedding campaign: admission decisions, budgeted retries and
/// the per-cell storm overlay all ride the same contract — the policy
/// state machines are RNG-free and the storm plan is merged and
/// installed per cell, so the sweep must not depend on sharding.
#[test]
fn shedding_quick_is_shard_invariant() {
    assert_shard_invariant("shedding", None);
}

/// Shedding under a user fault plan: the per-cell front-end storm is
/// *merged into* the `--faults` plan (nested install), and the merged
/// outcome must still be identical on every shard layout.
#[test]
fn shedding_quick_under_faults_is_shard_invariant() {
    let plan = FaultPlan::by_name("crash-partition").expect("preset");
    assert_shard_invariant("shedding", Some(plan));
}

/// The elastic campaign: each cell runs a full control loop (arrival
/// schedule, fabric deployments, policy decisions, billing) on its own
/// `Sim`, and its crash cells merge host-crash episodes into the cell
/// plan — none of which may depend on which worker ran the cell.
#[test]
fn elastic_quick_is_shard_invariant() {
    assert_shard_invariant("elastic", None);
}

/// Elastic under a user fault plan: storage fault rates and the
/// preset's own episodes layer under the campaign's per-cell crash
/// episodes, identically on every shard layout.
#[test]
fn elastic_quick_under_faults_is_shard_invariant() {
    let plan = FaultPlan::by_name("crash-partition").expect("preset");
    assert_shard_invariant("elastic", Some(plan));
}

/// The faas campaign: each cell draws its invocation trace from a
/// dedicated RNG stream before any fabric randomness, then runs tens
/// of thousands of container routings, policy decisions and emergent
/// cold starts — all byte-reproducible per cell, so the merged frontier
/// must not depend on which worker ran which cell.
#[test]
fn faas_quick_is_shard_invariant() {
    assert_shard_invariant("faas", None);
}

/// Faas under a user fault plan: the preset's episodes layer under the
/// campaign's own mid-window host outage (crash cells nest both), and
/// idle-container reaping off dead hosts must replay identically on
/// every shard layout.
#[test]
fn faas_quick_under_faults_is_shard_invariant() {
    let plan = FaultPlan::by_name("crash-partition").expect("preset");
    assert_shard_invariant("faas", Some(plan));
}

/// The geo campaign: every cell runs a whole multi-stamp set (stamps
/// with scoped RNG streams, the replication shipper, the health
/// monitor, the rebalancer) on its own `Sim`, and the merged output
/// includes the failover/rebalance decision log — none of which may
/// depend on which worker ran the cell.
#[test]
fn geo_quick_is_shard_invariant() {
    assert_shard_invariant("geo", None);
}

/// Geo under a user-level stamp-partition plan: a whole-run stamp-1
/// outage layers under the campaign's own per-cell stamp-0 partitions
/// (failover cells merge both), and death detection, promotions and
/// lost tails must replay identically on every shard layout.
#[test]
fn geo_quick_under_stamp_partition_is_shard_invariant() {
    use simfault::{FaultEpisode, FaultKind, StorageFaults};
    let plan = FaultPlan {
        name: "stamp-partition",
        storage: StorageFaults::clean(),
        episodes: vec![FaultEpisode {
            start_s: 4.0,
            duration_s: 600.0,
            kind: FaultKind::StampPartition { stamp: 1 },
        }],
    };
    assert_shard_invariant("geo", Some(plan));
}

/// The consistency campaign: every cell routes tens of thousands of
/// reads through the azroute policy layer (seed-pure RTT matrix,
/// per-client session tokens, staleness measured from the replication
/// logs) plus a front-door baseline cell — the merged frontier table,
/// the bounded-staleness audit and the routing fingerprints in the CSV
/// must not depend on which worker ran which cell.
#[test]
fn consistency_quick_is_shard_invariant() {
    assert_shard_invariant("consistency", None);
}

/// Consistency under a user-level stamp-partition plan: a whole-run
/// stamp-1 outage layers under the campaign's own per-cell stamp-0
/// partitions (partition cells merge both), and timeouts, escalations,
/// promotions and the RTO-window availability split must replay
/// identically on every shard layout.
#[test]
fn consistency_quick_under_stamp_partition_is_shard_invariant() {
    use simfault::{FaultEpisode, FaultKind, StorageFaults};
    let plan = FaultPlan {
        name: "stamp-partition",
        storage: StorageFaults::clean(),
        episodes: vec![FaultEpisode {
            start_s: 4.0,
            duration_s: 600.0,
            kind: FaultKind::StampPartition { stamp: 1 },
        }],
    };
    assert_shard_invariant("consistency", Some(plan));
}
