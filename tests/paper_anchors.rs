//! Light cross-crate anchor checks: scaled-down versions of every
//! experiment, each compared against the paper's published number via
//! the `cloudbench::anchors` table. (Heavier shape tests live in the
//! experiment modules; full-scale regeneration is the `bench` crate's
//! binaries, recorded in EXPERIMENTS.md.)

use cloudbench::anchors;
use cloudbench::experiments::{blob, queue, tcp};

#[test]
fn fig1_blob_anchors_scaled() {
    let r = blob::run(&blob::BlobScalingConfig {
        blob_bytes: 500.0e6,
        client_counts: vec![1, 32, 64, 128, 192],
        runs: 1,
        seed: 21,
    });
    let one = r.at(1).unwrap();
    assert!(anchors::FIG1_DL_1CLIENT_MBPS.matches(one.download_per_client_mbps));
    let ratio = r.at(32).unwrap().download_per_client_mbps / one.download_per_client_mbps;
    assert!(
        anchors::FIG1_DL_32CLIENT_RATIO.matches(ratio),
        "ratio={ratio}"
    );
    assert!(anchors::FIG1_DL_PEAK_MBPS.matches(r.at(128).unwrap().download_aggregate_mbps));
    assert!(anchors::FIG1_UL_64CLIENT_MBPS.matches(r.at(64).unwrap().upload_per_client_mbps));
    assert!(anchors::FIG1_UL_192CLIENT_MBPS.matches(r.at(192).unwrap().upload_per_client_mbps));
    assert!(anchors::FIG1_UL_PEAK_MBPS.matches(r.at(192).unwrap().upload_aggregate_mbps));
}

#[test]
fn fig3_queue_anchors_scaled() {
    let r = queue::run(&queue::QueueScalingConfig {
        message_bytes: 512.0,
        client_counts: vec![64, 128, 192],
        ops_per_client: 60,
        seed: 22,
    });
    assert!(
        anchors::FIG3_ADD_PEAK_OPS.matches(r.at(queue::QueueOp::Add, 64).unwrap().aggregate_ops_s)
    );
    assert!(anchors::FIG3_RECV_PEAK_OPS
        .matches(r.at(queue::QueueOp::Receive, 64).unwrap().aggregate_ops_s));
    assert!(anchors::FIG3_PEEK_128_OPS
        .matches(r.at(queue::QueueOp::Peek, 128).unwrap().aggregate_ops_s));
    assert!(anchors::FIG3_PEEK_192_OPS
        .matches(r.at(queue::QueueOp::Peek, 192).unwrap().aggregate_ops_s));
}

#[test]
fn fig4_latency_anchors() {
    let r = tcp::run_latency(&tcp::TcpLatencyConfig {
        pairs: 50,
        samples_per_pair: 400,
        seed: 23,
    });
    assert!(anchors::FIG4_LE_1MS.matches(r.fraction_at_most(1.0)));
    assert!(anchors::FIG4_LE_2MS.matches(r.fraction_at_most(2.0)));
}

#[test]
fn fig5_bandwidth_anchors_scaled() {
    let r = tcp::run_bandwidth(&tcp::TcpBandwidthConfig::quick());
    assert!(
        anchors::FIG5_GE_90MBPS.matches(r.fraction_at_least(90.0)),
        "ge90={}",
        r.fraction_at_least(90.0)
    );
    assert!(
        anchors::FIG5_LE_30MBPS.matches(r.fraction_at_most(30.0)),
        "le30={}",
        r.fraction_at_most(30.0)
    );
}
