//! # azure-repro — reproduction of *Early observations on the performance of Windows Azure* (HPDC'10)
//!
//! This facade crate re-exports the whole stack so examples and
//! downstream users need a single dependency:
//!
//! * [`simcore`] — deterministic discrete-event simulation kernel
//! * [`simtrace`] — cross-layer tracing and metrics over the kernel
//! * [`simfault`] — fault injection (declarative [`simfault::FaultPlan`]
//!   schedules) and the unified retry/backoff policies every layer uses
//! * [`dcnet`] — fluid-flow datacenter network (max-min fair sharing)
//! * [`azstore`] — the storage stamp: blob / table / queue services
//! * [`azgeo`] — multi-stamp geo-replication: placement, async log
//!   shipping, and stamp failover
//! * [`azroute`] — region-aware read routing over the geo layer and the
//!   tunable-consistency lattice (strong / session / bounded / eventual)
//! * [`fabric`] — the fabric controller: deployments, roles, sizes,
//!   lifecycle phases, host performance variation
//! * [`cloudbench`] — the paper's measurement harness and its seven
//!   experiments (Figs 1–5, Table 1)
//! * [`modis`] — ModisAzure, the eScience pipeline (Table 2, Fig 7)
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory and substitutions, and `EXPERIMENTS.md` for
//! paper-vs-measured results of every table and figure.
//!
//! ```
//! use azure_repro::prelude::*;
//!
//! let sim = Sim::new(7);
//! let stamp = StorageStamp::standalone(&sim, StampConfig::default());
//! stamp.blob_service().seed("data", "in.bin", 10.0e6);
//! let client = stamp.attach_small_client();
//! let h = sim.spawn(async move { client.blob.get("data", "in.bin").await.unwrap() });
//! sim.run();
//! assert!(h.try_take().unwrap().rate_bps() > 10.0e6);
//! ```

pub use azgeo;
pub use azroute;
pub use azstore;
pub use cloudbench;
pub use dcnet;
pub use fabric;
pub use modis;
pub use simcore;
pub use simfault;
pub use simtrace;

/// Convenience imports covering the common surface of the whole stack.
pub mod prelude {
    pub use azstore::{
        Entity, FaultProfile, PropValue, StampConfig, StorageAccountClient, StorageError,
        StorageStamp,
    };
    pub use cloudbench::{experiments, Anchor, CLIENT_COUNTS};
    pub use dcnet::{
        BackgroundConfig, BackgroundTraffic, HostId, LatencyModel, LinkModel, Network, Topology,
        TopologyConfig,
    };
    pub use fabric::{
        DeploymentSpec, FabricConfig, FabricController, HostPool, HostPoolConfig, Phase, RoleType,
        VmSize,
    };
    pub use modis::{run_campaign, ModisConfig, Outcome, TaskKind};
    pub use simcore::prelude::*;
    pub use simfault::{Backoff, FaultEpisode, FaultKind, FaultPlan, RetryPolicy};
}
