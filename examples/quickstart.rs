//! Quickstart: stand up a simulated Azure storage account and exercise
//! all three services from a small-instance client, printing the
//! latencies and bandwidths a 2009 developer would have seen.
//!
//! Run with: `cargo run --release --example quickstart`

use azure_repro::prelude::*;

fn main() {
    // Everything is deterministic given the seed.
    let sim = Sim::new(2010);
    let stamp = StorageStamp::standalone(&sim, StampConfig::default());
    // A 100 MB input blob already in the account.
    stamp.blob_service().seed("data", "input.bin", 100.0e6);

    let client = stamp.attach_small_client();
    let s = sim.clone();
    let run = sim.spawn(async move {
        // --- Blob: download the input, upload a result ---
        let dl = client.blob.get("data", "input.bin").await.unwrap();
        println!(
            "blob download: {:>8.1} MB in {:>8}  ({:.1} MB/s)",
            dl.bytes / 1.0e6,
            dl.elapsed,
            dl.rate_bps() / 1.0e6
        );
        let ul = client.blob.put("data", "output.bin", 25.0e6).await.unwrap();
        println!(
            "blob upload:   {:>8.1} MB in {:>8}  ({:.1} MB/s)",
            ul.bytes / 1.0e6,
            ul.elapsed,
            ul.bytes / ul.elapsed.as_secs_f64() / 1.0e6
        );

        // --- Table: insert an entity and read it back by key ---
        let t0 = s.now();
        let entity = Entity::new("jobs", "job-001")
            .with("state", PropValue::Str("done".into()))
            .with("bytes", PropValue::I64(25_000_000));
        client.table.insert("bookkeeping", entity).await.unwrap();
        let got = client
            .table
            .query_point("bookkeeping", "jobs", "job-001")
            .await
            .unwrap();
        println!(
            "table insert+query: {:>6}  (state = {:?})",
            s.now() - t0,
            got.get("state").unwrap()
        );

        // --- Queue: send a work item, receive it, acknowledge it ---
        let t0 = s.now();
        client
            .queue
            .add("work", "process output.bin", 512.0)
            .await
            .unwrap();
        let msg = client.queue.receive_default("work").await.unwrap().unwrap();
        client
            .queue
            .delete_message("work", msg.receipt)
            .await
            .unwrap();
        println!(
            "queue add+receive+delete: {:>6}  (body = {:?})",
            s.now() - t0,
            msg.message.body
        );
    });
    sim.run();
    run.try_take().expect("quickstart finished");
    println!(
        "\nsimulated {} of virtual time in {} events",
        sim.now(),
        sim.events_fired()
    );
}
