//! ModisAzure in miniature: run a scaled-down month of the paper's
//! satellite-imagery campaign and print the Table 2-style breakdown and
//! the Fig 7 daily timeout series.
//!
//! Run with: `cargo run --release --example satellite_pipeline`

use azure_repro::prelude::*;

fn main() {
    let mut cfg = ModisConfig::quick();
    // A bit smaller than the test config so the example runs in seconds.
    cfg.days = 14;
    cfg.arrival_scale = 0.8;

    println!(
        "running a {}-day ModisAzure campaign on {} workers ...\n",
        cfg.days, cfg.workers
    );
    let report = run_campaign(cfg);

    println!("{}", report.telemetry.render_table2());
    println!(
        "distinct tasks {}  executions {}  ({:.2} executions/task; paper ≈ 1.13)",
        report.distinct_tasks,
        report.executions,
        report.executions_per_task()
    );
    println!(
        "watchdog kills: {} ({:.3}% of executions; paper: 0.17% overall, up to ~16% daily)\n",
        report.monitor_kills,
        report.telemetry.overall_timeout_fraction() * 100.0,
    );

    // Compact Fig 7 sparkline.
    println!("daily VM-timeout fractions:");
    for (day, total, hits, frac) in report.telemetry.daily_timeout_rows() {
        if total == 0 {
            continue;
        }
        let bar = "#".repeat((frac * 400.0).round() as usize);
        println!("  day {day:>3}: {total:>6} execs {hits:>4} timeouts {bar}");
    }
}
