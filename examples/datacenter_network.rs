//! Instance-to-instance networking demo (paper §4.2): sample TCP RTTs
//! and run 2 GB transfers under background tenant traffic, printing the
//! Fig 4 / Fig 5 style distributions.
//!
//! Run with: `cargo run --release --example datacenter_network`

use std::cell::RefCell;
use std::rc::Rc;

use azure_repro::prelude::*;

fn main() {
    // --- Latency (Fig 4 flavour) ---
    let model = LatencyModel::default();
    let mut rng = SimRng::from_seed(42);
    let mut samples = SampleSet::new();
    for _ in 0..5000 {
        samples.push(model.sample_pair_rtt(&mut rng).as_millis_f64());
    }
    println!("TCP RTT between small VMs (5000 samples):");
    println!(
        "  median {:.2} ms,  p75 {:.2} ms,  p99 {:.2} ms,  max {:.1} ms",
        samples.median(),
        samples.percentile(0.75),
        samples.percentile(0.99),
        samples.max()
    );
    println!(
        "  {:.0}% <= 1 ms, {:.0}% <= 2 ms   (paper: ~50% and ~75%)\n",
        samples.fraction_at_most(1.0) * 100.0,
        samples.fraction_at_most(2.0) * 100.0
    );

    // --- Bandwidth under co-tenant traffic (Fig 5 flavour) ---
    let sim = Sim::new(9);
    let net = Network::new(&sim);
    let topo = Rc::new(Topology::build(&net, &TopologyConfig::default()));
    let bg = BackgroundTraffic::start(&topo, &BackgroundConfig::default());
    let rates: Rc<RefCell<Vec<(bool, f64)>>> = Rc::default();
    let (t, r, b, s) = (Rc::clone(&topo), rates.clone(), bg.clone(), sim.clone());
    sim.spawn(async move {
        s.delay(SimDuration::from_secs(10)).await;
        let mut rng = s.rng("pairs");
        for _ in 0..10 {
            let (src, dst) = t.random_pair(&mut rng);
            let stats = t.send(src, dst, 2.0e9).await;
            r.borrow_mut()
                .push((t.same_rack(src, dst), stats.avg_rate() / 1.0e6));
        }
        b.stop();
    });
    sim.run();
    println!("2 GB transfers under background tenant traffic:");
    for (same_rack, mbps) in rates.borrow().iter() {
        let placement = if *same_rack {
            "same rack "
        } else {
            "cross rack"
        };
        let bar = "#".repeat((mbps / 4.0).round() as usize);
        println!("  {placement} {mbps:>6.1} MB/s {bar}");
    }
    println!("  (GigE ceiling is 125 MB/s; cross-rack flows share oversubscribed uplinks)");
}
