//! A web role behind the platform load balancer: serve Poisson traffic,
//! watch requests spread round-robin over the instances, then suspend
//! and see the connection drain that makes web-role suspends slower
//! than worker suspends (paper §3, Table 1).
//!
//! Run with: `cargo run --release --example web_service`

use std::cell::RefCell;
use std::rc::Rc;

use azure_repro::prelude::*;

fn main() {
    let sim = Sim::new(77);
    let fc = FabricController::new(
        &sim,
        FabricConfig {
            startup_failure_p: 0.0,
            ..FabricConfig::default()
        },
    );
    let served: Rc<RefCell<Vec<usize>>> = Rc::default();
    let sv = served.clone();
    let s = sim.clone();
    let run = sim.spawn(async move {
        let dep = Rc::new(
            fc.create_deployment(DeploymentSpec::paper_test(RoleType::Web, VmSize::Small))
                .await
                .unwrap(),
        );
        let t = dep.run().await.unwrap();
        println!(
            "web deployment up: {} instances behind the LB after {}",
            dep.instance_count(),
            t.duration
        );

        // 10 minutes of Poisson traffic at ~2 req/s, ~300 ms of work each.
        let mut rng = s.rng("traffic");
        let end = s.now() + SimDuration::from_mins(10);
        let mut rejected = 0u32;
        while s.now() < end {
            let gap = Exp::with_mean(0.5).sample(&mut rng);
            s.delay(SimDuration::from_secs_f64(gap)).await;
            let work = SimDuration::from_secs_f64(rng.range_f64(0.1, 0.5));
            let (dep2, sv2) = (Rc::clone(&dep), sv.clone());
            s.spawn(async move {
                match dep2.load_balancer().unwrap().route() {
                    Ok(req) => {
                        let backend = req.backend();
                        dep2.execute_on(backend, work).await;
                        req.finish();
                        sv2.borrow_mut().push(backend);
                    }
                    Err(_) => { /* 503 */ }
                }
            });
            let _ = &mut rejected;
        }

        // Scale in: suspend drains in-flight connections first.
        let t0 = s.now();
        let sus = dep.suspend().await.unwrap();
        println!(
            "suspend: drained + stopped in {} (worker roles take ~40 s; web ~90 s per Table 1)",
            sus.duration
        );
        let _ = t0;
        dep.delete().await.unwrap();
        dep.load_balancer().unwrap().rejected_total()
    });
    sim.run();
    let rejected = run.try_take().unwrap();

    let served = served.borrow();
    println!(
        "\nserved {} requests (rejected {rejected}); per-backend spread:",
        served.len()
    );
    let mut counts = std::collections::BTreeMap::new();
    for &b in served.iter() {
        *counts.entry(b).or_insert(0u32) += 1;
    }
    for (backend, n) in counts {
        println!(
            "  instance {backend}: {n} requests {}",
            "#".repeat((n / 10) as usize)
        );
    }
}
