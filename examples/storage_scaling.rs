//! Mini storage-scaling study: sweep a few client counts against the
//! blob and queue services and watch the paper's concurrency behaviour
//! emerge (Fig 1's bandwidth decay, Fig 3's Add/Peek gap).
//!
//! Run with: `cargo run --release --example storage_scaling`

use azure_repro::prelude::*;
use experiments::{blob, queue};

fn main() {
    println!("== blob bandwidth vs concurrency (mini Fig 1) ==");
    let blob_result = blob::run(&blob::BlobScalingConfig {
        blob_bytes: 200.0e6,
        client_counts: vec![1, 8, 32, 128],
        runs: 1,
        seed: 7,
    });
    println!("{}", blob_result.render());
    let r1 = blob_result.at(1).unwrap().download_per_client_mbps;
    let r32 = blob_result.at(32).unwrap().download_per_client_mbps;
    println!(
        "per-client bandwidth at 32 clients is {:.0}% of a lone client (paper: ~50%)\n",
        r32 / r1 * 100.0
    );

    println!("== queue operations vs concurrency (mini Fig 3) ==");
    let q = queue::run(&queue::QueueScalingConfig {
        message_bytes: 512.0,
        client_counts: vec![1, 16, 64],
        ops_per_client: 50,
        seed: 7,
    });
    println!("{}", q.render());
    let peek = q.at(queue::QueueOp::Peek, 64).unwrap().aggregate_ops_s;
    let add = q.at(queue::QueueOp::Add, 64).unwrap().aggregate_ops_s;
    println!(
        "at 64 clients Peek sustains {:.0} ops/s vs Add's {:.0} — \
         Peek needs no replica synchronization (paper §3.3)",
        peek, add
    );
}
