//! Dynamic scaling walkthrough (paper §4.1 and recommendation §6.2):
//! deploy a worker role, start it, double it under load, and watch the
//! ~10-minute provisioning the paper warns about — then see why the
//! paper recommends hot standbys when fast scale-out matters.
//!
//! Run with: `cargo run --release --example dynamic_scaling`

use azure_repro::prelude::*;

fn main() {
    let sim = Sim::new(41);
    let fc = FabricController::new(
        &sim,
        FabricConfig {
            startup_failure_p: 0.0, // keep the walkthrough deterministic
            ..FabricConfig::default()
        },
    );
    let s = sim.clone();
    let run = sim.spawn(async move {
        println!(
            "t={:<10} submitting 4-instance small worker deployment",
            s.now()
        );
        let dep = fc
            .create_deployment(DeploymentSpec::paper_test(RoleType::Worker, VmSize::Small))
            .await
            .unwrap();
        println!(
            "t={:<10} package staged (create took {})",
            s.now(),
            dep.create_duration()
        );

        let run = dep.run().await.unwrap();
        println!(
            "t={:<10} all {} instances ready (run took {})",
            s.now(),
            dep.instance_count(),
            run.duration
        );
        for (i, off) in run.instance_ready_offsets.iter().enumerate() {
            println!("             instance {i} ready after {off}");
        }
        println!(
            "             -> the paper's observation 2: create+run ≈ {:.1} min",
            (dep.create_duration() + run.duration).as_secs_f64() / 60.0
        );

        // Load spike: double the deployment.
        println!("\nt={:<10} load spike! doubling instances ...", s.now());
        let add = dep.add_instances().await.unwrap();
        println!(
            "t={:<10} {} instances now ready (add took {} — observation 4: adds are slower)",
            s.now(),
            dep.instance_count(),
            add.duration
        );

        // Tear down.
        let sus = dep.suspend().await.unwrap();
        let del = dep.delete().await.unwrap();
        println!(
            "\nt={:<10} suspended in {}, deleted in {} (observation 6: deletes are ~6 s)",
            s.now(),
            sus.duration,
            del.duration
        );
        println!(
            "\n§6.2 takeaway: if a {}-minute scale-out delay is unacceptable, keep hot standbys.",
            (add.duration.as_secs_f64() / 60.0).round()
        );
    });
    sim.run();
    run.try_take().expect("walkthrough finished");
}
