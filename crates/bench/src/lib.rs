//! Campaign library and regeneration binaries.
//!
//! The [`campaigns`] module holds every paper artifact as a library
//! function driven by the `simlab` sharded runner; the `azlab` binary
//! is the driver:
//!
//! | Campaign | Artifact | Full-scale runtime (release, 1 core) |
//! |----------|----------|--------------------------------------|
//! | `fig1`   | Fig 1 — blob bandwidth vs concurrency | <1 s |
//! | `fig2`   | Fig 2 — table ops vs concurrency | ~25 s serial; sharded, its slowest cell |
//! | `fig3`   | Fig 3 — queue ops vs concurrency | ~3 s |
//! | `fig4`   | Fig 4 — TCP latency histogram | <1 s |
//! | `fig5`   | Fig 5 — TCP bandwidth histogram | ~23 s serial; sharded, its slowest cell |
//! | `table1` | Table 1 — VM lifecycle campaign (431 runs) | <1 s (one cell) |
//! | `modis`  | Table 2 + Fig 7 — ModisAzure campaign | ~3 min serial; scales toward 1/8th sharded |
//! | `frontier` | offered-load frontier sweeps | ~1 min at 4 shards |
//! | `shedding` | admission control past the knee | ~30 s |
//! | `elastic` | autoscaling vs the provisioning tax | ~90 s |
//! | `faas` | serverless keepalive frontier | ~10 s (18 cells, ~60 k invocations each) |
//! | `geo` | multi-stamp scale-out, geo-replication, failover | ~20 s (16 cells, 4 stamps, 10⁴ clients) |
//! | `consistency` | region-aware read routing, staleness-vs-latency frontier | ~40 s (30 cells, 4 modes × 3 placements) |
//! | `ablations` | the DESIGN.md mechanism ablations | ~10 s |
//!
//! Run everything with `azlab run all [--quick] [--shards N]`, or one
//! campaign with e.g. `azlab run fig3` (`table2` and `fig7` are aliases
//! for `modis`, which emits both artifact sets). The per-figure
//! binaries (`fig1` ... `fig7`, `table1`, `table2`, `ablations`) remain
//! as thin wrappers over the same campaign functions.
//!
//! All targets accept `--quick` for a scaled-down run (artifacts then
//! land in `results/quick/`), `--shards N` to spread cells over worker
//! threads (the merged output is byte-identical for any `N` — the
//! determinism contract in DESIGN.md §6), `--faults <preset>` to run
//! every cell under a `simfault` plan (`none`, `paper`,
//! `crash-partition`), and `--trace <path>` to dump a Chrome
//! trace-event JSON of the campaign's representative cell. Fault and
//! trace installation happen on whichever worker thread runs each cell,
//! so the flags apply to sharded sweeps exactly as to serial runs. The
//! `consistency` campaign additionally accepts `--tau SECONDS` to
//! override the clean-cell bounded-staleness bound (τ ≤ 0 is rejected
//! at parse with exit 2).

use std::fs;
use std::path::PathBuf;

pub mod campaigns;

/// Directory full-scale regeneration outputs land in (`results/` at the
/// workspace root).
pub fn results_dir() -> PathBuf {
    results_dir_for(false)
}

/// Results directory for a run: `results/` at full scale,
/// `results/quick/` under `--quick` (so quick runs never clobber the
/// checked-in full-scale artifacts).
pub fn results_dir_for(quick: bool) -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    if quick {
        dir = dir.join("quick");
    }
    let _ = fs::create_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dirs_are_creatable() {
        assert!(results_dir().ends_with("results"));
        assert!(results_dir_for(true).ends_with("results/quick"));
    }

    #[test]
    fn every_target_resolves() {
        for name in campaigns::ALL {
            assert_eq!(campaigns::canonical(name), Some(name));
        }
        assert_eq!(campaigns::canonical("table2"), Some("modis"));
        assert_eq!(campaigns::canonical("fig7"), Some("modis"));
        assert_eq!(campaigns::canonical("fig9"), None);
    }
}
