//! Shared plumbing for the regeneration binaries: anchor comparison
//! printing and CSV output into `results/` at the workspace root.
//!
//! Every binary regenerates one paper artifact:
//!
//! | Binary   | Artifact | Full-scale runtime (release) |
//! |----------|----------|------------------------------|
//! | `fig1`   | Fig 1 — blob bandwidth vs concurrency | ~1 min |
//! | `fig2`   | Fig 2 — table ops vs concurrency | ~2 min |
//! | `fig3`   | Fig 3 — queue ops vs concurrency | ~1 min |
//! | `fig4`   | Fig 4 — TCP latency histogram | seconds |
//! | `fig5`   | Fig 5 — TCP bandwidth histogram | ~1 min |
//! | `table1` | Table 1 — VM lifecycle campaign (431 runs) | ~1 min |
//! | `table2` | Table 2 — ModisAzure task breakdown | minutes |
//! | `fig7`   | Fig 7 — daily VM-timeout percentages | minutes |
//!
//! All accept `--quick` for a scaled-down run, and `--trace <path>` to
//! additionally run one representative single-point scenario with
//! `simtrace` enabled, dumping a Chrome trace-event JSON file to
//! `<path>` and printing the per-layer latency breakdown.
//!
//! All also accept `--faults <preset>` to run under a `simfault` fault
//! plan (`none`, `paper`, `crash-partition`). The campaign binaries
//! (`table2`, `fig7`) apply the plan to their main run; every binary
//! applies it to the `--trace` replay. The sweep-parallel main runs of
//! the microbenchmarks execute on worker threads the thread-local
//! injector does not reach, so for those the flag only shapes the
//! traced scenario.

use std::fs;
use std::path::{Path, PathBuf};

use cloudbench::Anchor;
use simcore::Sim;

/// True if `--quick` was passed.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The path given with `--trace <path>`, if any.
pub fn trace_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(PathBuf::from);
        }
    }
    None
}

/// The fault plan selected with `--faults <preset>`, if any.
///
/// An unknown preset name is a usage error: the process prints the
/// available presets and exits with status 2.
pub fn fault_plan() -> Option<simfault::FaultPlan> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--faults" {
            let name = args.next().unwrap_or_default();
            return match simfault::FaultPlan::by_name(&name) {
                Some(plan) => Some(plan),
                None => {
                    eprintln!(
                        "--faults {name:?}: unknown preset (expected one of: {})",
                        simfault::FaultPlan::PRESETS.join(", ")
                    );
                    std::process::exit(2);
                }
            };
        }
    }
    None
}

/// Run one representative scenario with tracing enabled and dump the
/// results: a Chrome trace-event JSON file (load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>) plus the per-layer
/// latency-breakdown table on stdout.
///
/// The scenario runs inline on the current thread (the tracer is
/// thread-local, so the sweep parallelism of the main experiment cannot
/// be traced); it gets a fresh `Sim` and must spawn its workload on it.
/// Any events still pending when the scenario returns are run to
/// completion before the trace is serialized.
pub fn run_traced(path: &Path, seed: u64, scenario: impl FnOnce(&Sim)) {
    let sim = Sim::new(seed);
    // `--faults` applies to the traced replay too. Scenarios that
    // install their own plan (the modis campaigns route it through
    // `ModisConfig::faults`) shadow this guard while they run.
    let plan = fault_plan();
    let _faults = plan.as_ref().map(|p| simfault::install(&sim, p));
    let tracer = simtrace::Tracer::new(&sim);
    let guard = tracer.install();
    scenario(&sim);
    sim.run();
    drop(guard);

    println!("\n{}", tracer.latency_breakdown());
    let json = tracer.chrome_trace();
    match fs::write(path, &json) {
        Ok(()) => println!(
            "[trace: {} spans, {} bytes -> {}]",
            tracer.span_count(),
            json.len(),
            path.display()
        ),
        Err(e) => eprintln!("trace: failed to write {}: {e}", path.display()),
    }
}

/// Directory regeneration outputs land in (`results/` in the workspace).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Write a text artifact into `results/`.
pub fn save(name: &str, contents: &str) {
    let path = results_dir().join(name);
    if fs::write(&path, contents).is_ok() {
        println!("[saved {}]", path.display());
    }
}

/// Render one paper-vs-measured anchor line.
pub fn anchor_line(anchor: &Anchor, measured: f64) -> String {
    let verdict = if anchor.matches(measured) {
        "OK "
    } else {
        "OFF"
    };
    format!(
        "  [{verdict}] {:<40} paper {:>10.3}  measured {:>10.3}  ({:+.1}%)",
        anchor.name,
        anchor.paper,
        measured,
        anchor.rel_err(measured) * 100.0
    )
}

/// Print a block of anchor comparisons with a heading.
pub fn print_anchors(title: &str, rows: &[(Anchor, f64)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for (a, m) in rows {
        out.push_str(&anchor_line(a, *m));
        out.push('\n');
    }
    print!("{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_line_marks_hits_and_misses() {
        let a = Anchor {
            name: "x",
            paper: 10.0,
            rel_tol: 0.1,
        };
        assert!(anchor_line(&a, 10.5).contains("OK"));
        assert!(anchor_line(&a, 20.0).contains("OFF"));
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}
