//! Table 1 campaign: worker/web role VM request times across the five
//! lifecycle phases (paper §4.1; 431 successful runs). The campaign is
//! one long sequential simulation, so it stays a single cell — the cell
//! context still routes `--faults`/`--trace` to whichever thread runs
//! it.

use cloudbench::anchors;
use cloudbench::experiments::vm::{self, VmLifecycleConfig};
use fabric::{Phase, RoleType, VmSize};
use simcore::report::Csv;
use simlab::{anchor, run_cells, RunOpts};

use super::{check, CampaignOutput};

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(_quick: bool) -> usize {
    1
}

/// Run the Table 1 campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let cfg = if quick {
        VmLifecycleConfig::quick()
    } else {
        VmLifecycleConfig::default()
    };
    eprintln!(
        "table1: collecting {} successful runs ...",
        cfg.successful_runs
    );
    let out = run_cells(1, opts, |_i, ctx| vm::run_ctx(&cfg, ctx));
    let result = &out.cells[0];

    let mut csv = Csv::new();
    csv.row(&["role", "size", "phase", "avg_s", "std_s", "n"]);
    for role in RoleType::ALL {
        for size in VmSize::ALL {
            for phase in Phase::ALL {
                if let Some(stats) = result.cells.get(&(role, size, phase)) {
                    csv.row(&[
                        role.to_string(),
                        size.to_string(),
                        phase.to_string(),
                        format!("{:.1}", stats.mean()),
                        format!("{:.1}", stats.std()),
                        stats.count().to_string(),
                    ]);
                }
            }
        }
    }

    let small_worker_startup = result
        .mean(RoleType::Worker, VmSize::Small, Phase::Create)
        .unwrap_or(0.0)
        + result
            .mean(RoleType::Worker, VmSize::Small, Phase::Run)
            .unwrap_or(0.0);
    let checks = vec![
        check(anchors::TAB1_SMALL_WORKER_STARTUP_S, small_worker_startup),
        check(anchors::TAB1_STARTUP_FAILURE_RATE, result.failure_rate()),
    ];
    let block = anchor::render_block("Paper anchors (Table 1):", &checks);

    let stdout = format!(
        "{}\nstartup failures: {} of {} start requests ({:.2}%)  [paper: 2.6%]\n{}",
        result.render(),
        result.failures,
        result.start_requests,
        result.failure_rate() * 100.0,
        block
    );
    CampaignOutput {
        name: "table1",
        cells: 1,
        stdout,
        files: vec![
            ("table1.csv".to_string(), csv.as_str().to_string()),
            ("table1.anchors.txt".to_string(), block),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
