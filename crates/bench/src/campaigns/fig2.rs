//! Fig 2 campaign: average per-client table performance vs concurrency
//! (paper §3.2), including the 64 kB high-concurrency insert cliff.
//! One cell per 4 kB sweep point plus one per 64 kB cliff point.

use cloudbench::experiments::table::{self, TableOp, TableScalingConfig, TableScalingResult};
use simcore::report::Csv;
use simlab::{run_cells, RunOpts};

use super::CampaignOutput;

const CLIFF_COUNTS: [usize; 3] = [64, 128, 192];

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(quick: bool) -> usize {
    let base = if quick {
        TableScalingConfig::quick()
    } else {
        TableScalingConfig::default()
    };
    base.client_counts.len() + CLIFF_COUNTS.len()
}

/// Run the Fig 2 campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let base = if quick {
        TableScalingConfig::quick()
    } else {
        TableScalingConfig::default()
    };
    let cliff_cfg = TableScalingConfig {
        entity_kb: 64,
        client_counts: CLIFF_COUNTS.to_vec(),
        inserts_per_client: if quick { 60 } else { 500 },
        queries_per_client: 0,
        updates_per_client: 0,
        ..base.clone()
    };
    let n_main = base.client_counts.len();
    eprintln!(
        "fig2: 4 kB sweep over {:?} clients + 64 kB insert cliff at {:?} ...",
        base.client_counts, cliff_cfg.client_counts
    );
    let out = run_cells(n_main + CLIFF_COUNTS.len(), opts, |i, ctx| {
        if i < n_main {
            table::run_point(&base, base.client_counts[i], ctx)
        } else {
            table::run_point(&cliff_cfg, CLIFF_COUNTS[i - n_main], ctx)
        }
    });
    let mut cells = out.cells;
    let cliff_rows = cells.split_off(n_main);
    let result = TableScalingResult {
        entity_kb: base.entity_kb,
        rows: cells.into_iter().flatten().collect(),
    };
    let cliff = TableScalingResult {
        entity_kb: cliff_cfg.entity_kb,
        rows: cliff_rows.into_iter().flatten().collect(),
    };

    let mut csv = Csv::new();
    csv.row(&[
        "op",
        "clients",
        "per_client_ops_s",
        "aggregate_ops_s",
        "ok",
        "timeouts",
        "busy",
        "clients_fully_ok",
    ]);
    for r in &result.rows {
        csv.row(&[
            r.op.to_string(),
            r.clients.to_string(),
            format!("{:.3}", r.per_client_ops_s),
            format!("{:.2}", r.aggregate_ops_s),
            r.ok.to_string(),
            r.timeouts.to_string(),
            r.busy.to_string(),
            r.clients_fully_ok.to_string(),
        ]);
    }

    let mut summary = String::new();
    summary.push_str("Paper anchors (Fig 2, shapes):\n");
    for op in TableOp::ALL {
        let peak = result.peak_clients(op);
        summary.push_str(&format!(
            "  {op}: aggregate throughput peaks at {peak} clients\n"
        ));
    }
    summary.push_str(
        "  paper: Insert/Query unsaturated at 192; Update peaks at 8; Delete peaks at 128\n",
    );
    summary.push_str("\n64 kB Insert (paper: 94/128 and 89/192 clients finished cleanly):\n");
    for clients in CLIFF_COUNTS {
        if let Some(r) = cliff.at(TableOp::Insert, clients) {
            summary.push_str(&format!(
                "  {} clients: {} finished without errors, {} timeouts\n",
                clients, r.clients_fully_ok, r.timeouts
            ));
        }
    }

    let stdout = format!("{}\n{}", result.render(), summary);
    CampaignOutput {
        name: "fig2",
        cells: n_main + CLIFF_COUNTS.len(),
        stdout,
        files: vec![
            ("fig2.csv".to_string(), csv.as_str().to_string()),
            ("fig2.anchors.txt".to_string(), summary),
        ],
        anchors: Vec::new(),
        trace_summary: out.trace_summary,
    }
}
