//! The ModisAzure campaign (paper §5.2): Table 2 — the task breakdown
//! and failure taxonomy — and Fig 7 — the daily VM-timeout percentages
//! — come from the same simulated Feb–Sep 2010 run, so they share this
//! one campaign, which emits both artifact sets.
//!
//! ## Day segmentation
//!
//! To shard a single months-long simulation, the campaign is split into
//! consecutive day segments (8 at full scale, 4 under `--quick`), each
//! an independent cell: its own request window, catalog draw and seed.
//! Cell `i` simulates `days_i` days; the merged result offsets each
//! segment's daily telemetry by the cumulative day count, and the
//! mergeable [`TelemetrySnapshot`] statistics (exact counter and
//! streamed-histogram merges) reassemble Table 2 and Fig 7 from the
//! segments. A segmented campaign is a different (equally valid)
//! realization than the old single-seed run — re-baselined results are
//! regenerated alongside this code.
//!
//! Segments warm-start (`ModisConfig::prewarm_days`): segment `i`
//! stages the source files covered by the first `offset_i` days of a
//! deterministic synthetic request history shared by all segments, so
//! source reuse ("results are saved along the way") carries across
//! segment boundaries and the Table 2 task mix matches a single long
//! run instead of re-downloading the catalog per segment.
//!
//! `run_campaign_on` installs the `simfault` injector from
//! `ModisConfig::faults` itself, so the `--faults` plan is routed
//! through each segment's config rather than through the cell context
//! (which would install the same plan a second time).

use ::modis::campaign::run_campaign_on;
use ::modis::{ModisConfig, Outcome, TelemetrySnapshot};
use cloudbench::anchors;
use simcore::prelude::SimDuration;
use simcore::report::Csv;
use simlab::{anchor, run_cells, RunOpts};

use super::{check, CampaignOutput};

/// What one day segment sends back across the shard boundary.
struct SegmentOut {
    snap: TelemetrySnapshot,
    days: u64,
    requests: u64,
    monitor_kills: u64,
    executions: u64,
    distinct_tasks: u64,
    elapsed: SimDuration,
    events: u64,
}

/// Split `days` into `segments` consecutive chunks (first chunks take
/// the remainder), returning each chunk's length.
fn segment_days(days: u64, segments: usize) -> Vec<u64> {
    let segments = segments.min(days.max(1) as usize).max(1) as u64;
    let base = days / segments;
    let rem = days % segments;
    (0..segments)
        .map(|i| base + if i < rem { 1 } else { 0 })
        .collect()
}

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(quick: bool) -> usize {
    let cfg = if quick {
        ModisConfig::quick()
    } else {
        ModisConfig::default()
    };
    segment_days(cfg.days, if quick { 4 } else { 8 }).len()
}

/// Run the combined Table 2 + Fig 7 campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let mut cfg = if quick {
        ModisConfig::quick()
    } else {
        ModisConfig::default()
    };
    if let Some(plan) = &opts.faults {
        eprintln!("modis: fault plan \"{}\"", plan.name);
        cfg.faults = plan.clone();
    }
    let seg_lens = segment_days(cfg.days, if quick { 4 } else { 8 });
    eprintln!(
        "modis: {}-day campaign in {} segments, {} workers (this simulates millions of task executions) ...",
        cfg.days,
        seg_lens.len(),
        cfg.workers
    );
    let mut seg_cfgs: Vec<ModisConfig> = Vec::with_capacity(seg_lens.len());
    let mut days_before = 0u64;
    for (i, &days) in seg_lens.iter().enumerate() {
        seg_cfgs.push(ModisConfig {
            days,
            seed: cfg
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64)),
            // Warm start: stage the sources the shared synthetic
            // history has covered before this segment's first day, so
            // the segmented campaign keeps the long run's source-reuse
            // ratio instead of re-downloading per segment.
            prewarm_days: days_before,
            prewarm_seed: cfg.seed,
            ..cfg.clone()
        });
        days_before += days;
    }
    // The plan is already in every segment's config; don't install it a
    // second time around the cell.
    let cell_opts = RunOpts {
        shards: opts.shards,
        faults: None,
        trace: opts.trace.clone(),
        tau: None,
    };
    let out = run_cells(seg_cfgs.len(), &cell_opts, |i, ctx| {
        let seg = seg_cfgs[i].clone();
        let days = seg.days;
        ctx.with_sim(seg.seed, |sim| {
            let report = run_campaign_on(sim, seg.clone());
            SegmentOut {
                snap: report.telemetry.snapshot(),
                days,
                requests: report.manager.requests,
                monitor_kills: report.monitor_kills,
                executions: report.executions,
                distinct_tasks: report.distinct_tasks,
                elapsed: report.elapsed,
                events: report.events,
            }
        })
    });

    let mut snap = TelemetrySnapshot::default();
    let mut day_offset = 0usize;
    let (mut requests, mut kills, mut executions, mut distinct, mut events) = (0, 0, 0u64, 0, 0);
    let mut elapsed = SimDuration::ZERO;
    for seg in &out.cells {
        snap.merge_offset(&seg.snap, day_offset);
        day_offset += seg.days as usize;
        requests += seg.requests;
        kills += seg.monitor_kills;
        executions += seg.executions;
        distinct += seg.distinct_tasks;
        events += seg.events;
        elapsed += seg.elapsed;
    }
    let per_task = if distinct == 0 {
        0.0
    } else {
        executions as f64 / distinct as f64
    };

    let table2_checks = vec![
        check(anchors::TAB2_SUCCESS_RATE, snap.fraction(Outcome::Success)),
        check(
            anchors::TAB2_VM_TIMEOUT_RATE,
            snap.overall_timeout_fraction(),
        ),
    ];
    let table2_block = anchor::render_block("Paper anchors (Table 2):", &table2_checks);
    let fig7_checks = vec![
        check(
            anchors::TAB2_VM_TIMEOUT_RATE,
            snap.overall_timeout_fraction(),
        ),
        check(anchors::FIG7_MAX_DAILY, snap.max_daily_timeout_fraction()),
    ];
    let fig7_block = anchor::render_block("Paper anchors (Fig 7):", &fig7_checks);

    let mut csv = Csv::new();
    csv.row(&["day", "executions", "vm_timeouts", "fraction"]);
    for (day, total, hits, frac) in snap.daily_timeout_rows() {
        csv.row(&[
            day.to_string(),
            total.to_string(),
            hits.to_string(),
            format!("{frac:.5}"),
        ]);
    }

    let mut stdout = format!("{}\n", snap.render_table2());
    stdout.push_str(&format!(
        "distinct tasks: {}   executions: {}   executions/task: {:.3}  [paper: ~2.7M distinct, 3.05M executions, 1.13]\n",
        distinct, executions, per_task
    ));
    stdout.push_str(&format!(
        "campaign: {} requests, {} monitor kills, {} sim events, drained in {}\n",
        requests, kills, events, elapsed
    ));
    stdout.push_str(&format!("{}\n", snap.render_duration_percentiles()));
    stdout.push_str(&format!("{}\n", snap.render_fig7()));
    stdout.push_str(&table2_block);
    stdout.push_str(&fig7_block);

    // The manifest gets each distinct anchor once; the per-artifact
    // blocks keep their historical contents (the timeout rate appears
    // in both).
    let mut anchors = table2_checks;
    anchors.push(fig7_checks[1].clone());

    CampaignOutput {
        name: "modis",
        cells: seg_lens.len(),
        stdout,
        files: vec![
            ("table2.txt".to_string(), snap.render_table2()),
            ("table2.anchors.txt".to_string(), table2_block),
            ("fig7.csv".to_string(), csv.as_str().to_string()),
            ("fig7.anchors.txt".to_string(), fig7_block),
        ],
        anchors,
        trace_summary: out.trace_summary,
    }
}
