//! Fig 1 campaign: average per-client blob download/upload bandwidth vs
//! concurrency (paper §3.1). One cell per swept client count.

use cloudbench::anchors;
use cloudbench::experiments::blob::{self, BlobScalingConfig, BlobScalingResult};
use simcore::report::Csv;
use simlab::{anchor, run_cells, RunOpts};

use super::{check, CampaignOutput};

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(quick: bool) -> usize {
    if quick {
        BlobScalingConfig::quick()
    } else {
        BlobScalingConfig::default()
    }
    .client_counts
    .len()
}

/// Run the Fig 1 campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let cfg = if quick {
        BlobScalingConfig::quick()
    } else {
        BlobScalingConfig::default()
    };
    eprintln!(
        "fig1: sweeping {:?} clients, {} runs each, {:.0} MB blob ...",
        cfg.client_counts,
        cfg.runs,
        cfg.blob_bytes / 1.0e6
    );
    let out = run_cells(cfg.client_counts.len(), opts, |i, ctx| {
        blob::run_point(&cfg, cfg.client_counts[i], ctx)
    });
    let result = BlobScalingResult { rows: out.cells };

    let mut csv = Csv::new();
    csv.row(&[
        "clients",
        "download_per_client_mbps",
        "download_aggregate_mbps",
        "upload_per_client_mbps",
        "upload_aggregate_mbps",
    ]);
    for r in &result.rows {
        csv.row(&[
            r.clients.to_string(),
            format!("{:.3}", r.download_per_client_mbps),
            format!("{:.2}", r.download_aggregate_mbps),
            format!("{:.3}", r.upload_per_client_mbps),
            format!("{:.2}", r.upload_aggregate_mbps),
        ]);
    }

    let mut checks = Vec::new();
    if let Some(r1) = result.at(1) {
        checks.push(check(
            anchors::FIG1_DL_1CLIENT_MBPS,
            r1.download_per_client_mbps,
        ));
        if let Some(r32) = result.at(32) {
            checks.push(check(
                anchors::FIG1_DL_32CLIENT_RATIO,
                r32.download_per_client_mbps / r1.download_per_client_mbps,
            ));
        }
    }
    if let Some(r128) = result.at(128) {
        checks.push(check(
            anchors::FIG1_DL_PEAK_MBPS,
            r128.download_aggregate_mbps,
        ));
    }
    if let Some(r64) = result.at(64) {
        checks.push(check(
            anchors::FIG1_UL_64CLIENT_MBPS,
            r64.upload_per_client_mbps,
        ));
    }
    if let Some(r192) = result.at(192) {
        checks.push(check(
            anchors::FIG1_UL_192CLIENT_MBPS,
            r192.upload_per_client_mbps,
        ));
        checks.push(check(
            anchors::FIG1_UL_PEAK_MBPS,
            r192.upload_aggregate_mbps,
        ));
    }
    let block = anchor::render_block("Paper anchors (Fig 1):", &checks);

    let stdout = format!("{}\n{}", result.render(), block);
    CampaignOutput {
        name: "fig1",
        cells: cfg.client_counts.len(),
        stdout,
        files: vec![
            ("fig1.csv".to_string(), csv.as_str().to_string()),
            ("fig1.anchors.txt".to_string(), block),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
