//! Geo campaign: the multi-stamp platform — aggregate scale-out,
//! cross-stamp behavior, stamp failover and hot-range rebalancing.
//!
//! Everything before this campaign measures one storage stamp. Here an
//! `azgeo` set of four stamps runs behind the location-service front
//! door, and three cell families probe the platform-level story:
//!
//! * **Clean sweeps** — open-loop offered load at 4x the single-stamp
//!   frontier nominals, swept through the aggregate knee under
//!   home-stamp affinity. The aggregate peak goodput must land on
//!   4 x the Fig 1–3 closed-loop peaks (the scale-out anchors): with
//!   balanced placement every stamp runs at the same operating point
//!   the single-stamp frontier swept, so the platform ceiling is
//!   linear in stamps or the composition is broken.
//! * **Failover cells** — one per service at sub-knee load with a
//!   stamp-0 partition opening mid-run. The health monitor's missed
//!   probes declare the stamp dead, secondaries are promoted, and the
//!   cell measures RTO (exactly the closed-form detection+promotion
//!   time, anchored) and RPO (the abandoned unshipped tail — positive
//!   under asynchronous replication, anchored as an indicator; the
//!   queue cell is the verdict cell because only mutations replicate).
//! * **A rebalance rider** — queue load skewed hard onto one account
//!   (`u^4` popularity) with per-stamp token-bucket admission, so the
//!   hot stamp sheds past the rebalancer's threshold and the busiest
//!   account migrates to the coldest stamp. Decisions land in the
//!   byte-reproducible `geo.decisions.txt` log.

use azgeo::{run_geo, GeoConfig, GeoResult};
use cloudbench::anchors;
use cloudbench::experiments::stamp_config;
use simcore::report::{num, AsciiTable, Csv};
use simfault::{FaultEpisode, FaultKind, FaultPlan};
use simlab::{anchor, run_cells, RunOpts};
use simload::{ArrivalProcess, Workload};

use super::{check, CampaignOutput};

/// Stamps in the geo set (equal capacity weights).
const STAMPS: usize = 4;
/// Placement seed for the location service (fixed: the account→stamp
/// map is part of the campaign's deterministic contract).
const PLACEMENT_SEED: u64 = 0xA2;

/// The three swept services.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    Blob,
    Table,
    Queue,
}

impl Service {
    fn name(self) -> &'static str {
        match self {
            Service::Blob => "blob",
            Service::Table => "table",
            Service::Queue => "queue",
        }
    }

    /// Throughput unit for reporting (blob in MB/s, others in ops/s).
    fn unit(self) -> &'static str {
        match self {
            Service::Blob => "MB/s",
            _ => "ops/s",
        }
    }
}

/// Cell family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Home-affinity Poisson sweep point.
    Clean,
    /// Mid-run stamp-0 partition: failover, RTO/RPO.
    Failover,
    /// Skewed load + admission: the rebalancer migrates hot ranges.
    Rebalance,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Clean => "clean",
            Kind::Failover => "failover",
            Kind::Rebalance => "rebalance",
        }
    }
}

/// Per-service sweep parameters (aggregate = STAMPS x the single-stamp
/// frontier nominal, so each stamp sees the frontier's operating
/// point).
struct ServicePlan {
    service: Service,
    workload: Workload,
    /// Aggregate nominal capacity across the set (ops/s).
    nominal_ops_s: f64,
    /// Latency SLO (seconds from the scheduled instant).
    deadline_s: f64,
}

/// Full cell grid + windows for one mode.
struct Plan {
    services: Vec<ServicePlan>,
    multipliers: Vec<f64>,
    /// Multiplier the failover cells run at (sub-knee: the surviving
    /// stamps must have headroom to absorb redirected accounts).
    failover_multiplier: f64,
    /// Multiplier the rebalance rider runs at.
    rebalance_multiplier: f64,
    warmup_s: f64,
    window_s: f64,
    /// Client VMs across the whole set.
    fleet: usize,
    /// Storage accounts placed over the stamps.
    accounts: u32,
    /// Stamp-0 partition opening instant for failover cells.
    fault_start_s: f64,
    seed: u64,
}

/// One grid entry.
#[derive(Clone, Copy)]
struct Cell {
    si: usize,
    multiplier: f64,
    kind: Kind,
}

impl Plan {
    fn new(quick: bool) -> Plan {
        let blob_bytes = if quick { 2e6 } else { 8e6 };
        let services = vec![
            ServicePlan {
                service: Service::Blob,
                workload: Workload::BlobGet { blob_bytes },
                nominal_ops_s: STAMPS as f64 * 400e6 / blob_bytes,
                deadline_s: if quick { 1.0 } else { 4.0 },
            },
            ServicePlan {
                service: Service::Table,
                workload: Workload::TableQuery {
                    entities: 512,
                    entity_kb: 4,
                },
                nominal_ops_s: STAMPS as f64 * 3900.0,
                deadline_s: 0.08,
            },
            ServicePlan {
                service: Service::Queue,
                workload: Workload::QueueAdd {
                    message_bytes: 512.0,
                },
                nominal_ops_s: STAMPS as f64 * 585.0,
                deadline_s: 0.5,
            },
        ];
        Plan {
            services,
            multipliers: if quick {
                vec![0.85, 1.0]
            } else {
                vec![0.5, 0.85, 1.0, 1.15]
            },
            // Quick failover cells run at half load purely for wall
            // clock; RTO/RPO do not depend on the offered rate.
            failover_multiplier: if quick { 0.5 } else { 0.85 },
            rebalance_multiplier: 0.85,
            warmup_s: if quick { 2.0 } else { 5.0 },
            window_s: if quick { 8.0 } else { 15.0 },
            fleet: if quick { 256 } else { 10_000 },
            accounts: if quick { 64 } else { 1024 },
            // Probes tick every 2 s: partition at 3 s (quick) is first
            // missed at 4, declared at 8, promoted at 13 (after the
            // 10 s horizon, still deterministic); at 8 s (full) it is
            // missed at 8, declared at 12, promoted at 17 — inside the
            // 20 s horizon, so the post-failover regime is measured.
            fault_start_s: if quick { 3.0 } else { 8.0 },
            seed: 0x6E0,
        }
    }

    /// Canonical cell order (the shard-merge contract): the Poisson
    /// sweep per service, then one failover cell per service, then the
    /// queue rebalance rider.
    fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for (si, _) in self.services.iter().enumerate() {
            for &m in &self.multipliers {
                cells.push(Cell {
                    si,
                    multiplier: m,
                    kind: Kind::Clean,
                });
            }
        }
        for (si, _) in self.services.iter().enumerate() {
            cells.push(Cell {
                si,
                multiplier: self.failover_multiplier,
                kind: Kind::Failover,
            });
        }
        cells.push(Cell {
            si: 2,
            multiplier: self.rebalance_multiplier,
            kind: Kind::Rebalance,
        });
        cells
    }

    fn config(&self, c: &Cell) -> GeoConfig {
        let sp = &self.services[c.si];
        GeoConfig {
            stamps: STAMPS,
            accounts: self.accounts,
            workload: sp.workload,
            process: ArrivalProcess::Poisson,
            offered_ops_s: sp.nominal_ops_s * c.multiplier,
            warmup_s: self.warmup_s,
            window_s: self.window_s,
            fleet: self.fleet,
            deadline_s: sp.deadline_s,
            // `u^4` popularity: the hottest account alone draws ~18 %
            // (full, 1024 accounts) to ~35 % (quick, 64) of all
            // arrivals, pushing its stamp well past the admission rate
            // in both modes.
            skew_alpha: (c.kind == Kind::Rebalance).then_some(4.0),
            rebalance: c.kind == Kind::Rebalance,
            placement_seed: PLACEMENT_SEED,
        }
    }
}

/// Planned cell count for one mode (the bench report records this
/// without executing the campaign).
pub fn cell_count(quick: bool) -> usize {
    Plan::new(quick).cells().len()
}

/// One measured cell.
struct Point {
    service: Service,
    kind: Kind,
    multiplier: f64,
    unit_scale: f64,
    r: GeoResult,
}

impl Point {
    fn offered(&self) -> f64 {
        self.r.offered_ops_s * self.unit_scale
    }

    fn goodput(&self) -> f64 {
        self.r.goodput_ops_s * self.unit_scale
    }
}

/// Run the geo campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let plan = Plan::new(quick);
    let cells = plan.cells();
    eprintln!(
        "geo: {} stamps, {} accounts, fleet {}, x{:?} aggregate sweep + {} failover + 1 rebalance cells ({} s windows) ...",
        STAMPS,
        plan.accounts,
        plan.fleet,
        plan.multipliers,
        plan.services.len(),
        plan.window_s,
    );
    let out = run_cells(cells.len(), opts, |i, ctx| {
        let c = &cells[i];
        let cfg = plan.config(c);
        // Failover cells layer the stamp-0 partition on top of whatever
        // `--faults` plan the run carries (`install` nests, restoring
        // the outer plan on drop).
        let fault = (c.kind == Kind::Failover).then(|| {
            let mut fp = ctx.fault_plan().cloned().unwrap_or_else(FaultPlan::none);
            fp.episodes.push(FaultEpisode {
                start_s: plan.fault_start_s,
                duration_s: 600.0,
                kind: FaultKind::StampPartition { stamp: 0 },
            });
            fp
        });
        let mut base = stamp_config(ctx);
        if c.kind == Kind::Rebalance {
            // Per-stamp admission at the single-stamp queue nominal:
            // the skewed hot stamp sheds, the cold ones do not — the
            // signal the rebalancer keys on.
            base.admission = azstore::AdmissionConfig::TokenBucket {
                rate_ops_s: 585.0,
                burst: 32.0,
            };
        }
        let seed = plan.seed ^ ((c.si as u64) << 8) ^ ((i as u64) << 16);
        ctx.with_sim(seed, |sim| {
            let _fault = fault.as_ref().map(|fp| simfault::install(sim, fp));
            run_geo(sim, base, &cfg)
        })
    });
    let points: Vec<Point> = out
        .cells
        .into_iter()
        .zip(&cells)
        .map(|(r, c)| {
            let sp = &plan.services[c.si];
            let unit_scale = match sp.service {
                Service::Blob => sp.workload.bytes_per_op() / 1e6,
                _ => 1.0,
            };
            Point {
                service: sp.service,
                kind: c.kind,
                multiplier: c.multiplier,
                unit_scale,
                r,
            }
        })
        .collect();

    let mut table = AsciiTable::new(vec![
        "service",
        "cell",
        "x nominal",
        "offered",
        "goodput",
        "unit",
        "p99 ms",
        "SLO viol",
        "unavail",
        "promos",
        "rto s",
        "lost",
        "moves",
    ])
    .with_title("Geo platform — 4-stamp aggregate, failover, rebalance".to_string());
    let mut csv = Csv::new();
    let mut hdr = vec![
        "service".to_string(),
        "cell".to_string(),
        "multiplier".to_string(),
        "offered_ops_s".to_string(),
        "scheduled_ops_s".to_string(),
        "achieved_ops_s".to_string(),
        "goodput_ops_s".to_string(),
        "offered_units".to_string(),
        "goodput_units".to_string(),
        "unit".to_string(),
        "p50_ms".to_string(),
        "p99_ms".to_string(),
        "violation_frac".to_string(),
        "completed".to_string(),
        "failed".to_string(),
    ];
    for s in 0..STAMPS {
        hdr.push(format!("s{s}_ops"));
    }
    hdr.extend(
        [
            "admit_shed",
            "latch_shed",
            "revalidations",
            "redirects",
            "remote_ops",
            "unavailable_ops",
            "ship_batches",
            "ship_entries",
            "rpo_max_s",
            "rpo_at_promotion_s",
            "lost_entries",
            "promotions",
            "rto_s",
            "moves",
            "placement_fp",
        ]
        .map(String::from),
    );
    csv.row(&hdr);
    for p in &points {
        table.row(vec![
            p.service.name().to_string(),
            p.kind.name().to_string(),
            num(p.multiplier, 2),
            num(p.offered(), 1),
            num(p.goodput(), 1),
            p.service.unit().to_string(),
            num(p.r.slo.quantile_ms(0.99), 1),
            format!("{:.1}%", p.r.slo.violation_fraction() * 100.0),
            p.r.unavailable_ops.to_string(),
            p.r.promotions.to_string(),
            num(p.r.rto_s, 1),
            p.r.lost_entries.to_string(),
            p.r.moves.to_string(),
        ]);
        let mut row = vec![
            p.service.name().to_string(),
            p.kind.name().to_string(),
            format!("{:.2}", p.multiplier),
            format!("{:.3}", p.r.offered_ops_s),
            format!("{:.3}", p.r.scheduled_ops_s),
            format!("{:.3}", p.r.achieved_ops_s),
            format!("{:.3}", p.r.goodput_ops_s),
            format!("{:.2}", p.offered()),
            format!("{:.2}", p.goodput()),
            p.service.unit().to_string(),
            format!("{:.3}", p.r.slo.quantile_ms(0.50)),
            format!("{:.3}", p.r.slo.quantile_ms(0.99)),
            format!("{:.4}", p.r.slo.violation_fraction()),
            p.r.slo.completed.to_string(),
            p.r.slo.failed.to_string(),
        ];
        for &n in &p.r.stamp_ops {
            row.push(n.to_string());
        }
        row.extend([
            p.r.admit_shed.to_string(),
            p.r.latch_shed.to_string(),
            p.r.revalidations.to_string(),
            p.r.redirects.to_string(),
            p.r.remote_ops.to_string(),
            p.r.unavailable_ops.to_string(),
            p.r.ship_batches.to_string(),
            p.r.ship_entries.to_string(),
            format!("{:.3}", p.r.rpo_max_s),
            format!("{:.3}", p.r.rpo_at_promotion_s),
            p.r.lost_entries.to_string(),
            p.r.promotions.to_string(),
            format!("{:.3}", p.r.rto_s),
            p.r.moves.to_string(),
            format!("{:016x}", p.r.placement_fingerprint),
        ]);
        csv.row(&row);
    }

    // Scale-out anchors: per service, the best aggregate goodput over
    // the clean Poisson sweep, compared against STAMPS x the Fig 1–3
    // closed-loop peaks. The per-stamp knee ties to the single-stamp
    // frontier: each stamp's share of the aggregate peak is reported
    // below the verdicts.
    let mut share_lines = String::new();
    let mut checks = Vec::new();
    for sp in &plan.services {
        let sweep: Vec<&Point> = points
            .iter()
            .filter(|p| p.service == sp.service && p.kind == Kind::Clean)
            .collect();
        let peak = sweep.iter().map(|p| p.goodput()).fold(0.0, f64::max);
        let best = sweep
            .iter()
            .max_by(|a, b| a.goodput().partial_cmp(&b.goodput()).unwrap())
            .expect("sweep is non-empty");
        let total: u64 = best.r.stamp_ops.iter().sum();
        let shares: Vec<String> = best
            .r
            .stamp_ops
            .iter()
            .map(|&n| format!("{:.1}%", 100.0 * n as f64 / total.max(1) as f64))
            .collect();
        share_lines.push_str(&format!(
            "  {}: aggregate peak {} {unit} at {:.2}x nominal; per-stamp share [{}] (single-stamp Fig 1-3 peak x{} = {} {unit})\n",
            sp.service.name(),
            num(peak, 1),
            best.multiplier,
            shares.join(", "),
            STAMPS,
            num(
                match sp.service {
                    Service::Blob => anchors::GEO_BLOB_AGGREGATE_MBPS.paper,
                    Service::Table => anchors::GEO_TABLE_AGGREGATE_OPS.paper,
                    Service::Queue => anchors::GEO_QUEUE_AGGREGATE_OPS.paper,
                },
                1
            ),
            unit = sp.service.unit(),
        ));
        let a = match sp.service {
            Service::Blob => anchors::GEO_BLOB_AGGREGATE_MBPS,
            Service::Table => anchors::GEO_TABLE_AGGREGATE_OPS,
            Service::Queue => anchors::GEO_QUEUE_AGGREGATE_OPS,
        };
        checks.push(check(a, peak));
    }
    // Failover verdicts come from the queue failover cell: queue adds
    // are the only mutations, so only there can the abandoned tail be
    // non-empty.
    let fo = points
        .iter()
        .find(|p| p.service == Service::Queue && p.kind == Kind::Failover)
        .expect("grid has a queue failover cell");
    checks.push(check(anchors::GEO_FAILOVER_RTO_S, fo.r.rto_s));
    let rpo_ok = fo.r.lost_entries > 0 && fo.r.rpo_at_promotion_s > 0.0;
    checks.push(check(
        anchors::GEO_FAILOVER_RPO_POSITIVE,
        if rpo_ok { 1.0 } else { 0.0 },
    ));

    let mut block = anchor::render_block(
        "Scale-out + failover verdicts (4-stamp aggregate vs Fig 1-3, RTO/RPO):",
        &checks,
    );
    block.push_str("Aggregate peaks and per-stamp balance:\n");
    block.push_str(&share_lines);
    block.push_str(&format!(
        "Failover (queue cell): RTO {:.1} s, RPO at promotion {:.2} s, {} entries lost, {} accounts promoted; rebalance rider made {} moves\n",
        fo.r.rto_s,
        fo.r.rpo_at_promotion_s,
        fo.r.lost_entries,
        fo.r.promotions,
        points.last().map(|p| p.r.moves).unwrap_or(0),
    ));

    // The failover + rebalance decision logs, byte-reproducible for
    // any shard count.
    let mut decisions = String::new();
    for p in &points {
        if p.r.decisions.is_empty() {
            continue;
        }
        decisions.push_str(&format!(
            "# {} {} x{:.2}\n",
            p.service.name(),
            p.kind.name(),
            p.multiplier
        ));
        for d in &p.r.decisions {
            decisions.push_str(d);
            decisions.push('\n');
        }
    }

    let stdout = format!("{}\n{}", table.render(), block);
    CampaignOutput {
        name: "geo",
        cells: cells.len(),
        stdout,
        files: vec![
            ("geo.csv".to_string(), csv.as_str().to_string()),
            ("geo.anchors.txt".to_string(), block),
            ("geo.decisions.txt".to_string(), decisions),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
