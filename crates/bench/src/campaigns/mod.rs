//! The paper's campaigns as library functions.
//!
//! Each regeneration target (Figs 1–5 and 7, Tables 1–2, the ablation
//! suite) is a pure function `run(quick, &RunOpts) -> CampaignOutput`:
//! it decomposes the campaign into deterministic cells, drives them
//! through [`simlab::run_cells`] (so `--shards`, `--faults` and
//! `--trace` all apply uniformly), and returns everything the campaign
//! produces — rendered stdout, result files, anchor verdicts — without
//! touching the filesystem. The `azlab` driver (and the thin per-figure
//! wrapper binaries via [`standalone_main`]) handle printing, saving
//! and the manifest.
//!
//! Table 2 and Fig 7 come from the same ModisAzure campaign, so they
//! share one entry ([`modis`]) that emits both artifacts; `azlab run
//! table2` and `azlab run fig7` are aliases for it.

use std::path::Path;

use cloudbench::Anchor;
use simlab::{AnchorCheck, RunOpts};

pub mod ablations;
pub mod consistency;
pub mod elastic;
pub mod faas;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod frontier;
pub mod geo;
pub mod modis;
pub mod shedding;
pub mod table1;

/// Everything one campaign produces, computed without side effects.
#[derive(Debug)]
pub struct CampaignOutput {
    /// Canonical campaign name (`fig1` ... `ablations`).
    pub name: &'static str,
    /// Cells the sharded runner executed.
    pub cells: usize,
    /// Exactly what the campaign prints on stdout (tables + anchor
    /// blocks), byte-identical for any shard count.
    pub stdout: String,
    /// Result files as `(file name, contents)`, to be written into the
    /// run's results directory.
    pub files: Vec<(String, String)>,
    /// Anchor verdicts for the manifest.
    pub anchors: Vec<AnchorCheck>,
    /// Latency breakdown + file note of the traced cell, if any.
    pub trace_summary: Option<String>,
}

/// Canonical campaign names, in `azlab run all` execution order.
pub const ALL: [&str; 14] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "table1",
    "modis",
    "frontier",
    "geo",
    "shedding",
    "elastic",
    "faas",
    "consistency",
    "ablations",
];

/// Resolve a CLI target (including the `table2`/`fig7` aliases) to its
/// canonical campaign name.
pub fn canonical(target: &str) -> Option<&'static str> {
    match target {
        "table2" | "fig7" => Some("modis"),
        t => ALL.iter().find(|n| **n == t).copied(),
    }
}

/// Run one campaign by canonical name.
pub fn run(name: &str, quick: bool, opts: &RunOpts) -> Option<CampaignOutput> {
    Some(match canonical(name)? {
        "fig1" => fig1::run(quick, opts),
        "fig2" => fig2::run(quick, opts),
        "fig3" => fig3::run(quick, opts),
        "fig4" => fig4::run(quick, opts),
        "fig5" => fig5::run(quick, opts),
        "table1" => table1::run(quick, opts),
        "modis" => modis::run(quick, opts),
        "frontier" => frontier::run(quick, opts),
        "geo" => geo::run(quick, opts),
        "shedding" => shedding::run(quick, opts),
        "elastic" => elastic::run(quick, opts),
        "faas" => faas::run(quick, opts),
        "consistency" => consistency::run(quick, opts),
        "ablations" => ablations::run(quick, opts),
        _ => unreachable!("canonical() returned an unknown name"),
    })
}

/// Planned cell count of one campaign in one mode, without running it
/// (the `azlab bench` report records quick and full counts side by
/// side).
pub fn cell_count(name: &str, quick: bool) -> Option<usize> {
    Some(match canonical(name)? {
        "fig1" => fig1::cell_count(quick),
        "fig2" => fig2::cell_count(quick),
        "fig3" => fig3::cell_count(quick),
        "fig4" => fig4::cell_count(quick),
        "fig5" => fig5::cell_count(quick),
        "table1" => table1::cell_count(quick),
        "modis" => modis::cell_count(quick),
        "frontier" => frontier::cell_count(quick),
        "geo" => geo::cell_count(quick),
        "shedding" => shedding::cell_count(quick),
        "elastic" => elastic::cell_count(quick),
        "faas" => faas::cell_count(quick),
        "consistency" => consistency::cell_count(quick),
        "ablations" => ablations::cell_count(quick),
        _ => unreachable!("canonical() returned an unknown name"),
    })
}

/// Turn a `cloudbench` anchor constant plus a measurement into the
/// unified check record.
pub fn check(a: Anchor, measured: f64) -> AnchorCheck {
    AnchorCheck {
        name: a.name,
        paper: a.paper,
        rel_tol: a.rel_tol,
        measured,
    }
}

/// Print a campaign's stdout, write its files into `dir` (announcing
/// each on stdout like the pre-simlab binaries did), and print the
/// trace summary if one was captured.
pub fn emit(out: &CampaignOutput, dir: &Path) {
    print!("{}", out.stdout);
    for (name, contents) in &out.files {
        let path = dir.join(name);
        if std::fs::write(&path, contents).is_ok() {
            println!("[saved {}]", path.display());
        }
    }
    if let Some(t) = &out.trace_summary {
        print!("{t}");
    }
}

/// Default shard count: one per available core.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Shared `main` of the per-figure wrapper binaries: parse the common
/// flags, run the named campaign sharded across the machine's cores,
/// and emit into `results/` (or `results/quick/` under `--quick`).
pub fn standalone_main(target: &str) {
    let usage = format!(
        "{target} [--quick] [--shards N] [--faults <preset>] [--trace <path>]  (or: azlab run {target})"
    );
    let flags = simlab::cli::parse_or_exit(&usage);
    if !flags.words.is_empty() {
        eprintln!("error: unexpected argument {:?}", flags.words[0]);
        eprintln!("usage: {usage}");
        std::process::exit(2);
    }
    let opts = RunOpts {
        shards: flags.shards.unwrap_or_else(default_shards),
        faults: flags.faults,
        trace: flags.trace.map(|path| simlab::TraceSpec { cell: 0, path }),
        tau: flags.tau,
    };
    let out = run(target, flags.quick, &opts).expect("wrapper binaries use canonical targets");
    emit(&out, &crate::results_dir_for(flags.quick));
}
