//! Elastic campaign: autoscaling under the 10-minute VM tax.
//!
//! Table 1 prices elasticity: capacity ordered now turns Ready one
//! add-boot plus one stagger later (≈476 s mean for a small worker),
//! while capacity released stops billing immediately. This campaign
//! runs four controllers — a fixed planned-peak baseline, two reactive
//! policies (queue-depth backlog, utilization with hysteresis) and a
//! Holt double-exponential-smoothing predictive policy ordering a full
//! scale-out lead ahead — against three demand shapes (diurnal, bursty
//! on/off, step) on two services (queue Add, table Query), each cell
//! clean and again with a six-host crash episode landing mid-window.
//! Every cell is one `autoscale::run_elastic` simulation: the arrival
//! schedule is drawn before any fabric randomness, so for a given seed
//! every policy faces byte-identical demand, and scale-out latency is
//! *emergent* from real `fabric` deployments, not modelled.
//!
//! The output is the SLO-violations-vs-instance-hours frontier
//! (`elastic.csv`). The verdict point is the queue service under
//! diurnal arrivals, clean: the predictive policy must dominate the
//! fixed baseline on both axes, and the frontier must be ordered
//! (predictive ≤ util-hysteresis ≤ queue-depth on violations, with
//! queue-depth at least undercutting fixed on hours). The bursty and
//! step cells are kept *because* the elastics lose some of them —
//! demand discontinuities inside one blind scale-out lead are exactly
//! what the paper's provisioning tax says cannot be absorbed.
//!
//! Quick mode runs the verdict slice only (queue × diurnal × 4
//! policies, clean + crash); the cell constants are identical, so the
//! quick anchors measure the same points the full campaign does.

use autoscale::{run_elastic, ElasticConfig, ElasticResult, PolicyKind, Service};
use cloudbench::anchors;
use simcore::report::{num, AsciiTable, Csv};
use simfault::{FaultEpisode, FaultKind, FaultPlan};
use simlab::{anchor, run_cells, RunOpts};
use simload::ArrivalProcess;

use super::{check, CampaignOutput};

/// One cell of the grid.
#[derive(Clone)]
struct Cell {
    si: usize,
    pi: usize,
    policy: PolicyKind,
    crash: bool,
}

/// Full sweep plan for one mode.
struct Plan {
    services: Vec<Service>,
    /// (arrival pattern, base seed), in sweep order. Crash cells share
    /// the clean cell's seed so the demand schedule is identical and
    /// the episode is the only difference.
    patterns: Vec<(ArrivalProcess, u64)>,
    /// Mean demand in per-instance capacity units (multiples of μᵢ).
    demand_units: f64,
    /// Planned peak demand in the same units (the fixed baseline
    /// provisions `floor(peak_units)`).
    peak_units: f64,
    setup_s: f64,
    horizon_s: f64,
}

impl Plan {
    fn new(quick: bool) -> Plan {
        // Two diurnal periods so the controllers face a ramp they have
        // already seen once; the step and bursty shapes stress the
        // blind first reaction instead.
        let diurnal = ArrivalProcess::Diurnal {
            period_s: 3600.0,
            amplitude: 0.8,
            phase: 0.0,
        };
        let mut patterns = vec![(diurnal, 42u64)];
        if !quick {
            // Burst timescale deliberately near the boot timescale —
            // the adversarial regime for every controller.
            patterns.push((
                ArrivalProcess::Bursty {
                    on_mean_s: 600.0,
                    off_mean_s: 300.0,
                    shape: 1.0,
                },
                52,
            ));
            patterns.push((ArrivalProcess::step_default(), 62));
        }
        let services = if quick {
            vec![Service::Queue]
        } else {
            vec![Service::Queue, Service::Table]
        };
        Plan {
            services,
            patterns,
            demand_units: 2.75,
            peak_units: 4.95,
            setup_s: 1800.0,
            horizon_s: 7200.0,
        }
    }

    /// Per-cell controller configuration (identical in quick and full
    /// mode — only the grid shrinks).
    fn config(&self, c: &Cell) -> ElasticConfig {
        ElasticConfig {
            service: self.services[c.si],
            pattern: self.patterns[c.pi].0.clone(),
            policy: c.policy,
            demand_units: self.demand_units,
            peak_units: self.peak_units,
            setup_s: self.setup_s,
            horizon_s: self.horizon_s,
            tick_s: 10.0,
            obs_window_s: 60.0,
            min_instances: 2,
            max_instances: 16,
            fleet: 8,
            hosts: 8,
        }
    }

    /// Cell grid in canonical order (part of the seed contract —
    /// `run_cells` merges shards back into this order).
    fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for si in 0..self.services.len() {
            for pi in 0..self.patterns.len() {
                for policy in PolicyKind::ALL {
                    for crash in [false, true] {
                        cells.push(Cell {
                            si,
                            pi,
                            policy,
                            crash,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The crash episode for injected cells: six of the eight hosts go
    /// down together 40 % into the measurement window, for 900 s — a
    /// rack-scale outage wide enough that random VM placement cannot
    /// dodge it, and long enough that waiting it out violates, so
    /// every controller must re-buy capacity *through* the Table 1
    /// lead (replacements may even land on still-dead hosts and be
    /// reaped again).
    fn crash_episodes(&self) -> Vec<FaultEpisode> {
        (0..6)
            .map(|host| FaultEpisode {
                start_s: self.setup_s + 0.4 * self.horizon_s,
                duration_s: 900.0,
                kind: FaultKind::HostCrash { host },
            })
            .collect()
    }
}

/// One measured cell.
struct Point {
    service: Service,
    pattern: &'static str,
    policy: PolicyKind,
    crash: bool,
    r: ElasticResult,
}

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(quick: bool) -> usize {
    Plan::new(quick).cells().len()
}

/// Run the elastic campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let plan = Plan::new(quick);
    let cells = plan.cells();
    eprintln!(
        "elastic: {} policies x {} patterns x crash on/off over {} services ({} cells, {} s horizon) ...",
        PolicyKind::ALL.len(),
        plan.patterns.len(),
        plan.services.len(),
        cells.len(),
        plan.horizon_s,
    );
    let out = run_cells(cells.len(), opts, |i, ctx| {
        let c = &cells[i];
        let cfg = plan.config(c);
        // Crash cells layer the host-crash episodes on top of whatever
        // `--faults` plan the run carries (`install` nests, restoring
        // the outer plan on drop).
        let crash_plan = c.crash.then(|| {
            let mut fp = ctx.fault_plan().cloned().unwrap_or_else(FaultPlan::none);
            fp.episodes.extend(plan.crash_episodes());
            fp
        });
        let seed = plan.patterns[c.pi].1;
        ctx.with_sim(seed, |sim| {
            let _crash = crash_plan.as_ref().map(|fp| simfault::install(sim, fp));
            run_elastic(sim, &cfg)
        })
    });
    let points: Vec<Point> = out
        .cells
        .into_iter()
        .zip(&cells)
        .map(|(r, c)| Point {
            service: plan.services[c.si],
            pattern: plan.patterns[c.pi].0.name(),
            policy: c.policy,
            crash: c.crash,
            r,
        })
        .collect();

    let mut table = AsciiTable::new(vec![
        "service",
        "pattern",
        "policy",
        "faults",
        "scheduled",
        "SLO viol",
        "viol %",
        "inst-hours",
        "max fleet",
        "outs",
        "ins",
        "reaped",
        "lead s",
    ])
    .with_title(
        "Elastic autoscaling — SLO violations vs instance-hours under the Table 1 scale-out tax"
            .to_string(),
    );
    let mut csv = Csv::new();
    csv.row(&[
        "service",
        "pattern",
        "policy",
        "crash",
        "scheduled",
        "completed",
        "failed",
        "late",
        "shed",
        "violations",
        "violation_frac",
        "instance_hours",
        "initial_instances",
        "max_committed",
        "scale_outs",
        "scale_ins",
        "adds_failed",
        "reaped",
        "first_ready_lead_s",
        "add_stagger_mean_s",
        "stagger_count",
        "initial_ramp_ratio",
        "initial_ready_s",
        "admit_shed",
    ]);
    for p in &points {
        table.row(vec![
            p.service.name().to_string(),
            p.pattern.to_string(),
            p.policy.name().to_string(),
            if p.crash { "crash" } else { "clean" }.to_string(),
            p.r.slo.scheduled.to_string(),
            p.r.violations().to_string(),
            format!("{:.2}%", p.r.slo.violation_fraction() * 100.0),
            num(p.r.instance_hours, 3),
            p.r.max_committed.to_string(),
            p.r.scale_outs.to_string(),
            p.r.scale_ins.to_string(),
            p.r.reaped.to_string(),
            p.r.first_ready_lead_s
                .map(|l| num(l, 0))
                .unwrap_or_else(|| "-".to_string()),
        ]);
        csv.row(&[
            p.service.name().to_string(),
            p.pattern.to_string(),
            p.policy.name().to_string(),
            (p.crash as u8).to_string(),
            p.r.slo.scheduled.to_string(),
            p.r.slo.completed.to_string(),
            p.r.slo.failed.to_string(),
            p.r.slo.late.to_string(),
            p.r.slo.shed.to_string(),
            p.r.violations().to_string(),
            format!("{:.4}", p.r.slo.violation_fraction()),
            format!("{:.4}", p.r.instance_hours),
            p.r.initial_instances.to_string(),
            p.r.max_committed.to_string(),
            p.r.scale_outs.to_string(),
            p.r.scale_ins.to_string(),
            p.r.adds_failed.to_string(),
            p.r.reaped.to_string(),
            p.r.first_ready_lead_s
                .map(|l| format!("{l:.1}"))
                .unwrap_or_default(),
            p.r.add_stagger_mean_s
                .map(|s| format!("{s:.1}"))
                .unwrap_or_default(),
            p.r.stagger_count.to_string(),
            format!("{:.3}", p.r.initial_ramp_ratio),
            format!("{:.1}", p.r.initial_ready_s),
            p.r.admit_shed.to_string(),
        ]);
    }

    // The verdict point: queue service, diurnal arrivals, clean. The
    // arrival schedule there is byte-identical across policies (same
    // seed, schedule drawn before fabric randomness), so the frontier
    // comparison is between controllers, not luck.
    let verdict = |policy: PolicyKind| -> &Point {
        points
            .iter()
            .find(|p| {
                p.service == Service::Queue
                    && p.pattern == "diurnal"
                    && p.policy == policy
                    && !p.crash
            })
            .expect("the verdict slice runs in every mode")
    };
    let fixed = verdict(PolicyKind::Fixed);
    let qd = verdict(PolicyKind::QueueDepth);
    let util = verdict(PolicyKind::UtilHysteresis);
    let pred = verdict(PolicyKind::PredictiveHolt);
    let dominates = pred.r.violations() < fixed.r.violations()
        && pred.r.instance_hours < fixed.r.instance_hours;
    let ordered = pred.r.violations() <= util.r.violations()
        && util.r.violations() <= qd.r.violations()
        && qd.r.instance_hours < fixed.r.instance_hours;

    // Lifecycle anchors aggregate over every cell: each add batch any
    // controller ordered contributes its order-to-first-ready lead,
    // and every cell's initial boot contributes its ramp ratio.
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let leads: Vec<f64> = points
        .iter()
        .filter_map(|p| p.r.first_ready_lead_s)
        .collect();
    let ramps: Vec<f64> = points.iter().map(|p| p.r.initial_ramp_ratio).collect();

    let checks = vec![
        check(
            anchors::ELASTIC_PREDICTIVE_DOMINANCE,
            if dominates { 1.0 } else { 0.0 },
        ),
        check(
            anchors::ELASTIC_REACTIVE_ORDERING,
            if ordered { 1.0 } else { 0.0 },
        ),
        check(anchors::ELASTIC_SCALE_OUT_LEAD_S, mean(&leads)),
        check(anchors::ELASTIC_INITIAL_RAMP_RATIO, mean(&ramps)),
    ];

    let mut block = anchor::render_block(
        "Elastic frontier (queue diurnal verdict + emergent Table 1 lifecycle):",
        &checks,
    );
    block.push_str("Frontier at the verdict point (queue, diurnal, clean):\n");
    for p in [fixed, qd, util, pred] {
        block.push_str(&format!(
            "  {:11} {:6} violations ({:5.2}%), {:6} instance-hours, max fleet {}\n",
            p.policy.name(),
            p.r.violations(),
            p.r.slo.violation_fraction() * 100.0,
            num(p.r.instance_hours, 3),
            p.r.max_committed,
        ));
    }
    block.push_str(&format!(
        "  predictive dominates fixed on both axes: {}; frontier ordered (pred <= util <= qd on violations, qd cheaper than fixed): {}\n",
        if dominates { "yes" } else { "NO" },
        if ordered { "yes" } else { "NO" },
    ));

    let stdout = format!("{}\n{}", table.render(), block);
    CampaignOutput {
        name: "elastic",
        cells: cells.len(),
        stdout,
        files: vec![
            ("elastic.csv".to_string(), csv.as_str().to_string()),
            ("elastic.anchors.txt".to_string(), block),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
