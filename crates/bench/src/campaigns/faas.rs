//! Faas campaign: serverless cold starts and the keepalive frontier.
//!
//! Table 1 prices the VM lifecycle; this campaign shrinks it to
//! container size (the pool's 1/128 lifecycle scale, ≈2.96 s per cold
//! start) and asks the question every function platform faces: how
//! much idle memory buys how many warm starts? Each cell replays an
//! Azure-Functions-shaped synthetic invocation trace against one
//! container pool under one keepalive policy — unload-at-idle (cold
//! maximal, waste minimal), a fixed 20-minute window (the platform
//! default), and the Serverless-in-the-Wild hybrid histogram
//! (per-app IAT binades driving prewarm + tightened keepalive). Cold
//! starts are *emergent*: every one is a real `fabric` create+boot
//! with the calibrated startup-failure retries, and crash cells land
//! a mid-window host outage that reaps idle containers through the
//! same machinery. The trace is drawn from its own RNG stream before
//! any fabric randomness, so for a given seed all three policies face
//! byte-identical demand.
//!
//! The output is the cold-start-fraction-vs-wasted-memory frontier
//! (`faas.csv`, one row per cell; the `cold_starts`/`warm_starts`/
//! `evictions`/`mem_ticks` columns mirror the `faas.*` trace
//! counters). The verdict point is the `wild` trace, clean: the
//! hybrid policy must undercut the fixed window's wasted memory-time
//! by ≥10 % while staying within 10 points of its cold-start
//! fraction, and the frontier must be ordered (no-keepalive coldest/
//! cheapest, fixed warmest/most wasteful, hybrid between).
//!
//! Quick mode runs the verdict slice only (wild × 3 policies, clean +
//! crash); the cell constants are identical in both modes, so the
//! quick anchors measure the same points the full campaign does.

use cloudbench::anchors;
use faas::{run_faas, FaasConfig, FaasResult, PolicyKind, TraceShape};
use simcore::report::{num, AsciiTable, Csv};
use simfault::{FaultEpisode, FaultKind, FaultPlan};
use simlab::{anchor, run_cells, RunOpts};

use super::{check, CampaignOutput};

/// One cell of the grid.
#[derive(Clone)]
struct Cell {
    si: usize,
    policy: PolicyKind,
    crash: bool,
}

/// Full sweep plan for one mode.
struct Plan {
    /// (trace shape, base seed), in sweep order. Crash cells share the
    /// clean cell's seed so the invocation schedule is identical and
    /// the outage is the only difference.
    shapes: Vec<(TraceShape, u64)>,
    hosts: usize,
    horizon_s: f64,
}

impl Plan {
    fn new(quick: bool) -> Plan {
        let mut shapes = vec![(TraceShape::wild(), 42u64)];
        if !quick {
            shapes.push((TraceShape::diurnal(), 52));
            shapes.push((TraceShape::bursty(), 62));
        }
        let probe = FaasConfig::quick(TraceShape::wild(), PolicyKind::FixedWindow);
        Plan {
            shapes,
            hosts: probe.hosts,
            horizon_s: probe.horizon_s,
        }
    }

    /// Per-cell configuration (identical in quick and full mode — only
    /// the shape grid grows).
    fn config(&self, c: &Cell) -> FaasConfig {
        FaasConfig::quick(self.shapes[c.si].0.clone(), c.policy)
    }

    /// Cell grid in canonical order (part of the seed contract —
    /// `run_cells` merges shards back into this order).
    fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for si in 0..self.shapes.len() {
            for policy in PolicyKind::ALL {
                for crash in [false, true] {
                    cells.push(Cell { si, policy, crash });
                }
            }
        }
        cells
    }

    /// The outage for crash cells: a third of the hosts go down
    /// together 40 % into the window for 900 s — long at container
    /// timescale (hundreds of cold-start leads), so the pool must reap
    /// the dead idle containers and re-buy every one of them through
    /// the scaled Table 1 lifecycle while the survivors absorb load.
    fn crash_episodes(&self) -> Vec<FaultEpisode> {
        (0..self.hosts / 3)
            .map(|host| FaultEpisode {
                start_s: 0.4 * self.horizon_s,
                duration_s: 900.0,
                kind: FaultKind::HostCrash {
                    host: host.try_into().expect("host index fits"),
                },
            })
            .collect()
    }
}

/// One measured cell.
struct Point {
    shape: &'static str,
    policy: PolicyKind,
    crash: bool,
    r: FaasResult,
}

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(quick: bool) -> usize {
    Plan::new(quick).cells().len()
}

/// Run the faas campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let plan = Plan::new(quick);
    let cells = plan.cells();
    eprintln!(
        "faas: {} policies x {} trace shapes x crash on/off ({} cells, {} s horizon) ...",
        PolicyKind::ALL.len(),
        plan.shapes.len(),
        cells.len(),
        plan.horizon_s,
    );
    let out = run_cells(cells.len(), opts, |i, ctx| {
        let c = &cells[i];
        let cfg = plan.config(c);
        // Crash cells layer the host outage on top of whatever
        // `--faults` plan the run carries (`install` nests, restoring
        // the outer plan on drop).
        let crash_plan = c.crash.then(|| {
            let mut fp = ctx.fault_plan().cloned().unwrap_or_else(FaultPlan::none);
            fp.episodes.extend(plan.crash_episodes());
            fp
        });
        let seed = plan.shapes[c.si].1;
        ctx.with_sim(seed, |sim| {
            let _crash = crash_plan.as_ref().map(|fp| simfault::install(sim, fp));
            run_faas(sim, &cfg)
        })
    });
    let points: Vec<Point> = out
        .cells
        .into_iter()
        .zip(&cells)
        .map(|(r, c)| Point {
            shape: plan.shapes[c.si].0.name,
            policy: c.policy,
            crash: c.crash,
            r,
        })
        .collect();

    let mut table = AsciiTable::new(vec![
        "shape",
        "policy",
        "faults",
        "invocations",
        "cold",
        "warm",
        "cold %",
        "prewarms",
        "evicted",
        "wasted GB*s",
        "mean idle MB",
        "cold mean s",
    ])
    .with_title(
        "Faas keepalive — cold-start fraction vs wasted idle memory under the scaled Table 1 tax"
            .to_string(),
    );
    let mut csv = Csv::new();
    csv.row(&[
        "shape",
        "policy",
        "crash",
        "invocations",
        "cold_starts",
        "warm_starts",
        "joins",
        "cold_fraction",
        "prewarm_scheduled",
        "prewarm_loads",
        "prewarm_cancelled",
        "containers_created",
        "evictions",
        "evict_expired",
        "evict_lru",
        "evict_crash",
        "mem_ticks_mb_s",
        "wasted_mb_s",
        "wasted_mb_mean",
        "peak_idle_mb",
        "cold_mean_s",
        "cold_max_s",
        "scheduled",
        "completed",
        "failed",
        "violation_frac",
    ]);
    for p in &points {
        table.row(vec![
            p.shape.to_string(),
            p.policy.name().to_string(),
            if p.crash { "crash" } else { "clean" }.to_string(),
            p.r.invocations.to_string(),
            p.r.cold_starts.to_string(),
            p.r.warm_starts.to_string(),
            format!("{:.2}%", p.r.cold_fraction() * 100.0),
            p.r.prewarm_loads.to_string(),
            p.r.evictions.to_string(),
            num(p.r.wasted_mb_s / 1024.0, 3),
            num(p.r.wasted_mb_mean(plan.horizon_s), 3),
            format!("{:.2}", p.r.cold_full.mean()),
        ]);
        csv.row(&[
            p.shape.to_string(),
            p.policy.name().to_string(),
            (p.crash as u8).to_string(),
            p.r.invocations.to_string(),
            p.r.cold_starts.to_string(),
            p.r.warm_starts.to_string(),
            p.r.joins.to_string(),
            format!("{:.4}", p.r.cold_fraction()),
            p.r.prewarm_scheduled.to_string(),
            p.r.prewarm_loads.to_string(),
            p.r.prewarm_cancelled.to_string(),
            p.r.containers_created.to_string(),
            p.r.evictions.to_string(),
            p.r.evict_expired.to_string(),
            p.r.evict_lru.to_string(),
            p.r.evict_crash.to_string(),
            format!("{:.1}", p.r.mem_tick_mb_s),
            format!("{:.1}", p.r.wasted_mb_s),
            format!("{:.2}", p.r.wasted_mb_mean(plan.horizon_s)),
            format!("{:.1}", p.r.peak_idle_mb),
            format!("{:.3}", p.r.cold_full.mean()),
            format!("{:.3}", p.r.cold_full.max()),
            p.r.slo.scheduled.to_string(),
            p.r.slo.completed.to_string(),
            p.r.slo.failed.to_string(),
            format!("{:.4}", p.r.slo.violation_fraction()),
        ]);
    }

    // The verdict point: wild trace, clean. The schedule there is
    // byte-identical across policies (same seed, trace drawn before
    // any fabric randomness), so the frontier comparison is between
    // keepalive policies, not luck.
    let verdict = |policy: PolicyKind| -> &Point {
        points
            .iter()
            .find(|p| p.shape == "wild" && p.policy == policy && !p.crash)
            .expect("the verdict slice runs in every mode")
    };
    let nk = verdict(PolicyKind::NoKeepalive);
    let fx = verdict(PolicyKind::FixedWindow);
    let hy = verdict(PolicyKind::Hybrid);
    // Dominance: the histogram beats the fixed window by >=10 % on the
    // memory axis without giving back more than 10 points of cold-start
    // fraction (its extra colds are concurrency-peak containers that a
    // per-container keepalive lets expire).
    let dominates = hy.r.wasted_mb_s < 0.9 * fx.r.wasted_mb_s
        && hy.r.cold_fraction() < fx.r.cold_fraction() + 0.10;
    // Ordering: the two degenerate policies bracket the hybrid on both
    // axes — the frontier the policy definitions promise.
    let ordered = nk.r.cold_fraction() > hy.r.cold_fraction()
        && hy.r.cold_fraction() > fx.r.cold_fraction()
        && nk.r.wasted_mb_s < hy.r.wasted_mb_s
        && hy.r.wasted_mb_s < fx.r.wasted_mb_s;

    let checks = vec![
        check(anchors::FAAS_COLD_START_LIFECYCLE_S, nk.r.cold_full.mean()),
        check(
            anchors::FAAS_HYBRID_DOMINANCE,
            if dominates { 1.0 } else { 0.0 },
        ),
        check(
            anchors::FAAS_FRONTIER_ORDERING,
            if ordered { 1.0 } else { 0.0 },
        ),
    ];

    let mut block = anchor::render_block(
        "Faas frontier (wild clean verdict + emergent container lifecycle):",
        &checks,
    );
    block.push_str("Frontier at the verdict point (wild trace, clean):\n");
    for p in [nk, fx, hy] {
        block.push_str(&format!(
            "  {:12} {:5.2}% cold ({:6} of {:6}), {:>10} MB*s wasted idle, {:5} prewarms, {:6} evictions\n",
            p.policy.name(),
            p.r.cold_fraction() * 100.0,
            p.r.cold_starts,
            p.r.invocations,
            num(p.r.wasted_mb_s, 4),
            p.r.prewarm_loads,
            p.r.evictions,
        ));
    }
    block.push_str(&format!(
        "  hybrid dominates fixed (>=10% less waste, <10 pt colder): {}; frontier ordered (no_keepalive / hybrid / fixed bracket both axes): {}\n",
        if dominates { "yes" } else { "NO" },
        if ordered { "yes" } else { "NO" },
    ));

    let stdout = format!("{}\n{}", table.render(), block);
    CampaignOutput {
        name: "faas",
        cells: cells.len(),
        stdout,
        files: vec![
            ("faas.csv".to_string(), csv.as_str().to_string()),
            ("faas.anchors.txt".to_string(), block),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
