//! Frontier campaign: open-loop offered-load sweeps per storage
//! service.
//!
//! The Fig 1–3 campaigns are closed-loop (the paper's protocol): they
//! find each service's peak by adding clients. This campaign
//! approaches the same ceilings from the other side: an open-loop
//! fleet (`simload`) offers load at a scheduled rate, sweeps the rate
//! through the saturation knee, and reports coordinated-omission-free
//! latency percentiles, SLO-violation fractions and goodput at every
//! point. The located capacity must agree with the closed-loop peaks —
//! blob GET vs Fig 1's 393.4 MB/s, queue Add vs Fig 3's 569 ops/s, and
//! table Query vs this reproduction's own closed-loop aggregate at 192
//! clients (Fig 2 publishes no numeric peak).
//!
//! One bursty (MMPP-style on/off) cell per service rides along at
//! sub-knee mean load, showing how burstiness alone degrades tail
//! latency and SLO compliance at unchanged mean rate.

use cloudbench::anchors;
use cloudbench::experiments::stamp_config;
use simcore::report::{num, AsciiTable, Csv};
use simlab::{anchor, run_cells, RunOpts};
use simload::{run_open_loop, ArrivalProcess, LoadCellResult, LoadConfig, Workload};

use super::{check, CampaignOutput};

/// The three swept services.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    Blob,
    Table,
    Queue,
}

impl Service {
    fn name(self) -> &'static str {
        match self {
            Service::Blob => "blob",
            Service::Table => "table",
            Service::Queue => "queue",
        }
    }

    /// Throughput unit for reporting (blob in MB/s, others in ops/s).
    fn unit(self) -> &'static str {
        match self {
            Service::Blob => "MB/s",
            _ => "ops/s",
        }
    }
}

/// Per-service sweep parameters.
struct ServicePlan {
    service: Service,
    workload: Workload,
    /// Nominal capacity guess the multipliers scale (ops/s) — the
    /// closed-loop peak converted to operations.
    nominal_ops_s: f64,
    /// Latency SLO (seconds from the scheduled instant).
    deadline_s: f64,
}

/// Full sweep plan (grid + windows) for one mode.
struct Plan {
    services: Vec<ServicePlan>,
    multipliers: Vec<f64>,
    /// Offered-load multiplier the bursty rider cells run at.
    bursty_multiplier: f64,
    warmup_s: f64,
    window_s: f64,
    fleet: usize,
    seed: u64,
}

impl Plan {
    fn new(quick: bool) -> Plan {
        // Blob transfers are sized so warmup covers a few service times
        // even at saturation concurrency (~3 MB/s per flow near the Fig
        // 1 peak) — capacity in MB/s is governed by the shared pipes,
        // not the object size. Nominal rates are the closed-loop peaks:
        // 400 MB/s aggregate download, ~3.9 k Query/s, ~585 Add/s.
        let blob_bytes = if quick { 2e6 } else { 8e6 };
        let services = vec![
            ServicePlan {
                service: Service::Blob,
                workload: Workload::BlobGet { blob_bytes },
                nominal_ops_s: 400e6 / blob_bytes,
                // ~1.5x the per-op time at saturation concurrency.
                deadline_s: if quick { 1.0 } else { 4.0 },
            },
            ServicePlan {
                service: Service::Table,
                workload: Workload::TableQuery {
                    entities: 512,
                    entity_kb: 4,
                },
                nominal_ops_s: 3900.0,
                // The query station's sojourn at the closed-loop peak's
                // effective concurrency is ~50-70 ms; the deadline caps
                // the open-loop goodput at the comparable point (the
                // station itself asymptotes well above the 192-client
                // aggregate, so an SLO-free drain rate would not be
                // comparable to Fig 2).
                deadline_s: 0.08,
            },
            ServicePlan {
                service: Service::Queue,
                workload: Workload::QueueAdd {
                    message_bytes: 512.0,
                },
                nominal_ops_s: 585.0,
                deadline_s: 0.5,
            },
        ];
        Plan {
            services,
            multipliers: if quick {
                vec![0.5, 0.85, 0.95, 1.0, 1.15]
            } else {
                vec![0.3, 0.5, 0.7, 0.85, 0.95, 1.0, 1.15, 1.3]
            },
            bursty_multiplier: 0.85,
            warmup_s: if quick { 2.0 } else { 5.0 },
            window_s: if quick { 8.0 } else { 30.0 },
            fleet: if quick { 64 } else { 192 },
            seed: 0x10AD,
        }
    }

    /// Cell grid: all Poisson sweep points, then one bursty rider per
    /// service. Cell order (and thus seeds) is part of the contract —
    /// `run_cells` merges shards back into this canonical order.
    fn points(&self) -> Vec<(usize, f64, ArrivalProcess)> {
        // The rider's on/off sojourns scale with the window so every
        // cell sees several burst cycles (a fixed multi-second preset
        // would make short quick windows land inside one sojourn and
        // measure nothing).
        let bursty = ArrivalProcess::Bursty {
            on_mean_s: self.window_s / 16.0,
            off_mean_s: self.window_s / 8.0,
            shape: 0.7,
        };
        let mut pts = Vec::new();
        for (si, _) in self.services.iter().enumerate() {
            for &m in &self.multipliers {
                pts.push((si, m, ArrivalProcess::Poisson));
            }
        }
        for (si, _) in self.services.iter().enumerate() {
            pts.push((si, self.bursty_multiplier, bursty.clone()));
        }
        pts
    }
}

/// One measured sweep point.
struct Point {
    service: Service,
    process: &'static str,
    multiplier: f64,
    unit_scale: f64,
    cell: LoadCellResult,
}

impl Point {
    /// Offered rate in the service's reporting unit.
    fn offered(&self) -> f64 {
        self.cell.offered_ops_s * self.unit_scale
    }

    fn achieved(&self) -> f64 {
        self.cell.achieved_ops_s * self.unit_scale
    }

    fn goodput(&self) -> f64 {
        self.cell.goodput_ops_s * self.unit_scale
    }
}

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(quick: bool) -> usize {
    Plan::new(quick).points().len()
}

/// Run the frontier campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let plan = Plan::new(quick);
    let pts = plan.points();
    eprintln!(
        "frontier: sweeping x{:?} offered load over {} services, {} s windows, fleet {} ...",
        plan.multipliers,
        plan.services.len(),
        plan.window_s,
        plan.fleet
    );
    let out = run_cells(pts.len(), opts, |i, ctx| {
        let (si, m, process) = pts[i].clone();
        let sp = &plan.services[si];
        let cfg = LoadConfig {
            workload: sp.workload,
            process,
            offered_ops_s: sp.nominal_ops_s * m,
            warmup_s: plan.warmup_s,
            window_s: plan.window_s,
            fleet: plan.fleet,
            deadline_s: sp.deadline_s,
            shed_retry: None,
        };
        let seed = plan.seed ^ ((si as u64) << 8) ^ ((i as u64) << 16);
        ctx.with_sim(seed, |sim| run_open_loop(sim, stamp_config(ctx), &cfg))
    });
    let points: Vec<Point> = out
        .cells
        .into_iter()
        .zip(&pts)
        .map(|(cell, (si, m, process))| {
            let sp = &plan.services[*si];
            // Blob reports MB/s; ops-per-second services scale by 1.
            let unit_scale = match sp.service {
                Service::Blob => sp.workload.bytes_per_op() / 1e6,
                _ => 1.0,
            };
            Point {
                service: sp.service,
                process: process.name(),
                multiplier: *m,
                unit_scale,
                cell,
            }
        })
        .collect();

    let mut table = AsciiTable::new(vec![
        "service",
        "process",
        "x nominal",
        "offered",
        "achieved",
        "goodput",
        "unit",
        "p50 ms",
        "p99 ms",
        "SLO viol",
    ])
    .with_title("Offered-load frontier — open-loop sweep per service".to_string());
    let mut csv = Csv::new();
    csv.row(&[
        "service",
        "process",
        "multiplier",
        "offered_ops_s",
        "scheduled_ops_s",
        "achieved_ops_s",
        "goodput_ops_s",
        "offered_units",
        "achieved_units",
        "unit",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "p999_ms",
        "violation_frac",
        "completed",
        "failed",
    ]);
    for p in &points {
        table.row(vec![
            p.service.name().to_string(),
            p.process.to_string(),
            num(p.multiplier, 2),
            num(p.offered(), 1),
            num(p.achieved(), 1),
            num(p.goodput(), 1),
            p.service.unit().to_string(),
            num(p.cell.slo.quantile_ms(0.50), 1),
            num(p.cell.slo.quantile_ms(0.99), 1),
            format!("{:.1}%", p.cell.slo.violation_fraction() * 100.0),
        ]);
        csv.row(&[
            p.service.name().to_string(),
            p.process.to_string(),
            format!("{:.2}", p.multiplier),
            format!("{:.3}", p.cell.offered_ops_s),
            format!("{:.3}", p.cell.scheduled_ops_s),
            format!("{:.3}", p.cell.achieved_ops_s),
            format!("{:.3}", p.cell.goodput_ops_s),
            format!("{:.2}", p.offered()),
            format!("{:.2}", p.achieved()),
            p.service.unit().to_string(),
            format!("{:.3}", p.cell.slo.quantile_ms(0.50)),
            format!("{:.3}", p.cell.slo.quantile_ms(0.95)),
            format!("{:.3}", p.cell.slo.quantile_ms(0.99)),
            format!("{:.3}", p.cell.slo.quantile_ms(0.999)),
            format!("{:.4}", p.cell.slo.violation_fraction()),
            p.cell.slo.completed.to_string(),
            p.cell.slo.failed.to_string(),
        ]);
    }

    // Per service, over the Poisson sweep: the anchor measurement is
    // the *peak goodput* — the best SLO-honouring throughput at any
    // offered point. That is the open-loop quantity comparable to a
    // closed-loop peak: the deadline bounds effective concurrency the
    // way the client count did, where the raw drain rate under overload
    // would chase the service's asymptote instead. The knee is the
    // highest offered point still meeting the SLO for >= 90 % of
    // scheduled arrivals.
    let mut knee_lines = String::new();
    let mut checks = Vec::new();
    for sp in &plan.services {
        let sweep: Vec<&Point> = points
            .iter()
            .filter(|p| p.service == sp.service && p.process == "poisson")
            .collect();
        let peak_goodput = sweep.iter().map(|p| p.goodput()).fold(0.0, f64::max);
        let capacity = sweep.iter().map(|p| p.achieved()).fold(0.0, f64::max);
        let knee = sweep
            .iter()
            .filter(|p| p.cell.slo.violation_fraction() <= 0.10)
            .map(|p| p.multiplier)
            .fold(0.0, f64::max);
        knee_lines.push_str(&format!(
            "  {}: peak goodput {} {unit} under {} ms SLO, drain capacity ~{} {unit}, knee at {knee:.2}x nominal offered\n",
            sp.service.name(),
            num(peak_goodput, 1),
            num(sp.deadline_s * 1e3, 0),
            num(capacity, 1),
            unit = sp.service.unit(),
        ));
        let a = match sp.service {
            Service::Blob => anchors::FRONTIER_BLOB_CAPACITY_MBPS,
            Service::Table => anchors::FRONTIER_TABLE_CAPACITY_OPS,
            Service::Queue => anchors::FRONTIER_QUEUE_CAPACITY_OPS,
        };
        checks.push(check(a, peak_goodput));
    }

    let mut block = anchor::render_block(
        "Closed-loop cross-validation (Fig 1-3 peaks vs open-loop capacity):",
        &checks,
    );
    block.push_str("Saturation knees:\n");
    block.push_str(&knee_lines);

    let stdout = format!("{}\n{}", table.render(), block);
    CampaignOutput {
        name: "frontier",
        cells: pts.len(),
        stdout,
        files: vec![
            ("frontier.csv".to_string(), csv.as_str().to_string()),
            ("frontier.anchors.txt".to_string(), block),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
