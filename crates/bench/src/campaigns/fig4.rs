//! Fig 4 campaign: cumulative TCP latency between two small VMs (paper
//! §4.2). One cell per VM pair.
//!
//! The latency model is a closed-form draw with no `Sim` behind it, so
//! the cells are transparent to fault plans; when a trace is requested
//! the traced cell additionally runs a representative NIC-level ping
//! scenario so the Chrome trace has real `net.flow` spans in it.

use cloudbench::anchors;
use cloudbench::experiments::tcp::{self, TcpLatencyConfig, TcpLatencyResult};
use dcnet::{LatencyModel, LinkModel, Network};
use simcore::prelude::SampleSet;
use simcore::report::Csv;
use simlab::{anchor, run_cells, RunOpts};

use super::{check, CampaignOutput};

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(quick: bool) -> usize {
    if quick {
        10
    } else {
        TcpLatencyConfig::default().pairs
    }
}

/// Run the Fig 4 campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let cfg = if quick {
        TcpLatencyConfig {
            pairs: 10,
            samples_per_pair: 200,
            ..TcpLatencyConfig::default()
        }
    } else {
        TcpLatencyConfig::default()
    };
    eprintln!(
        "fig4: {} pairs x {} RTT samples ...",
        cfg.pairs, cfg.samples_per_pair
    );
    let placements = LatencyModel::default().spread_placements(cfg.pairs);
    let out = run_cells(cfg.pairs, opts, |i, ctx| {
        let samples = tcp::latency_pair(&cfg, i, placements[i]);
        if ctx.is_traced() {
            // A few 1-byte-scale ping flows across a VM pair's NIC
            // links (net.flow spans + bandwidth-share counters).
            ctx.with_sim(cfg.seed, |sim| {
                let net = Network::new(sim);
                let tx = net.add_link("vm_a.tx", LinkModel::Shared { capacity: 125.0e6 });
                let rx = net.add_link("vm_b.rx", LinkModel::Shared { capacity: 125.0e6 });
                for _ in 0..5 {
                    let net = net.clone();
                    sim.spawn(async move {
                        for _ in 0..4 {
                            net.transfer(&[tx, rx], 1.0e3, f64::INFINITY).await;
                        }
                    });
                }
                sim.run();
            });
        }
        samples
    });
    let mut samples = SampleSet::with_capacity(cfg.pairs * cfg.samples_per_pair);
    for cell in &out.cells {
        for &v in cell {
            samples.push(v);
        }
    }
    let result = TcpLatencyResult {
        samples_ms: samples,
    };

    let mut csv = Csv::new();
    csv.row(&["latency_ms", "cumulative_fraction"]);
    for (v, f) in result.samples_ms.cdf().into_iter().step_by(25) {
        csv.row(&[format!("{v:.4}"), format!("{f:.4}")]);
    }

    let checks = vec![
        check(anchors::FIG4_LE_1MS, result.fraction_at_most(1.0)),
        check(anchors::FIG4_LE_2MS, result.fraction_at_most(2.0)),
    ];
    let block = anchor::render_block("Paper anchors (Fig 4):", &checks);

    let stdout = format!("{}\n{}", result.render(), block);
    CampaignOutput {
        name: "fig4",
        cells: cfg.pairs,
        stdout,
        files: vec![
            ("fig4.csv".to_string(), csv.as_str().to_string()),
            ("fig4.anchors.txt".to_string(), block),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
