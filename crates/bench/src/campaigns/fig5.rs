//! Fig 5 campaign: cumulative TCP bandwidth between two small VMs
//! sending 2 GB through TCP internal endpoints (paper §4.2). One cell
//! per deployment round.

use cloudbench::anchors;
use cloudbench::experiments::tcp::{self, TcpBandwidthConfig, TcpBandwidthResult};
use simcore::prelude::SampleSet;
use simcore::report::Csv;
use simlab::{anchor, run_cells, RunOpts};

use super::{check, CampaignOutput};

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(quick: bool) -> usize {
    if quick {
        TcpBandwidthConfig::quick()
    } else {
        TcpBandwidthConfig::default()
    }
    .rounds
}

/// Run the Fig 5 campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let cfg = if quick {
        TcpBandwidthConfig::quick()
    } else {
        TcpBandwidthConfig::default()
    };
    eprintln!(
        "fig5: {} rounds x {} pairs x {} transfers of {:.1} GB ...",
        cfg.rounds,
        cfg.pairs_per_round,
        cfg.transfers_per_pair,
        cfg.bytes / 1.0e9
    );
    let out = run_cells(cfg.rounds, opts, |i, ctx| {
        tcp::bandwidth_round(&cfg, i, ctx)
    });
    let mut samples =
        SampleSet::with_capacity(cfg.rounds * cfg.pairs_per_round * cfg.transfers_per_pair);
    for cell in &out.cells {
        for &v in cell {
            samples.push(v);
        }
    }
    let result = TcpBandwidthResult {
        samples_mbps: samples,
    };

    let mut csv = Csv::new();
    csv.row(&["bandwidth_mbps", "cumulative_fraction"]);
    for (v, f) in result.samples_mbps.cdf() {
        csv.row(&[format!("{v:.2}"), format!("{f:.4}")]);
    }

    let checks = vec![
        check(anchors::FIG5_GE_90MBPS, result.fraction_at_least(90.0)),
        check(anchors::FIG5_LE_30MBPS, result.fraction_at_most(30.0)),
    ];
    let block = anchor::render_block("Paper anchors (Fig 5):", &checks);

    let stdout = format!("{}\n{}", result.render(), block);
    CampaignOutput {
        name: "fig5",
        cells: cfg.rounds,
        stdout,
        files: vec![
            ("fig5.csv".to_string(), csv.as_str().to_string()),
            ("fig5.anchors.txt".to_string(), block),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
