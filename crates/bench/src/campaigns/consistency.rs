//! Consistency campaign: region-aware read routing over the geo set —
//! the staleness-vs-latency frontier and the availability split during
//! failover.
//!
//! The geo campaign measured the platform through its location-service
//! front door: every read lands on the account's *primary* stamp. Here
//! the `azroute` layer routes reads by consistency mode instead, and
//! three cell families probe what the secondary replica buys:
//!
//! * **A front-door baseline** per service — `azgeo::run_geo` at the
//!   same load, the reference strong reads must match (the routing
//!   layer adds a policy decision, not a service).
//! * **Clean route cells** — the full mode × placement grid (strong /
//!   eventual / bounded(τ) / session, reader fleets pinned to the
//!   primary's, the secondary's, or a remote region) under a steady
//!   background write stream feeding the replication logs. The cells
//!   trace the frontier: strong pays the full region→primary RTT for
//!   staleness 0; eventual reads the nearest replica and observes real
//!   applied-watermark lag; bounded buys a hard staleness ceiling at
//!   the price of escalations; session pays only when its own writes
//!   have not replicated yet.
//! * **Partition cells** — a mid-window stamp-0 partition with the
//!   fleet restricted to accounts primaried on the victim. Inside the
//!   closed-form detection+promotion window strong reads produce zero
//!   goodput (anchored) while eventual and bounded keep serving from
//!   the surviving secondaries — the availability argument for
//!   relaxed reads.
//!
//! The clean bounded cells run at τ = 2 s by default; `--tau SECONDS`
//! overrides it (the CLI rejects τ ≤ 0 at parse). Partition cells pin
//! τ = 15 s — above the worst in-window lag, so the bound alone never
//! blacks the mode out.

use azgeo::{run_geo, GeoConfig, GeoResult};
use azroute::consistency::ReadPolicy;
use azroute::{run_consistency, Consistency, ReaderPlacement, RouteConfig, RouteResult};
use cloudbench::anchors;
use cloudbench::experiments::stamp_config;
use simcore::report::{num, AsciiTable, Csv};
use simfault::{FaultEpisode, FaultKind, FaultPlan};
use simlab::{anchor, run_cells, RunOpts};
use simload::{ArrivalProcess, Workload};

use super::{check, CampaignOutput};

/// Stamps in the geo set = regions in the RTT matrix (1:1).
const STAMPS: usize = 4;
/// Placement seed (same deterministic account→stamp map as geo).
const PLACEMENT_SEED: u64 = 0xA2;
/// Seed of the region↔region RTT matrix (pure function of the seed —
/// no `Sim` entropy).
const RTT_SEED: u64 = 0xC3;
/// Base cross-region RTT the matrix spreads around (s).
const RTT_BASE_S: f64 = 0.035;
/// Per-pair RTT spread in `[0, 1)`.
const RTT_SPREAD: f64 = 0.5;
/// Bounded-staleness bound in clean cells when `--tau` is not given.
const TAU_CLEAN_DEFAULT_S: f64 = 2.0;
/// Bounded-staleness bound in partition cells: above the worst
/// in-window applied lag, so bounded availability is limited by the
/// fault, not the bound.
const TAU_PARTITION_S: f64 = 15.0;
/// Campaign seed base.
const SEED: u64 = 0xA40;

/// The swept read services (queue Adds are the write stream, not a
/// read to route).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    Table,
    Blob,
}

impl Service {
    fn name(self) -> &'static str {
        match self {
            Service::Table => "table",
            Service::Blob => "blob",
        }
    }
}

/// Cell family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// `run_geo` front-door reference at the same load.
    Baseline,
    /// Routed reads, healthy set.
    Clean,
    /// Routed reads with the mid-window stamp-0 partition.
    Partition,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Baseline => "baseline",
            Kind::Clean => "clean",
            Kind::Partition => "partition",
        }
    }
}

/// Per-service sweep parameters.
struct ServicePlan {
    service: Service,
    workload: Workload,
    /// Aggregate read rate the clean cells offer (ops/s) — ~0.3× the
    /// aggregate nominal, well under the knee so latency differences
    /// are RTTs, not queueing.
    offered_ops_s: f64,
    /// Read-latency SLO (s); covers the worst cross-region RTT.
    deadline_s: f64,
}

/// Full cell grid + windows for one mode.
struct Plan {
    services: Vec<ServicePlan>,
    /// The four modes, clean-τ resolved (canonical order).
    modes: Vec<Consistency>,
    /// Placements swept in clean cells (canonical order).
    placements: Vec<ReaderPlacement>,
    /// Partition-cell modes (session only in full mode).
    partition_modes: Vec<Consistency>,
    /// Partition cells offer this restricted-pool read rate (ops/s).
    partition_ops_s: f64,
    warmup_s: f64,
    window_s: f64,
    /// Partition cells run longer so the whole RTO window and the
    /// post-promotion regime land inside the horizon.
    partition_window_s: f64,
    fleet: usize,
    accounts: u32,
    /// Aggregate background write rate in clean cells (ops/s).
    write_ops_s: f64,
    /// Stamp-0 partition opening instant.
    fault_start_s: f64,
}

/// One grid entry.
#[derive(Clone, Copy)]
struct Cell {
    si: usize,
    kind: Kind,
    /// Index into `modes` / `partition_modes` (unused for baselines).
    mi: usize,
    placement: ReaderPlacement,
}

impl Plan {
    fn new(quick: bool, tau_clean_s: f64) -> Plan {
        let mut services = vec![ServicePlan {
            service: Service::Table,
            // Small queries: service time well under the cross-region
            // RTTs the placements add, so the frontier is visible.
            workload: Workload::TableQuery {
                entities: 64,
                entity_kb: 4,
            },
            offered_ops_s: 0.3 * STAMPS as f64 * 3900.0,
            deadline_s: 0.12,
        }];
        if !quick {
            services.push(ServicePlan {
                service: Service::Blob,
                workload: Workload::BlobGet { blob_bytes: 0.25e6 },
                offered_ops_s: 0.3 * STAMPS as f64 * 400e6 / 0.25e6,
                deadline_s: 0.5,
            });
        }
        let modes = vec![
            Consistency::Strong,
            Consistency::Eventual,
            Consistency::bounded(tau_clean_s),
            Consistency::Session,
        ];
        let mut partition_modes = vec![
            Consistency::Strong,
            Consistency::Eventual,
            Consistency::bounded(TAU_PARTITION_S),
        ];
        if !quick {
            partition_modes.push(Consistency::Session);
        }
        Plan {
            services,
            modes,
            placements: vec![
                ReaderPlacement::Home,
                ReaderPlacement::Secondary,
                ReaderPlacement::Remote,
            ],
            partition_modes,
            partition_ops_s: 585.0,
            warmup_s: if quick { 2.0 } else { 5.0 },
            window_s: if quick { 8.0 } else { 15.0 },
            partition_window_s: if quick { 14.0 } else { 20.0 },
            fleet: if quick { 256 } else { 1024 },
            accounts: if quick { 64 } else { 1024 },
            write_ops_s: if quick { 64.0 } else { 256.0 },
            // Probes tick every 2 s: a partition at 4 s (quick) is
            // first missed at 4, promoted at 13 — the RTO window is
            // [4, 13); at 8 s (full) it is [8, 17), inside the 25 s
            // horizon either way.
            fault_start_s: if quick { 4.0 } else { 8.0 },
        }
    }

    /// Canonical cell order (the shard-merge contract): per-service
    /// front-door baselines, then the clean placement × mode grid, then
    /// the partition cells (table service, secondary placement).
    fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for (si, _) in self.services.iter().enumerate() {
            cells.push(Cell {
                si,
                kind: Kind::Baseline,
                mi: 0,
                placement: ReaderPlacement::Home,
            });
        }
        for (si, _) in self.services.iter().enumerate() {
            for (pi, &placement) in self.placements.iter().enumerate() {
                let _ = pi;
                for (mi, _) in self.modes.iter().enumerate() {
                    cells.push(Cell {
                        si,
                        kind: Kind::Clean,
                        mi,
                        placement,
                    });
                }
            }
        }
        for (mi, _) in self.partition_modes.iter().enumerate() {
            cells.push(Cell {
                si: 0,
                kind: Kind::Partition,
                mi,
                placement: ReaderPlacement::Secondary,
            });
        }
        cells
    }

    /// The cell's mode (partition cells draw from their own list).
    fn mode(&self, c: &Cell) -> Consistency {
        match c.kind {
            Kind::Partition => self.partition_modes[c.mi],
            _ => self.modes[c.mi],
        }
    }

    /// Cell seed — deliberately *not* keyed on the mode, so strong and
    /// eventual cells at the same service/placement run identical
    /// arrival and write schedules and their latency means subtract
    /// cleanly (the RTT-drop anchor).
    fn seed(&self, c: &Cell) -> u64 {
        let pi = match c.placement {
            ReaderPlacement::Home => 0u64,
            ReaderPlacement::Secondary => 1,
            ReaderPlacement::Remote => 2,
        };
        let kind = match c.kind {
            Kind::Partition => 1u64,
            _ => 0,
        };
        SEED ^ ((c.si as u64) << 8) ^ (pi << 16) ^ (kind << 24)
    }

    fn route_config(&self, c: &Cell) -> RouteConfig {
        let sp = &self.services[c.si];
        let partition = c.kind == Kind::Partition;
        RouteConfig {
            stamps: STAMPS,
            accounts: self.accounts,
            workload: sp.workload,
            process: ArrivalProcess::Poisson,
            offered_ops_s: if partition {
                self.partition_ops_s
            } else {
                sp.offered_ops_s
            },
            warmup_s: self.warmup_s,
            window_s: if partition {
                self.partition_window_s
            } else {
                self.window_s
            },
            fleet: self.fleet,
            deadline_s: sp.deadline_s,
            mode: self.mode(c),
            placement: c.placement,
            placement_seed: PLACEMENT_SEED,
            rtt_seed: RTT_SEED,
            rtt_base_s: RTT_BASE_S,
            rtt_spread: RTT_SPREAD,
            write_ops_s: if partition { 128.0 } else { self.write_ops_s },
            fault_start_s: partition.then_some(self.fault_start_s),
        }
    }

    fn geo_config(&self, c: &Cell) -> GeoConfig {
        let sp = &self.services[c.si];
        GeoConfig {
            stamps: STAMPS,
            accounts: self.accounts,
            workload: sp.workload,
            process: ArrivalProcess::Poisson,
            offered_ops_s: sp.offered_ops_s,
            warmup_s: self.warmup_s,
            window_s: self.window_s,
            fleet: self.fleet,
            deadline_s: sp.deadline_s,
            skew_alpha: None,
            rebalance: false,
            placement_seed: PLACEMENT_SEED,
        }
    }
}

/// Planned cell count for one mode (the bench report records this
/// without executing the campaign).
pub fn cell_count(quick: bool) -> usize {
    Plan::new(quick, TAU_CLEAN_DEFAULT_S).cells().len()
}

/// One measured cell.
enum CellOut {
    Geo(GeoResult),
    Route(RouteResult),
}

/// Run the consistency campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let tau_clean_s = opts.tau.unwrap_or(TAU_CLEAN_DEFAULT_S);
    let plan = Plan::new(quick, tau_clean_s);
    let cells = plan.cells();
    eprintln!(
        "consistency: {} stamps, {} accounts, fleet {}, {} modes x {} placements x {} services + {} baselines + {} partition cells (tau {} s clean / {} s partition) ...",
        STAMPS,
        plan.accounts,
        plan.fleet,
        plan.modes.len(),
        plan.placements.len(),
        plan.services.len(),
        plan.services.len(),
        plan.partition_modes.len(),
        tau_clean_s,
        TAU_PARTITION_S,
    );
    let out = run_cells(cells.len(), opts, |i, ctx| {
        let c = &cells[i];
        // Partition cells layer the stamp-0 partition on top of
        // whatever `--faults` plan the run carries.
        let fault = (c.kind == Kind::Partition).then(|| {
            let mut fp = ctx.fault_plan().cloned().unwrap_or_else(FaultPlan::none);
            fp.episodes.push(FaultEpisode {
                start_s: plan.fault_start_s,
                duration_s: 600.0,
                kind: FaultKind::StampPartition { stamp: 0 },
            });
            fp
        });
        let base = stamp_config(ctx);
        ctx.with_sim(plan.seed(c), |sim| {
            let _fault = fault.as_ref().map(|fp| simfault::install(sim, fp));
            match c.kind {
                Kind::Baseline => CellOut::Geo(run_geo(sim, base, &plan.geo_config(c))),
                _ => CellOut::Route(run_consistency(sim, base, &plan.route_config(c))),
            }
        })
    });
    let points: Vec<(Cell, CellOut)> = cells.iter().copied().zip(out.cells).collect();

    let mut table = AsciiTable::new(vec![
        "service",
        "cell",
        "mode",
        "place",
        "tau s",
        "offered",
        "goodput",
        "p50 ms",
        "p99 ms",
        "stale max s",
        "2nd reads",
        "escal",
        "unavail",
        "rto good",
    ])
    .with_title("Consistency routing — staleness-vs-latency frontier over the geo set".to_string());
    let mut csv = Csv::new();
    csv.row(
        &[
            "service",
            "cell",
            "mode",
            "placement",
            "tau_s",
            "offered_ops_s",
            "scheduled_ops_s",
            "achieved_ops_s",
            "goodput_ops_s",
            "p50_ms",
            "p99_ms",
            "violation_frac",
            "completed",
            "failed",
            "staleness_mean_s",
            "staleness_max_s",
            "reads_primary",
            "reads_secondary",
            "escalations",
            "unavailable",
            "writes_ok",
            "rto_window_good",
            "rto_window_start_s",
            "rto_window_end_s",
            "expected_primary_rtt_s",
            "expected_saving_rtt_s",
            "promotions",
            "lost_entries",
            "rto_s",
            "route_fp",
            "rtt_fp",
        ]
        .map(String::from),
    );
    for (c, o) in &points {
        let sp = &plan.services[c.si];
        match o {
            CellOut::Geo(r) => {
                table.row(vec![
                    sp.service.name().to_string(),
                    c.kind.name().to_string(),
                    "frontdoor".to_string(),
                    "home".to_string(),
                    "-".to_string(),
                    num(r.offered_ops_s, 1),
                    num(r.goodput_ops_s, 1),
                    num(r.slo.quantile_ms(0.50), 2),
                    num(r.slo.quantile_ms(0.99), 2),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    r.unavailable_ops.to_string(),
                    "-".to_string(),
                ]);
                let mut row = vec![
                    sp.service.name().to_string(),
                    c.kind.name().to_string(),
                    "frontdoor".to_string(),
                    "home".to_string(),
                    String::new(),
                    format!("{:.3}", r.offered_ops_s),
                    format!("{:.3}", r.scheduled_ops_s),
                    format!("{:.3}", r.achieved_ops_s),
                    format!("{:.3}", r.goodput_ops_s),
                    format!("{:.3}", r.slo.quantile_ms(0.50)),
                    format!("{:.3}", r.slo.quantile_ms(0.99)),
                    format!("{:.4}", r.slo.violation_fraction()),
                    r.slo.completed.to_string(),
                    r.slo.failed.to_string(),
                ];
                row.extend(std::iter::repeat_n(String::new(), 7));
                row.push(r.unavailable_ops.to_string());
                row.extend(std::iter::repeat_n(String::new(), 8));
                csv.row(&row);
            }
            CellOut::Route(r) => {
                let mode = plan.mode(c);
                let tau = mode.tau_s();
                table.row(vec![
                    sp.service.name().to_string(),
                    c.kind.name().to_string(),
                    mode.name().to_string(),
                    c.placement.name().to_string(),
                    tau.map(|t| num(t, 1)).unwrap_or_else(|| "-".to_string()),
                    num(r.offered_ops_s, 1),
                    num(r.goodput_ops_s, 1),
                    num(r.slo.quantile_ms(0.50), 2),
                    num(r.slo.quantile_ms(0.99), 2),
                    num(r.slo.staleness.max(), 2),
                    r.reads_secondary.to_string(),
                    r.escalations.to_string(),
                    r.unavailable.to_string(),
                    match r.rto_window {
                        Some(_) => r.rto_window_good.to_string(),
                        None => "-".to_string(),
                    },
                ]);
                csv.row(&[
                    sp.service.name().to_string(),
                    c.kind.name().to_string(),
                    mode.name().to_string(),
                    c.placement.name().to_string(),
                    tau.map(|t| format!("{t:.3}")).unwrap_or_default(),
                    format!("{:.3}", r.offered_ops_s),
                    format!("{:.3}", r.scheduled_ops_s),
                    format!("{:.3}", r.achieved_ops_s),
                    format!("{:.3}", r.goodput_ops_s),
                    format!("{:.3}", r.slo.quantile_ms(0.50)),
                    format!("{:.3}", r.slo.quantile_ms(0.99)),
                    format!("{:.4}", r.slo.violation_fraction()),
                    r.slo.completed.to_string(),
                    r.slo.failed.to_string(),
                    format!("{:.4}", r.slo.staleness.mean()),
                    format!("{:.4}", r.slo.staleness.max()),
                    r.reads_primary.to_string(),
                    r.reads_secondary.to_string(),
                    r.escalations.to_string(),
                    r.unavailable.to_string(),
                    r.writes_ok.to_string(),
                    r.rto_window_good.to_string(),
                    r.rto_window
                        .map(|(a, _)| format!("{a:.1}"))
                        .unwrap_or_default(),
                    r.rto_window
                        .map(|(_, b)| format!("{b:.1}"))
                        .unwrap_or_default(),
                    format!("{:.6}", r.expected_primary_rtt_s),
                    format!("{:.6}", r.expected_saving_rtt_s),
                    r.promotions.to_string(),
                    r.lost_entries.to_string(),
                    format!("{:.3}", r.rto_s),
                    format!("{:016x}", r.route_fingerprint),
                    format!("{:016x}", r.rtt_fingerprint),
                ]);
            }
        }
    }

    // Cell lookups for the anchors (table service throughout).
    let route = |kind: Kind, mode_name: &str, placement: ReaderPlacement| -> &RouteResult {
        points
            .iter()
            .find_map(|(c, o)| match o {
                CellOut::Route(r)
                    if c.si == 0
                        && c.kind == kind
                        && c.placement == placement
                        && plan.mode(c).name() == mode_name =>
                {
                    Some(r)
                }
                _ => None,
            })
            .expect("grid has the requested route cell")
    };
    let baseline = points
        .iter()
        .find_map(|(c, o)| match o {
            CellOut::Geo(r) if c.si == 0 => Some(r),
            _ => None,
        })
        .expect("grid has the table baseline");

    let mut checks = Vec::new();
    // 1. Strong reads from the home region vs the geo front door.
    let strong_home = route(Kind::Clean, "strong", ReaderPlacement::Home);
    let p50_ratio = strong_home.slo.quantile_ms(0.50) / baseline.slo.quantile_ms(0.50);
    checks.push(check(anchors::ROUTE_STRONG_MATCHES_GEO, p50_ratio));
    // 2. The eventual RTT drop at the secondary's region: measured mean
    // drop over the closed-form fleet-mean saving.
    let strong_sec = route(Kind::Clean, "strong", ReaderPlacement::Secondary);
    let eventual_sec = route(Kind::Clean, "eventual", ReaderPlacement::Secondary);
    let drop_s = (strong_sec.slo.latency.mean() - eventual_sec.slo.latency.mean()).max(0.0);
    checks.push(check(
        anchors::ROUTE_EVENTUAL_RTT_DROP,
        drop_s / strong_sec.expected_saving_rtt_s,
    ));
    // 3. The bounded hard invariant over EVERY bounded cell, clean and
    // partitioned: max observed staleness <= the cell's tau.
    let mut bounded_ok = true;
    let mut bounded_lines = String::new();
    for (c, o) in &points {
        if let CellOut::Route(r) = o {
            if let Some(tau) = plan.mode(c).tau_s() {
                let ok = r.slo.staleness.max() <= tau;
                bounded_ok &= ok;
                bounded_lines.push_str(&format!(
                    "  bounded {} {} {}: stale max {:.3} s <= tau {:.1} s: {}\n",
                    plan.services[c.si].service.name(),
                    c.kind.name(),
                    c.placement.name(),
                    r.slo.staleness.max(),
                    tau,
                    if ok { "ok" } else { "VIOLATED" },
                ));
            }
        }
    }
    checks.push(check(
        anchors::ROUTE_BOUNDED_WITHIN_TAU,
        if bounded_ok { 1.0 } else { 0.0 },
    ));
    // 4. Availability through the RTO window: strong blacked out,
    // eventual and bounded serving.
    let strong_p = route(Kind::Partition, "strong", ReaderPlacement::Secondary);
    let eventual_p = route(Kind::Partition, "eventual", ReaderPlacement::Secondary);
    let bounded_p = route(Kind::Partition, "bounded", ReaderPlacement::Secondary);
    let avail_ok = strong_p.rto_window_good == 0
        && eventual_p.rto_window_good > 0
        && bounded_p.rto_window_good > 0;
    checks.push(check(
        anchors::ROUTE_PARTITION_AVAILABILITY,
        if avail_ok { 1.0 } else { 0.0 },
    ));

    let mut block = anchor::render_block(
        "Consistency verdicts (strong vs front door, RTT drop, tau bound, RTO-window availability):",
        &checks,
    );
    block.push_str(&format!(
        "Frontier (table, secondary region): strong p50 {:.2} ms stale 0; eventual p50 {:.2} ms stale mean {:.2} s max {:.2} s; bounded(tau {:.1}) p50 {:.2} ms stale max {:.2} s, {} escalations; session p50 {:.2} ms, {} escalations\n",
        strong_sec.slo.quantile_ms(0.50),
        eventual_sec.slo.quantile_ms(0.50),
        eventual_sec.slo.staleness.mean(),
        eventual_sec.slo.staleness.max(),
        tau_clean_s,
        route(Kind::Clean, "bounded", ReaderPlacement::Secondary).slo.quantile_ms(0.50),
        route(Kind::Clean, "bounded", ReaderPlacement::Secondary).slo.staleness.max(),
        route(Kind::Clean, "bounded", ReaderPlacement::Secondary).escalations,
        route(Kind::Clean, "session", ReaderPlacement::Secondary).slo.quantile_ms(0.50),
        route(Kind::Clean, "session", ReaderPlacement::Secondary).escalations,
    ));
    block.push_str(&format!(
        "Expected fleet-mean RTTs (secondary placement): to primary {:.1} ms, eventual saving {:.1} ms; measured strong-minus-eventual drop {:.1} ms\n",
        strong_sec.expected_primary_rtt_s * 1e3,
        strong_sec.expected_saving_rtt_s * 1e3,
        drop_s * 1e3,
    ));
    if let Some((w0, w1)) = strong_p.rto_window {
        block.push_str(&format!(
            "RTO window [{:.0} s, {:.0} s): strong {} good reads ({} timed out), eventual {}, bounded {}; {} accounts promoted, {} entries lost\n",
            w0,
            w1,
            strong_p.rto_window_good,
            strong_p.unavailable,
            eventual_p.rto_window_good,
            bounded_p.rto_window_good,
            strong_p.promotions,
            strong_p.lost_entries,
        ));
    }
    block.push_str("Bounded-staleness audit:\n");
    block.push_str(&bounded_lines);

    let stdout = format!("{}\n{}", table.render(), block);
    CampaignOutput {
        name: "consistency",
        cells: cells.len(),
        stdout,
        files: vec![
            ("consistency.csv".to_string(), csv.as_str().to_string()),
            ("consistency.anchors.txt".to_string(), block),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
