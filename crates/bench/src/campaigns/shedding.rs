//! Shedding campaign: admission control & overload past the knee.
//!
//! The frontier campaign locates each service's saturation knee and
//! shows goodput collapsing past it — queues grow without bound, every
//! completion arrives after its deadline, and retries amplify the
//! overload. This campaign asks the follow-up question: which
//! front-door admission policy keeps goodput alive *past* the knee?
//!
//! Grid: per service, the four `azstore::admit` policies plus a
//! no-policy baseline, at offered loads around the knee (1.0x and
//! 1.3x nominal, plus 1.15x in full mode) with a bursty (MMPP-style
//! on/off) rider at 1.3x, each cell run clean and again under a
//! `simfault` front-end error storm. Shed responses flow back through
//! the client's budgeted retry path (`ShedRetry`), so the numbers
//! include the retry-amplification feedback loop a naive rejection
//! would trigger.
//!
//! The anchor per service is the goodput gain of the best policy over
//! the baseline at 1.3x bursty, judged on the mean over that point's
//! clean and storm cells: the campaign passes when the winner
//! preserves at least 1.5x the baseline's goodput (see
//! `cloudbench::anchors::SHEDDING_*` for the capped-ratio encoding).

use azstore::AdmissionConfig;
use cloudbench::anchors;
use cloudbench::experiments::stamp_config;
use simcore::report::{num, AsciiTable, Csv};
use simfault::{FaultEpisode, FaultKind, FaultPlan};
use simlab::{anchor, run_cells, RunOpts};
use simload::{run_open_loop, ArrivalProcess, LoadCellResult, LoadConfig, ShedRetry, Workload};

use super::{check, CampaignOutput};

/// The three gated services.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Service {
    Blob,
    Table,
    Queue,
}

impl Service {
    fn name(self) -> &'static str {
        match self {
            Service::Blob => "blob",
            Service::Table => "table",
            Service::Queue => "queue",
        }
    }
}

/// The swept admission policies (plus the no-policy baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    None,
    TokenBucket,
    QueueBound,
    Deadline,
    CoDel,
}

/// Canonical sweep order — baseline first so the table reads
/// "what overload looks like, then what each policy does about it".
const POLICIES: [Policy; 5] = [
    Policy::None,
    Policy::TokenBucket,
    Policy::QueueBound,
    Policy::Deadline,
    Policy::CoDel,
];

impl Policy {
    /// Parameterize the policy for one service. Every parameter is
    /// derived from the same two per-service facts the frontier sweep
    /// established — nominal capacity and the SLO deadline — so the
    /// comparison is between policy *shapes*, not hand-tuned constants:
    ///
    /// * token bucket: refill at nominal capacity, burst of ~50 ms of
    ///   capacity (absorbs scheduling jitter, not sustained overload);
    /// * queue bound: Little's law at half the deadline — with `limit`
    ///   in flight draining at nominal rate, sojourn stays near
    ///   `deadline / 2`;
    /// * deadline-aware: shed when the estimated drain time exceeds
    ///   the op's remaining SLO budget (the stashed deadline);
    /// * CoDel: target sojourn `deadline / 4`, control interval one
    ///   deadline.
    fn config(self, sp: &ServicePlan) -> AdmissionConfig {
        match self {
            Policy::None => AdmissionConfig::None,
            Policy::TokenBucket => AdmissionConfig::TokenBucket {
                rate_ops_s: sp.nominal_ops_s,
                burst: (sp.nominal_ops_s * 0.05).max(8.0),
            },
            Policy::QueueBound => AdmissionConfig::QueueBound {
                limit: ((sp.nominal_ops_s * sp.deadline_s * 0.5).ceil() as usize).max(4),
            },
            Policy::Deadline => AdmissionConfig::DeadlineAware {
                default_budget_s: sp.deadline_s,
            },
            Policy::CoDel => AdmissionConfig::CoDel {
                target_s: sp.deadline_s * 0.25,
                interval_s: sp.deadline_s,
            },
        }
    }

    fn name(self) -> &'static str {
        match self {
            Policy::None => "none",
            Policy::TokenBucket => "token_bucket",
            Policy::QueueBound => "queue_bound",
            Policy::Deadline => "deadline",
            Policy::CoDel => "codel",
        }
    }
}

/// Per-service sweep parameters (nominals match the frontier plan).
struct ServicePlan {
    service: Service,
    workload: Workload,
    nominal_ops_s: f64,
    deadline_s: f64,
}

/// One cell of the grid.
#[derive(Clone)]
struct Cell {
    si: usize,
    policy: Policy,
    multiplier: f64,
    process: ArrivalProcess,
    storm: bool,
}

/// Full sweep plan for one mode.
struct Plan {
    services: Vec<ServicePlan>,
    /// (multiplier, process) load points, in sweep order.
    loads: Vec<(f64, ArrivalProcess)>,
    warmup_s: f64,
    window_s: f64,
    fleet: usize,
    seed: u64,
}

impl Plan {
    fn new(quick: bool) -> Plan {
        let window_s = if quick { 6.0 } else { 12.0 };
        let bursty = ArrivalProcess::Bursty {
            on_mean_s: window_s / 16.0,
            off_mean_s: window_s / 8.0,
            shape: 0.7,
        };
        // Quick mode sweeps the queue service only (the cheapest ops),
        // keeping the CI grid at 30 cells; full mode covers all three
        // services. Nominal rates and deadlines match the frontier plan
        // so "1.3x" means the same thing in both campaigns.
        let blob_bytes = 8e6;
        let mut services = Vec::new();
        if !quick {
            services.push(ServicePlan {
                service: Service::Blob,
                workload: Workload::BlobGet { blob_bytes },
                nominal_ops_s: 400e6 / blob_bytes,
                deadline_s: 4.0,
            });
            services.push(ServicePlan {
                service: Service::Table,
                workload: Workload::TableQuery {
                    entities: 512,
                    entity_kb: 4,
                },
                nominal_ops_s: 3900.0,
                deadline_s: 0.08,
            });
        }
        services.push(ServicePlan {
            service: Service::Queue,
            workload: Workload::QueueAdd {
                message_bytes: 512.0,
            },
            nominal_ops_s: 585.0,
            deadline_s: 0.5,
        });
        let mut loads = vec![(1.0, ArrivalProcess::Poisson)];
        if !quick {
            loads.push((1.15, ArrivalProcess::Poisson));
        }
        loads.push((1.3, ArrivalProcess::Poisson));
        loads.push((1.3, bursty));
        Plan {
            services,
            loads,
            warmup_s: if quick { 1.5 } else { 3.0 },
            window_s,
            fleet: if quick { 48 } else { 96 },
            // Seed chosen so no bursty cell draws a heavy-tailed OFF
            // sojourn covering its entire measurement window (a
            // legitimate but degenerate outcome for Weibull(0.7)
            // on/off processes that would leave a cell with zero
            // scheduled arrivals to judge the policy by).
            seed: 0x5AED1,
        }
    }

    /// Cell grid in canonical order (part of the seed contract —
    /// `run_cells` merges shards back into this order).
    fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for si in 0..self.services.len() {
            for &policy in &POLICIES {
                for (m, process) in &self.loads {
                    for storm in [false, true] {
                        cells.push(Cell {
                            si,
                            policy,
                            multiplier: *m,
                            process: process.clone(),
                            storm,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The front-end error storm episode for one service's cells: a
    /// window covering the middle third of the measurement window,
    /// erroring 20 % of ops and stalling every op by a quarter of the
    /// service's deadline — enough to push a near-knee cell over it.
    fn storm_episode(&self, sp: &ServicePlan) -> FaultEpisode {
        FaultEpisode {
            start_s: self.warmup_s + self.window_s / 3.0,
            duration_s: self.window_s / 3.0,
            kind: FaultKind::FrontendStorm {
                error_p: 0.2,
                stall_s: sp.deadline_s * 0.25,
            },
        }
    }
}

/// One measured cell.
struct Point {
    service: Service,
    policy: Policy,
    process: &'static str,
    multiplier: f64,
    storm: bool,
    cell: LoadCellResult,
}

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(quick: bool) -> usize {
    Plan::new(quick).cells().len()
}

/// Run the shedding campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let plan = Plan::new(quick);
    let cells = plan.cells();
    eprintln!(
        "shedding: {} policies x {} load points x storm on/off over {} services ({} cells, {} s windows, fleet {}) ...",
        POLICIES.len(),
        plan.loads.len(),
        plan.services.len(),
        cells.len(),
        plan.window_s,
        plan.fleet
    );
    let out = run_cells(cells.len(), opts, |i, ctx| {
        let c = &cells[i];
        let sp = &plan.services[c.si];
        let cfg = LoadConfig {
            workload: sp.workload,
            process: c.process.clone(),
            offered_ops_s: sp.nominal_ops_s * c.multiplier,
            warmup_s: plan.warmup_s,
            window_s: plan.window_s,
            fleet: plan.fleet,
            deadline_s: sp.deadline_s,
            shed_retry: Some(ShedRetry::for_deadline(sp.deadline_s)),
        };
        let stamp_cfg = azstore::StampConfig {
            admission: c.policy.config(sp),
            ..stamp_config(ctx)
        };
        // Storm cells layer the front-end storm on top of whatever
        // `--faults` plan the run carries: clone it (steady-state
        // storage rates and all), append the episode, and install the
        // merged plan for this cell only (`install` nests, restoring
        // the outer plan on drop).
        let storm_plan = c.storm.then(|| {
            let mut fp = ctx.fault_plan().cloned().unwrap_or_else(FaultPlan::none);
            fp.episodes.push(plan.storm_episode(sp));
            fp
        });
        let seed = plan.seed ^ ((i as u64) << 16) ^ ((c.si as u64) << 8);
        ctx.with_sim(seed, |sim| {
            let _storm = storm_plan.as_ref().map(|fp| simfault::install(sim, fp));
            run_open_loop(sim, stamp_cfg, &cfg)
        })
    });
    let points: Vec<Point> = out
        .cells
        .into_iter()
        .zip(&cells)
        .map(|(cell, c)| Point {
            service: plan.services[c.si].service,
            policy: c.policy,
            process: c.process.name(),
            multiplier: c.multiplier,
            storm: c.storm,
            cell,
        })
        .collect();

    let mut table = AsciiTable::new(vec![
        "service",
        "policy",
        "process",
        "x nominal",
        "storm",
        "offered",
        "achieved",
        "goodput",
        "p99 ms",
        "SLO viol",
        "shed",
    ])
    .with_title(
        "Admission control & overload shedding — goodput past the knee (ops/s)".to_string(),
    );
    let mut csv = Csv::new();
    csv.row(&[
        "service",
        "policy",
        "process",
        "multiplier",
        "storm",
        "offered_ops_s",
        "scheduled_ops_s",
        "achieved_ops_s",
        "goodput_ops_s",
        "p50_ms",
        "p99_ms",
        "violation_frac",
        "good_frac",
        "completed",
        "failed",
        "failed_shed",
        "failed_budget",
        "failed_timeout",
        "late",
        "retries",
        "admit_accepted",
        "admit_shed",
        "latch_shed",
    ]);
    for p in &points {
        table.row(vec![
            p.service.name().to_string(),
            p.policy.name().to_string(),
            p.process.to_string(),
            num(p.multiplier, 2),
            if p.storm { "storm" } else { "clean" }.to_string(),
            num(p.cell.offered_ops_s, 1),
            num(p.cell.achieved_ops_s, 1),
            num(p.cell.goodput_ops_s, 1),
            num(p.cell.slo.quantile_ms(0.99), 1),
            format!("{:.1}%", p.cell.slo.violation_fraction() * 100.0),
            p.cell.slo.shed.to_string(),
        ]);
        csv.row(&[
            p.service.name().to_string(),
            p.policy.name().to_string(),
            p.process.to_string(),
            format!("{:.2}", p.multiplier),
            (p.storm as u8).to_string(),
            format!("{:.3}", p.cell.offered_ops_s),
            format!("{:.3}", p.cell.scheduled_ops_s),
            format!("{:.3}", p.cell.achieved_ops_s),
            format!("{:.3}", p.cell.goodput_ops_s),
            format!("{:.3}", p.cell.slo.quantile_ms(0.50)),
            format!("{:.3}", p.cell.slo.quantile_ms(0.99)),
            format!("{:.4}", p.cell.slo.violation_fraction()),
            format!("{:.4}", p.cell.slo.good_fraction()),
            p.cell.slo.completed.to_string(),
            p.cell.slo.failed.to_string(),
            p.cell.slo.shed.to_string(),
            p.cell.slo.budget_exhausted.to_string(),
            p.cell.slo.timed_out.to_string(),
            p.cell.slo.late.to_string(),
            p.cell.retries.to_string(),
            p.cell.admit_accepted.to_string(),
            p.cell.admit_shed.to_string(),
            p.cell.latch_shed.to_string(),
        ]);
    }

    // Per service: the verdict point is 1.3x bursty — the overload
    // shape the knee analysis says is hardest (same mean rate, arrival
    // bursts several times it). Each policy is judged on its *mean*
    // goodput over that point's clean and storm cells: a policy that
    // keeps goodput alive past the knee must do so both in fair
    // weather and through the front-end error storm, and averaging the
    // two halves the single-cell variance a heavy-tailed on/off
    // arrival draw injects. The anchor is the winner's gain over the
    // no-policy baseline on the same mean, capped so a collapsed
    // baseline can't make the ratio meaninglessly large (see the
    // anchor constants' docs).
    let verdict_goodput = |svc: Service, policy: Policy| -> (f64, f64) {
        let mut clean = 0.0;
        let mut storm = 0.0;
        for p in &points {
            if p.service == svc
                && p.policy == policy
                && p.process == "bursty"
                && p.multiplier == 1.3
            {
                if p.storm {
                    storm = p.cell.goodput_ops_s;
                } else {
                    clean = p.cell.goodput_ops_s;
                }
            }
        }
        (clean, storm)
    };
    let mut lines = String::new();
    let mut checks = Vec::new();
    for sp in &plan.services {
        let (base_clean, base_storm) = verdict_goodput(sp.service, Policy::None);
        let base = (base_clean + base_storm) / 2.0;
        let (winner, win_clean, win_storm) = POLICIES
            .iter()
            .filter(|&&pl| pl != Policy::None)
            .map(|&pl| {
                let (c, s) = verdict_goodput(sp.service, pl);
                (pl, c, s)
            })
            .fold(
                (Policy::None, f64::NEG_INFINITY, f64::NEG_INFINITY),
                |acc, (pl, c, s)| {
                    if c + s > acc.1 + acc.2 {
                        (pl, c, s)
                    } else {
                        acc
                    }
                },
            );
        let win = (win_clean + win_storm) / 2.0;
        let gain = if base > 0.0 {
            win / base
        } else if win > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        lines.push_str(&format!(
            "  {}: winner '{}' at 1.3x bursty — mean goodput {} vs baseline {} ops/s ({}x gain; >= 1.5x required); clean {} vs {}, under front-end storm {} vs {}\n",
            sp.service.name(),
            winner.name(),
            num(win, 1),
            num(base, 1),
            if gain.is_finite() { num(gain, 2) } else { "inf".to_string() },
            num(win_clean, 1),
            num(base_clean, 1),
            num(win_storm, 1),
            num(base_storm, 1),
        ));
        let a = match sp.service {
            Service::Blob => anchors::SHEDDING_BLOB_GOODPUT_GAIN,
            Service::Table => anchors::SHEDDING_TABLE_GOODPUT_GAIN,
            Service::Queue => anchors::SHEDDING_QUEUE_GOODPUT_GAIN,
        };
        checks.push(check(a, gain.min(4.5)));
    }

    let mut block = anchor::render_block(
        "Overload robustness (winner-vs-baseline goodput gain, capped ratio):",
        &checks,
    );
    block.push_str("Policy verdicts at 1.3x offered load:\n");
    block.push_str(&lines);

    let stdout = format!("{}\n{}", table.render(), block);
    CampaignOutput {
        name: "shedding",
        cells: cells.len(),
        stdout,
        files: vec![
            ("shedding.csv".to_string(), csv.as_str().to_string()),
            ("shedding.anchors.txt".to_string(), block),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
