//! Fig 3 campaign: average per-client queue performance vs concurrency
//! (paper §3.3). One cell per (op, clients) phase plus two cells for
//! the queue-length invariance check.

use cloudbench::anchors;
use cloudbench::experiments::queue::{self, QueueOp, QueueScalingConfig, QueueScalingResult};
use simcore::report::Csv;
use simlab::{anchor, run_cells, RunOpts};

use super::{check, CampaignOutput};

enum Fig3Cell {
    Row(queue::QueueScalingRow),
    InvarianceRate(f64),
}

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(quick: bool) -> usize {
    let cfg = if quick {
        QueueScalingConfig::quick()
    } else {
        QueueScalingConfig::default()
    };
    QueueOp::ALL.len() * cfg.client_counts.len() + 2
}

/// Run the Fig 3 campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    let cfg = if quick {
        QueueScalingConfig::quick()
    } else {
        QueueScalingConfig::default()
    };
    eprintln!(
        "fig3: sweeping {:?} clients, {} ops each, {} B messages ...",
        cfg.client_counts, cfg.ops_per_client, cfg.message_bytes
    );
    let points: Vec<(QueueOp, usize)> = QueueOp::ALL
        .iter()
        .flat_map(|op| cfg.client_counts.iter().map(move |c| (*op, *c)))
        .collect();
    // Queue-length invariance arms (200 k vs 2 M messages; scaled when
    // quick) ride along as the final two cells.
    let scale = if quick { 0.05 } else { 1.0 };
    let invariance_msgs = [(200_000.0 * scale) as usize, (2_000_000.0 * scale) as usize];
    let np = points.len();
    let out = run_cells(np + 2, opts, |i, ctx| {
        if i < np {
            let (op, clients) = points[i];
            Fig3Cell::Row(queue::run_phase(&cfg, op, clients, ctx))
        } else {
            Fig3Cell::InvarianceRate(queue::length_invariance_at(
                77,
                invariance_msgs[i - np],
                ctx,
            ))
        }
    });
    let mut rows = Vec::with_capacity(np);
    let mut rates = Vec::with_capacity(2);
    for cell in out.cells {
        match cell {
            Fig3Cell::Row(r) => rows.push(r),
            Fig3Cell::InvarianceRate(v) => rates.push(v),
        }
    }
    let result = QueueScalingResult {
        message_bytes: cfg.message_bytes,
        rows,
    };
    let (small, large) = (rates[0], rates[1]);

    let mut csv = Csv::new();
    csv.row(&[
        "op",
        "clients",
        "per_client_ops_s",
        "aggregate_ops_s",
        "ok",
        "failed",
    ]);
    for r in &result.rows {
        csv.row(&[
            r.op.to_string(),
            r.clients.to_string(),
            format!("{:.3}", r.per_client_ops_s),
            format!("{:.2}", r.aggregate_ops_s),
            r.ok.to_string(),
            r.failed.to_string(),
        ]);
    }

    let mut checks = Vec::new();
    if let Some(r) = result.at(QueueOp::Add, 64) {
        checks.push(check(anchors::FIG3_ADD_PEAK_OPS, r.aggregate_ops_s));
    }
    if let Some(r) = result.at(QueueOp::Receive, 64) {
        checks.push(check(anchors::FIG3_RECV_PEAK_OPS, r.aggregate_ops_s));
    }
    if let Some(r) = result.at(QueueOp::Peek, 128) {
        checks.push(check(anchors::FIG3_PEEK_128_OPS, r.aggregate_ops_s));
    }
    if let Some(r) = result.at(QueueOp::Peek, 192) {
        checks.push(check(anchors::FIG3_PEEK_192_OPS, r.aggregate_ops_s));
    }
    let mut block = anchor::render_block("Paper anchors (Fig 3):", &checks);
    block.push_str(&format!(
        "  queue length invariance: {:.1} ops/s at {}k msgs vs {:.1} ops/s at {}k msgs (paper: no variation)\n",
        small,
        (200.0 * scale) as u64,
        large,
        (2000.0 * scale) as u64
    ));

    let stdout = format!("{}\n{}", result.render(), block);
    CampaignOutput {
        name: "fig3",
        cells: np + 2,
        stdout,
        files: vec![
            ("fig3.csv".to_string(), csv.as_str().to_string()),
            ("fig3.anchors.txt".to_string(), block),
        ],
        anchors: checks,
        trace_summary: out.trace_summary,
    }
}
