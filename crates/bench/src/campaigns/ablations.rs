//! Ablation campaign: turn each mechanism off and show which paper
//! observation disappears (see the table in DESIGN.md).
//!
//! | Mechanism | Paper artifact it generates |
//! |---|---|
//! | per-flow front-end ceiling | Fig 1's per-client decline (halving at 32) |
//! | latch contention inflation | Fig 3's Add/Receive decline past 64 clients |
//! | background tenant traffic  | Fig 5's ≤30 MB/s contended tail |
//! | host performance variation | Fig 7's VM-timeout spikes |
//! | the 4× watchdog            | bounded retries instead of a slow tail |
//!
//! Six cells: the three micro ablations and the three ModisAzure
//! configurations. The ablations compare mechanisms against themselves,
//! so `azlab` runs this campaign without a fault plan regardless of
//! `--faults`.

use ::modis::campaign::run_campaign_on;
use ::modis::{ModisConfig, Outcome};
use azstore::{StampConfig, StorageStamp};
use cloudbench::experiments::tcp::{self, TcpBandwidthConfig};
use simcore::report::AsciiTable;
use simlab::{run_cells, CellCtx, RunOpts};

use super::CampaignOutput;

enum AblationCell {
    Section(String),
    Modis {
        name: &'static str,
        vm_timeouts: u64,
        max_daily_pct: f64,
        elapsed: String,
    },
}

/// Per-client download bandwidth at `clients` with/without the
/// front-end ceiling.
fn blob_per_client(clients: usize, ablate: bool, ctx: &CellCtx) -> f64 {
    ctx.with_sim(31, |sim| {
        let stamp = StorageStamp::standalone(
            sim,
            StampConfig {
                ablate_no_frontend_ceiling: ablate,
                ..StampConfig::default()
            },
        );
        stamp.blob_service().seed("b", "x", 200.0e6);
        let rates = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for _ in 0..clients {
            let c = stamp.attach_small_client();
            let r = rates.clone();
            sim.spawn(async move {
                let dl = c.blob.get("b", "x").await.unwrap();
                r.borrow_mut().push(dl.rate_bps() / 1.0e6);
            });
        }
        sim.run();
        let v = rates.borrow();
        v.iter().sum::<f64>() / v.len() as f64
    })
}

/// Queue Add aggregate at `clients` with/without latch inflation.
fn queue_add_aggregate(clients: usize, ablate: bool, ctx: &CellCtx) -> f64 {
    ctx.with_sim(32, |sim| {
        let stamp = StorageStamp::standalone(
            sim,
            StampConfig {
                ablate_no_latch_inflation: ablate,
                ..StampConfig::default()
            },
        );
        let ops = 40usize;
        let t0 = sim.now();
        for _ in 0..clients {
            let c = stamp.attach_small_client();
            sim.spawn(async move {
                for i in 0..ops {
                    c.queue.add("q", format!("m{i}"), 512.0).await.unwrap();
                }
            });
        }
        sim.run();
        (clients * ops) as f64 / (sim.now() - t0).as_secs_f64()
    })
}

fn frontend_ceiling_section(ctx: &CellCtx) -> String {
    let mut t = AsciiTable::new(vec!["clients", "with ceiling MB/s", "without MB/s"])
        .with_title("Ablation 1 — per-flow front-end ceiling (Fig 1's per-client decline)");
    for clients in [1usize, 32] {
        t.row(vec![
            clients.to_string(),
            format!("{:.2}", blob_per_client(clients, false, ctx)),
            format!("{:.2}", blob_per_client(clients, true, ctx)),
        ]);
    }
    let mut out = t.render();
    out.push_str("paper: 32 clients get HALF a lone client's bandwidth; without the\nceiling they would keep nearly all of it until the 400 MB/s pipe binds.\n\n");
    out
}

fn latch_inflation_section(ctx: &CellCtx) -> String {
    let mut t = AsciiTable::new(vec!["clients", "with inflation ops/s", "without ops/s"])
        .with_title("Ablation 2 — latch contention inflation (Fig 3's decline past 64)");
    for clients in [64usize, 192] {
        t.row(vec![
            clients.to_string(),
            format!("{:.0}", queue_add_aggregate(clients, false, ctx)),
            format!("{:.0}", queue_add_aggregate(clients, true, ctx)),
        ]);
    }
    let mut out = t.render();
    out.push_str("paper: Add peaks at 64 clients (569 ops/s) and DECLINES at 192;\nwithout hold inflation throughput plateaus instead of declining.\n\n");
    out
}

fn background_traffic_section(quick: bool) -> String {
    let mut cfg = TcpBandwidthConfig::quick();
    if !quick {
        cfg.rounds = 16;
    }
    let with_bg = tcp::run_bandwidth(&cfg);
    cfg.background = false;
    let without_bg = tcp::run_bandwidth(&cfg);
    let mut t = AsciiTable::new(vec!["metric", "with background", "without"])
        .with_title("Ablation 3 — background tenant traffic (Fig 5's contended tail)");
    t.row(vec![
        "P(<= 30 MB/s)".to_string(),
        format!("{:.1}%", with_bg.fraction_at_most(30.0) * 100.0),
        format!("{:.1}%", without_bg.fraction_at_most(30.0) * 100.0),
    ]);
    t.row(vec![
        "P(>= 90 MB/s)".to_string(),
        format!("{:.1}%", with_bg.fraction_at_least(90.0) * 100.0),
        format!("{:.1}%", without_bg.fraction_at_least(90.0) * 100.0),
    ]);
    let mut out = t.render();
    out.push_str("paper: ~15% of transfers fall to <=30 MB/s; the tail is entirely\nco-tenant traffic — removing it leaves nearly all transfers >=90 MB/s.\n\n");
    out
}

fn modis_variant(name: &'static str, cfg: ModisConfig, ctx: &CellCtx) -> AblationCell {
    ctx.with_sim(cfg.seed, |sim| {
        let r = run_campaign_on(sim, cfg.clone());
        AblationCell::Modis {
            name,
            vm_timeouts: r.telemetry.count(Outcome::VmExecutionTimeout),
            max_daily_pct: r.telemetry.max_daily_timeout_fraction() * 100.0,
            elapsed: r.elapsed.to_string(),
        }
    })
}

/// Planned cell count for one mode (recorded by `azlab bench`).
pub fn cell_count(_quick: bool) -> usize {
    6
}

/// Run the ablation campaign.
pub fn run(quick: bool, opts: &RunOpts) -> CampaignOutput {
    eprintln!("ablations: 3 micro ablations + 3 ModisAzure configurations ...");
    // Ablations measure each mechanism against its own absence; a fault
    // plan on top would confound the comparison, so only trace/shards
    // flow through.
    let cell_opts = RunOpts {
        shards: opts.shards,
        faults: None,
        trace: opts.trace.clone(),
        tau: None,
    };
    let base = ModisConfig::quick();
    let mut no_var = base.clone();
    no_var.variation = false;
    let mut no_dog = base.clone();
    no_dog.watchdog = false;
    let out = run_cells(6, &cell_opts, |i, ctx| match i {
        0 => AblationCell::Section(frontend_ceiling_section(ctx)),
        1 => AblationCell::Section(latch_inflation_section(ctx)),
        2 => AblationCell::Section(background_traffic_section(quick)),
        3 => modis_variant("full system", base.clone(), ctx),
        4 => modis_variant("no host variation", no_var.clone(), ctx),
        _ => modis_variant("no watchdog", no_dog.clone(), ctx),
    });

    let mut text = String::new();
    let mut t = AsciiTable::new(vec![
        "configuration",
        "vm timeouts",
        "max daily %",
        "campaign length",
    ])
    .with_title("Ablations 4 & 5 — host variation and the 4x watchdog (Fig 7)");
    for cell in &out.cells {
        match cell {
            AblationCell::Section(s) => text.push_str(s),
            AblationCell::Modis {
                name,
                vm_timeouts,
                max_daily_pct,
                elapsed,
            } => {
                t.row(vec![
                    name.to_string(),
                    vm_timeouts.to_string(),
                    format!("{max_daily_pct:.2}"),
                    elapsed.clone(),
                ]);
            }
        }
    }
    text.push_str(&t.render());
    text.push_str(
        "paper: sporadic >4x slowdowns hit up to 16% of a day's tasks; without\nhost variation no timeouts exist, and without the watchdog the same\nslowdowns surface as a silent long tail instead of bounded retries.\n",
    );

    CampaignOutput {
        name: "ablations",
        cells: 6,
        stdout: text.clone(),
        files: vec![("ablations.txt".to_string(), text)],
        anchors: Vec::new(),
        trace_summary: out.trace_summary,
    }
}
