//! Regenerate Table 2: the ModisAzure task breakdown and failure
//! taxonomy over the Feb–Sep 2010 campaign (paper §5.2). Thin wrapper
//! over the combined `modis` campaign (equivalent to `azlab run
//! table2`), which also emits the Fig 7 artifacts — the two figures
//! come from the same simulated run.

fn main() {
    bench::campaigns::standalone_main("table2");
}
