//! Regenerate Table 2: the ModisAzure task breakdown and failure
//! taxonomy over the Feb–Sep 2010 campaign (paper §5.2).
//!
//! Full scale runs ≈ 3 M task executions (a few minutes of wall time);
//! `--quick` runs a scaled-down month.

use bench::{fault_plan, print_anchors, quick_mode, run_traced, save, trace_path};
use cloudbench::anchors;
use modis::campaign::run_campaign_on;
use modis::{run_campaign, ModisConfig};

fn main() {
    let mut cfg = if quick_mode() {
        ModisConfig::quick()
    } else {
        ModisConfig::default()
    };
    if let Some(plan) = fault_plan() {
        eprintln!("table2: fault plan \"{}\"", plan.name);
        cfg.faults = plan;
    }
    eprintln!(
        "table2: {}-day campaign, {} workers (this simulates millions of task executions) ...",
        cfg.days, cfg.workers
    );
    let report = run_campaign(cfg);
    println!("{}", report.telemetry.render_table2());
    println!(
        "distinct tasks: {}   executions: {}   executions/task: {:.3}  [paper: ~2.7M distinct, 3.05M executions, 1.13]",
        report.distinct_tasks,
        report.executions,
        report.executions_per_task()
    );
    println!(
        "campaign: {} requests, {} monitor kills, {} sim events, drained in {}",
        report.manager.requests, report.monitor_kills, report.events, report.elapsed
    );
    save("table2.txt", &report.telemetry.render_table2());

    let t = &report.telemetry;
    let block = print_anchors(
        "Paper anchors (Table 2):",
        &[
            (
                anchors::TAB2_SUCCESS_RATE,
                t.fraction(modis::Outcome::Success),
            ),
            (anchors::TAB2_VM_TIMEOUT_RATE, t.overall_timeout_fraction()),
        ],
    );
    save("table2.anchors.txt", &block);

    // Traced single-point run: a miniature campaign (task.execute spans
    // tagged with failure class, over the real storage/network spans).
    if let Some(path) = trace_path() {
        eprintln!("table2: traced mini-campaign ...");
        run_traced(&path, 0x0D15, |sim| {
            let mut cfg = ModisConfig {
                workers: 8,
                days: 2,
                arrival_scale: 4.0,
                request_tiles: (2, 4),
                request_days: (4, 10),
                ..ModisConfig::quick()
            };
            if let Some(plan) = fault_plan() {
                cfg.faults = plan;
            }
            let report = run_campaign_on(sim, cfg);
            eprintln!("table2: traced {} executions", report.executions);
        });
    }
}
