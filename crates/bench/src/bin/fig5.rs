//! Regenerate Fig 5: cumulative TCP bandwidth between two small VMs
//! sending 2 GB through TCP internal endpoints (paper §4.2). Thin
//! wrapper over the `fig5` campaign — equivalent to `azlab run fig5`.

fn main() {
    bench::campaigns::standalone_main("fig5");
}
