//! Regenerate Fig 5: cumulative TCP bandwidth between two small VMs
//! sending 2 GB through TCP internal endpoints (paper §4.2).

use bench::{print_anchors, quick_mode, run_traced, save, trace_path};
use cloudbench::anchors;
use cloudbench::experiments::tcp::{self, TcpBandwidthConfig};
use dcnet::{LinkModel, Network};
use simcore::report::Csv;

fn main() {
    let cfg = if quick_mode() {
        TcpBandwidthConfig::quick()
    } else {
        TcpBandwidthConfig::default()
    };
    eprintln!(
        "fig5: {} rounds x {} pairs x {} transfers of {:.1} GB ...",
        cfg.rounds,
        cfg.pairs_per_round,
        cfg.transfers_per_pair,
        cfg.bytes / 1.0e9
    );
    let result = tcp::run_bandwidth(&cfg);
    println!("{}", result.render());

    let mut csv = Csv::new();
    csv.row(&["bandwidth_mbps", "cumulative_fraction"]);
    for (v, f) in result.samples_mbps.cdf() {
        csv.row(&[format!("{v:.2}"), format!("{f:.4}")]);
    }
    save("fig5.csv", csv.as_str());

    let block = print_anchors(
        "Paper anchors (Fig 5):",
        &[
            (anchors::FIG5_GE_90MBPS, result.fraction_at_least(90.0)),
            (anchors::FIG5_LE_30MBPS, result.fraction_at_most(30.0)),
        ],
    );
    save("fig5.anchors.txt", &block);

    // Traced single-point run: 4 bulk sender pairs sharing a core link
    // (net.flow spans with rate-update counters as shares rebalance).
    if let Some(path) = trace_path() {
        eprintln!("fig5: traced bulk-transfer scenario ...");
        run_traced(&path, 0xF165, |sim| {
            let net = Network::new(sim);
            let core = net.add_link("rack.core", LinkModel::Shared { capacity: 250.0e6 });
            for i in 0..4 {
                let net = net.clone();
                let nic =
                    net.add_link(format!("vm{i}.tx"), LinkModel::Shared { capacity: 125.0e6 });
                sim.spawn(async move {
                    net.transfer(&[nic, core], 100.0e6, f64::INFINITY).await;
                });
            }
        });
    }
}
