//! `azlab` — the campaign driver. One binary supersedes the per-figure
//! regeneration mains:
//!
//! ```text
//! azlab run all [--quick] [--shards N] [--faults <preset>]
//! azlab run <target> [--quick] [--shards N] [--faults <preset>] [--trace <path>] [--tau SECONDS]
//! azlab run --list
//! azlab bench [--shards N] [--out <path>]
//! ```
//!
//! `run` executes the selected campaigns through the deterministic
//! sharded runner, writes their artifacts into `results/` (or
//! `results/quick/` under `--quick`) and finishes with a
//! machine-readable `manifest.json` recording per-campaign cell counts,
//! wall-clock and anchor verdicts. The merged output is byte-identical
//! for any `--shards N`.
//!
//! `run --list` enumerates the campaign targets (and their aliases)
//! one per line and exits 0; an unknown target is a hard usage error
//! (exit 2) that prints the same list.
//!
//! `bench` times the quick campaign set and the ModisAzure campaign at
//! 1 vs 4 shards, writing a `BENCH_pr10.json` wall-clock report with
//! each campaign's planned cell count in both modes (quick and full)
//! next to its quick wall-clock. Times are recorded in microseconds:
//! several quick campaigns finish in well under a millisecond, where
//! ms-resolution rows read `0`.

use std::path::PathBuf;
use std::time::Instant;

use bench::campaigns;
use simlab::{CampaignEntry, Manifest, RunOpts, TraceSpec};

const USAGE: &str = "azlab <run|bench> [target] [--quick] [--shards N] [--faults <preset>] [--trace <path>] [--tau SECONDS] [--out <path>] [--list]\n  targets: all fig1 fig2 fig3 fig4 fig5 table1 table2 fig7 modis frontier geo shedding elastic faas consistency ablations  (azlab run --list enumerates them)";

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

fn main() {
    let flags = simlab::cli::parse_or_exit(USAGE);
    match flags.words.first().map(String::as_str) {
        Some("run") => cmd_run(flags),
        Some("bench") => cmd_bench(flags),
        Some(other) => usage_exit(&format!("unknown subcommand {other:?}")),
        None => usage_exit("missing subcommand"),
    }
}

fn cmd_run(flags: simlab::Flags) {
    if flags.list {
        println!("all");
        for name in campaigns::ALL {
            println!("{name}");
        }
        println!("table2 (alias of modis)");
        println!("fig7 (alias of modis)");
        return;
    }
    if flags.words.len() > 2 {
        usage_exit(&format!("unexpected argument {:?}", flags.words[2]));
    }
    let target = flags.words.get(1).map(String::as_str).unwrap_or("all");
    let names: Vec<&'static str> = if target == "all" {
        campaigns::ALL.to_vec()
    } else {
        match campaigns::canonical(target) {
            Some(name) => vec![name],
            None => usage_exit(&format!(
                "unknown target {target:?} (known: all {} table2 fig7)",
                campaigns::ALL.join(" ")
            )),
        }
    };
    if flags.trace.is_some() && names.len() > 1 {
        usage_exit(
            "--trace needs a single target (it captures one campaign's representative cell)",
        );
    }
    let shards = flags.shards.unwrap_or_else(campaigns::default_shards);
    let dir = bench::results_dir_for(flags.quick);

    let mut manifest = Manifest {
        quick: flags.quick,
        shards,
        faults: flags
            .faults
            .as_ref()
            .map(|p| p.name.to_string())
            .unwrap_or_else(|| "none".to_string()),
        campaigns: Vec::new(),
    };
    for name in names {
        let opts = RunOpts {
            shards,
            faults: flags.faults.clone(),
            trace: flags.trace.clone().map(|path| TraceSpec { cell: 0, path }),
            tau: flags.tau,
        };
        let t0 = Instant::now();
        let out = campaigns::run(name, flags.quick, &opts).expect("names are canonical");
        let wall_us = t0.elapsed().as_micros() as u64;
        campaigns::emit(&out, &dir);
        manifest.campaigns.push(CampaignEntry {
            name: out.name.to_string(),
            cells: out.cells,
            wall_us,
            anchors: out.anchors,
            artifacts: out.files.into_iter().map(|(n, _)| n).collect(),
        });
    }
    let path = dir.join("manifest.json");
    if std::fs::write(&path, manifest.to_json()).is_ok() {
        println!("[saved {}]", path.display());
    }
}

fn cmd_bench(flags: simlab::Flags) {
    if flags.words.len() > 1 {
        usage_exit(&format!("unexpected argument {:?}", flags.words[1]));
    }
    let shards = flags.shards.unwrap_or(4);
    let time = |name: &str, shards: usize| -> (usize, u64) {
        let opts = RunOpts {
            shards,
            faults: None,
            trace: None,
            tau: None,
        };
        let t0 = Instant::now();
        let out = campaigns::run(name, true, &opts).expect("canonical name");
        (out.cells, t0.elapsed().as_micros() as u64)
    };

    // The acceptance measurement: the day-segmented ModisAzure campaign
    // (the old serial table2) at 1 shard vs 4.
    eprintln!("azlab bench: modis --quick serial vs 4 shards ...");
    let (_, modis_serial_us) = time("modis", 1);
    let (_, modis_shards4_us) = time("modis", 4);
    let speedup = modis_serial_us as f64 / modis_shards4_us.max(1) as f64;

    eprintln!("azlab bench: full quick campaign set at {shards} shards ...");
    let mut rows = Vec::new();
    let mut total_us = 0u64;
    for name in campaigns::ALL {
        let (cells, us) = time(name, shards);
        total_us += us;
        rows.push((name, cells, us));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"azlab\",\n  \"quick\": true,\n");
    json.push_str(&format!("  \"shards\": {shards},\n"));
    // The speedup is only interpretable against the cores that backed
    // the worker threads (a 1-core host measures ~1.0x by physics).
    json.push_str(&format!(
        "  \"host_cpus\": {},\n",
        campaigns::default_shards()
    ));
    json.push_str(&format!(
        "  \"modis_serial_us\": {modis_serial_us},\n  \"modis_shards4_us\": {modis_shards4_us},\n"
    ));
    json.push_str(&format!("  \"modis_speedup_4shards\": {speedup:.2},\n"));
    json.push_str("  \"campaigns\": [\n");
    for (i, (name, cells, us)) in rows.iter().enumerate() {
        let cells_full = campaigns::cell_count(name, false).expect("canonical name");
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"cells_quick\": {cells}, \"cells_full\": {cells_full}, \"wall_us\": {us}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"total_us\": {total_us}\n}}\n"));

    let path = flags.out.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_pr10.json")
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "[saved {}]  modis quick: {}us serial, {}us at 4 shards ({speedup:.2}x)",
            path.display(),
            modis_serial_us,
            modis_shards4_us
        ),
        Err(e) => eprintln!("bench: failed to write {}: {e}", path.display()),
    }
}
