//! Regenerate Fig 2: average per-client table performance vs concurrency
//! (paper §3.2), including the 64 kB high-concurrency timeout behaviour.

use azstore::{Entity, StampConfig, StorageStamp};
use bench::{quick_mode, run_traced, save, trace_path};
use cloudbench::experiments::table::{self, TableOp, TableScalingConfig};
use simcore::report::Csv;

fn main() {
    let base = if quick_mode() {
        TableScalingConfig::quick()
    } else {
        TableScalingConfig::default()
    };

    // The headline figure at 4 kB.
    eprintln!("fig2: 4 kB sweep over {:?} clients ...", base.client_counts);
    let result = table::run(&base);
    println!("{}", result.render());

    let mut csv = Csv::new();
    csv.row(&[
        "op",
        "clients",
        "per_client_ops_s",
        "aggregate_ops_s",
        "ok",
        "timeouts",
        "busy",
        "clients_fully_ok",
    ]);
    for r in &result.rows {
        csv.row(&[
            r.op.to_string(),
            r.clients.to_string(),
            format!("{:.3}", r.per_client_ops_s),
            format!("{:.2}", r.aggregate_ops_s),
            r.ok.to_string(),
            r.timeouts.to_string(),
            r.busy.to_string(),
            r.clients_fully_ok.to_string(),
        ]);
    }
    save("fig2.csv", csv.as_str());

    let mut summary = String::new();
    summary.push_str("Paper anchors (Fig 2, shapes):\n");
    for op in TableOp::ALL {
        let peak = result.peak_clients(op);
        summary.push_str(&format!(
            "  {op}: aggregate throughput peaks at {peak} clients\n"
        ));
    }
    summary.push_str(
        "  paper: Insert/Query unsaturated at 192; Update peaks at 8; Delete peaks at 128\n",
    );

    // The 64 kB cliff (only the insert phase matters).
    let cliff_cfg = TableScalingConfig {
        entity_kb: 64,
        client_counts: vec![64, 128, 192],
        inserts_per_client: if quick_mode() { 60 } else { 500 },
        queries_per_client: 0,
        updates_per_client: 0,
        ..base
    };
    eprintln!(
        "fig2: 64 kB insert cliff at {:?} clients ...",
        cliff_cfg.client_counts
    );
    let cliff = table::run(&cliff_cfg);
    summary.push_str("\n64 kB Insert (paper: 94/128 and 89/192 clients finished cleanly):\n");
    for clients in [64usize, 128, 192] {
        if let Some(r) = cliff.at(TableOp::Insert, clients) {
            summary.push_str(&format!(
                "  {} clients: {} finished without errors, {} timeouts\n",
                clients, r.clients_fully_ok, r.timeouts
            ));
        }
    }
    print!("{summary}");
    save("fig2.anchors.txt", &summary);

    // Traced single-point run: 4 clients through the full four-phase
    // protocol (the Fig 2 workload in miniature). Spans cover the SDK
    // call, the front-end station and the partition commit of every op.
    if let Some(path) = trace_path() {
        eprintln!("fig2: traced 4-client table scenario ...");
        run_traced(&path, 0xF162, |sim| {
            let stamp = StorageStamp::standalone(sim, StampConfig::default());
            stamp
                .table_service()
                .seed("bench", Entity::benchmark("part0", "shared", 4));
            for ci in 0..4 {
                let acct = stamp.attach_small_client();
                sim.spawn(async move {
                    for k in 0..10 {
                        let e = Entity::benchmark("part0", &format!("c{ci}-r{k}"), 4);
                        let _ = acct.table.insert("bench", e).await;
                    }
                    for _ in 0..10 {
                        let _ = acct.table.query_point("bench", "part0", "shared").await;
                    }
                    for _ in 0..5 {
                        let e = Entity::benchmark("part0", "shared", 4);
                        let _ = acct.table.update("bench", e).await;
                    }
                    for k in 0..10 {
                        let _ = acct
                            .table
                            .delete("bench", "part0", &format!("c{ci}-r{k}"))
                            .await;
                    }
                });
            }
        });
    }
}
