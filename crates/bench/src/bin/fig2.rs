//! Regenerate Fig 2: average per-client table performance vs concurrency
//! (paper §3.2), including the 64 kB high-concurrency timeout behaviour.

use bench::{quick_mode, save};
use cloudbench::experiments::table::{self, TableOp, TableScalingConfig};
use simcore::report::Csv;

fn main() {
    let base = if quick_mode() {
        TableScalingConfig::quick()
    } else {
        TableScalingConfig::default()
    };

    // The headline figure at 4 kB.
    eprintln!("fig2: 4 kB sweep over {:?} clients ...", base.client_counts);
    let result = table::run(&base);
    println!("{}", result.render());

    let mut csv = Csv::new();
    csv.row(&[
        "op",
        "clients",
        "per_client_ops_s",
        "aggregate_ops_s",
        "ok",
        "timeouts",
        "busy",
        "clients_fully_ok",
    ]);
    for r in &result.rows {
        csv.row(&[
            r.op.to_string(),
            r.clients.to_string(),
            format!("{:.3}", r.per_client_ops_s),
            format!("{:.2}", r.aggregate_ops_s),
            r.ok.to_string(),
            r.timeouts.to_string(),
            r.busy.to_string(),
            r.clients_fully_ok.to_string(),
        ]);
    }
    save("fig2.csv", csv.as_str());

    let mut summary = String::new();
    summary.push_str("Paper anchors (Fig 2, shapes):\n");
    for op in TableOp::ALL {
        let peak = result.peak_clients(op);
        summary.push_str(&format!("  {op}: aggregate throughput peaks at {peak} clients\n"));
    }
    summary.push_str(
        "  paper: Insert/Query unsaturated at 192; Update peaks at 8; Delete peaks at 128\n",
    );

    // The 64 kB cliff (only the insert phase matters).
    let cliff_cfg = TableScalingConfig {
        entity_kb: 64,
        client_counts: vec![64, 128, 192],
        inserts_per_client: if quick_mode() { 60 } else { 500 },
        queries_per_client: 0,
        updates_per_client: 0,
        ..base
    };
    eprintln!("fig2: 64 kB insert cliff at {:?} clients ...", cliff_cfg.client_counts);
    let cliff = table::run(&cliff_cfg);
    summary.push_str("\n64 kB Insert (paper: 94/128 and 89/192 clients finished cleanly):\n");
    for clients in [64usize, 128, 192] {
        if let Some(r) = cliff.at(TableOp::Insert, clients) {
            summary.push_str(&format!(
                "  {} clients: {} finished without errors, {} timeouts\n",
                clients, r.clients_fully_ok, r.timeouts
            ));
        }
    }
    print!("{summary}");
    save("fig2.anchors.txt", &summary);
}
