//! Regenerate Fig 2: average per-client table performance vs
//! concurrency (paper §3.2), including the 64 kB insert cliff. Thin
//! wrapper over the `fig2` campaign — equivalent to `azlab run fig2`.

fn main() {
    bench::campaigns::standalone_main("fig2");
}
