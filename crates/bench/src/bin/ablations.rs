//! Ablation studies for the design choices DESIGN.md calls out: turn
//! each mechanism off and show which paper observation disappears.
//! Thin wrapper over the `ablations` campaign — equivalent to `azlab
//! run ablations`.

fn main() {
    bench::campaigns::standalone_main("ablations");
}
