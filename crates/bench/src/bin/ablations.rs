//! Ablation studies for the design choices DESIGN.md calls out: turn
//! each mechanism off and show which paper observation disappears.
//!
//! | Mechanism | Paper artifact it generates |
//! |---|---|
//! | per-flow front-end ceiling | Fig 1's per-client decline (halving at 32) |
//! | latch contention inflation | Fig 3's Add/Receive decline past 64 clients |
//! | background tenant traffic  | Fig 5's ≤30 MB/s contended tail |
//! | host performance variation | Fig 7's VM-timeout spikes |
//! | the 4× watchdog            | bounded retries instead of a slow tail |
//!
//! Run with: `cargo run -p bench --release --bin ablations [--quick]`

use azstore::{StampConfig, StorageStamp};
use bench::save;
use cloudbench::experiments::tcp::{self, TcpBandwidthConfig};
use modis::{run_campaign, ModisConfig, Outcome};
use simcore::prelude::*;
use simcore::report::AsciiTable;

/// Per-client download bandwidth at `clients` with/without the front-end
/// ceiling.
fn blob_per_client(clients: usize, ablate: bool) -> f64 {
    let sim = Sim::new(31);
    let stamp = StorageStamp::standalone(
        &sim,
        StampConfig {
            ablate_no_frontend_ceiling: ablate,
            ..StampConfig::default()
        },
    );
    stamp.blob_service().seed("b", "x", 200.0e6);
    let rates = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    for _ in 0..clients {
        let c = stamp.attach_small_client();
        let r = rates.clone();
        sim.spawn(async move {
            let dl = c.blob.get("b", "x").await.unwrap();
            r.borrow_mut().push(dl.rate_bps() / 1.0e6);
        });
    }
    sim.run();
    let v = rates.borrow();
    v.iter().sum::<f64>() / v.len() as f64
}

/// Queue Add aggregate at `clients` with/without latch inflation.
fn queue_add_aggregate(clients: usize, ablate: bool) -> f64 {
    let sim = Sim::new(32);
    let stamp = StorageStamp::standalone(
        &sim,
        StampConfig {
            ablate_no_latch_inflation: ablate,
            ..StampConfig::default()
        },
    );
    let ops = 40usize;
    let t0 = sim.now();
    for _ in 0..clients {
        let c = stamp.attach_small_client();
        sim.spawn(async move {
            for i in 0..ops {
                c.queue.add("q", format!("m{i}"), 512.0).await.unwrap();
            }
        });
    }
    sim.run();
    (clients * ops) as f64 / (sim.now() - t0).as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut out = String::new();

    // --- 1. Front-end ceiling vs Fig 1 ---
    let mut t = AsciiTable::new(vec!["clients", "with ceiling MB/s", "without MB/s"])
        .with_title("Ablation 1 — per-flow front-end ceiling (Fig 1's per-client decline)");
    for clients in [1usize, 32] {
        t.row(vec![
            clients.to_string(),
            format!("{:.2}", blob_per_client(clients, false)),
            format!("{:.2}", blob_per_client(clients, true)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("paper: 32 clients get HALF a lone client's bandwidth; without the\nceiling they would keep nearly all of it until the 400 MB/s pipe binds.\n\n");

    // --- 2. Latch inflation vs Fig 3 ---
    let mut t = AsciiTable::new(vec!["clients", "with inflation ops/s", "without ops/s"])
        .with_title("Ablation 2 — latch contention inflation (Fig 3's decline past 64)");
    for clients in [64usize, 192] {
        t.row(vec![
            clients.to_string(),
            format!("{:.0}", queue_add_aggregate(clients, false)),
            format!("{:.0}", queue_add_aggregate(clients, true)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("paper: Add peaks at 64 clients (569 ops/s) and DECLINES at 192;\nwithout hold inflation throughput plateaus instead of declining.\n\n");

    // --- 3. Background traffic vs Fig 5 ---
    let mut cfg = TcpBandwidthConfig::quick();
    if !quick {
        cfg.rounds = 16;
    }
    let with_bg = tcp::run_bandwidth(&cfg);
    cfg.background = false;
    let without_bg = tcp::run_bandwidth(&cfg);
    let mut t = AsciiTable::new(vec!["metric", "with background", "without"])
        .with_title("Ablation 3 — background tenant traffic (Fig 5's contended tail)");
    t.row(vec![
        "P(<= 30 MB/s)".to_string(),
        format!("{:.1}%", with_bg.fraction_at_most(30.0) * 100.0),
        format!("{:.1}%", without_bg.fraction_at_most(30.0) * 100.0),
    ]);
    t.row(vec![
        "P(>= 90 MB/s)".to_string(),
        format!("{:.1}%", with_bg.fraction_at_least(90.0) * 100.0),
        format!("{:.1}%", without_bg.fraction_at_least(90.0) * 100.0),
    ]);
    out.push_str(&t.render());
    out.push_str("paper: ~15% of transfers fall to <=30 MB/s; the tail is entirely\nco-tenant traffic — removing it leaves nearly all transfers >=90 MB/s.\n\n");

    // --- 4 & 5. Host variation and the watchdog vs Fig 7 ---
    let base = ModisConfig::quick();
    let with_all = run_campaign(base.clone());
    let mut no_var = base.clone();
    no_var.variation = false;
    let without_variation = run_campaign(no_var);
    let mut no_dog = base.clone();
    no_dog.watchdog = false;
    let without_watchdog = run_campaign(no_dog);

    let mut t = AsciiTable::new(vec![
        "configuration",
        "vm timeouts",
        "max daily %",
        "campaign length",
    ])
    .with_title("Ablations 4 & 5 — host variation and the 4x watchdog (Fig 7)");
    for (name, r) in [
        ("full system", &with_all),
        ("no host variation", &without_variation),
        ("no watchdog", &without_watchdog),
    ] {
        t.row(vec![
            name.to_string(),
            r.telemetry.count(Outcome::VmExecutionTimeout).to_string(),
            format!("{:.2}", r.telemetry.max_daily_timeout_fraction() * 100.0),
            r.elapsed.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "paper: sporadic >4x slowdowns hit up to 16% of a day's tasks; without\nhost variation no timeouts exist, and without the watchdog the same\nslowdowns surface as a silent long tail instead of bounded retries.\n",
    );

    print!("{out}");
    save("ablations.txt", &out);
}
