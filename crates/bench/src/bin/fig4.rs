//! Regenerate Fig 4: cumulative TCP latency between two small VMs
//! communicating through TCP internal endpoints (paper §4.2).

use bench::{print_anchors, quick_mode, run_traced, save, trace_path};
use cloudbench::anchors;
use cloudbench::experiments::tcp::{self, TcpLatencyConfig};
use dcnet::{LinkModel, Network};
use simcore::report::Csv;

fn main() {
    let cfg = if quick_mode() {
        TcpLatencyConfig {
            pairs: 10,
            samples_per_pair: 200,
            ..TcpLatencyConfig::default()
        }
    } else {
        TcpLatencyConfig::default()
    };
    eprintln!(
        "fig4: {} pairs x {} RTT samples ...",
        cfg.pairs, cfg.samples_per_pair
    );
    let result = tcp::run_latency(&cfg);
    println!("{}", result.render());

    let mut csv = Csv::new();
    csv.row(&["latency_ms", "cumulative_fraction"]);
    for (v, f) in result.samples_ms.cdf().into_iter().step_by(25) {
        csv.row(&[format!("{v:.4}"), format!("{f:.4}")]);
    }
    save("fig4.csv", csv.as_str());

    let block = print_anchors(
        "Paper anchors (Fig 4):",
        &[
            (anchors::FIG4_LE_1MS, result.fraction_at_most(1.0)),
            (anchors::FIG4_LE_2MS, result.fraction_at_most(2.0)),
        ],
    );
    save("fig4.anchors.txt", &block);

    // Traced single-point run: a few 1-byte-scale ping flows across a VM
    // pair's NIC links (net.flow spans + bandwidth-share counters).
    if let Some(path) = trace_path() {
        eprintln!("fig4: traced VM-pair ping scenario ...");
        run_traced(&path, 0xF164, |sim| {
            let net = Network::new(sim);
            let tx = net.add_link("vm_a.tx", LinkModel::Shared { capacity: 125.0e6 });
            let rx = net.add_link("vm_b.rx", LinkModel::Shared { capacity: 125.0e6 });
            for _ in 0..5 {
                let net = net.clone();
                sim.spawn(async move {
                    for _ in 0..4 {
                        net.transfer(&[tx, rx], 1.0e3, f64::INFINITY).await;
                    }
                });
            }
        });
    }
}
