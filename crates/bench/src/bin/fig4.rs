//! Regenerate Fig 4: cumulative TCP latency between two small VMs
//! communicating through TCP internal endpoints (paper §4.2).

use bench::{print_anchors, quick_mode, save};
use cloudbench::anchors;
use cloudbench::experiments::tcp::{self, TcpLatencyConfig};
use simcore::report::Csv;

fn main() {
    let cfg = if quick_mode() {
        TcpLatencyConfig {
            pairs: 10,
            samples_per_pair: 200,
            ..TcpLatencyConfig::default()
        }
    } else {
        TcpLatencyConfig::default()
    };
    eprintln!(
        "fig4: {} pairs x {} RTT samples ...",
        cfg.pairs, cfg.samples_per_pair
    );
    let result = tcp::run_latency(&cfg);
    println!("{}", result.render());

    let mut csv = Csv::new();
    csv.row(&["latency_ms", "cumulative_fraction"]);
    for (v, f) in result.samples_ms.cdf().into_iter().step_by(25) {
        csv.row(&[format!("{v:.4}"), format!("{f:.4}")]);
    }
    save("fig4.csv", csv.as_str());

    let block = print_anchors(
        "Paper anchors (Fig 4):",
        &[
            (anchors::FIG4_LE_1MS, result.fraction_at_most(1.0)),
            (anchors::FIG4_LE_2MS, result.fraction_at_most(2.0)),
        ],
    );
    save("fig4.anchors.txt", &block);
}
