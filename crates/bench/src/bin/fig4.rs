//! Regenerate Fig 4: cumulative TCP latency between two small VMs
//! (paper §4.2). Thin wrapper over the `fig4` campaign — equivalent to
//! `azlab run fig4`.

fn main() {
    bench::campaigns::standalone_main("fig4");
}
