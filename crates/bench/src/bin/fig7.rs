//! Regenerate Fig 7: percent of daily task executions killed by the VM
//! execution timeout over the campaign (paper §5.2).

use bench::{print_anchors, quick_mode, save};
use cloudbench::anchors;
use modis::{run_campaign, ModisConfig};
use simcore::report::Csv;

fn main() {
    let cfg = if quick_mode() {
        ModisConfig::quick()
    } else {
        ModisConfig::default()
    };
    eprintln!(
        "fig7: {}-day campaign, {} workers ...",
        cfg.days, cfg.workers
    );
    let report = run_campaign(cfg);
    println!("{}", report.telemetry.render_fig7());

    let mut csv = Csv::new();
    csv.row(&["day", "executions", "vm_timeouts", "fraction"]);
    for (day, total, hits, frac) in report.telemetry.daily_timeout_rows() {
        csv.row(&[
            day.to_string(),
            total.to_string(),
            hits.to_string(),
            format!("{frac:.5}"),
        ]);
    }
    save("fig7.csv", csv.as_str());

    let block = print_anchors(
        "Paper anchors (Fig 7):",
        &[
            (
                anchors::TAB2_VM_TIMEOUT_RATE,
                report.telemetry.overall_timeout_fraction(),
            ),
            (
                anchors::FIG7_MAX_DAILY,
                report.telemetry.max_daily_timeout_fraction(),
            ),
        ],
    );
    save("fig7.anchors.txt", &block);
}
