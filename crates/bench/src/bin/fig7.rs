//! Regenerate Fig 7: percent of daily task executions killed by the VM
//! execution timeout over the campaign (paper §5.2). Thin wrapper over
//! the combined `modis` campaign (equivalent to `azlab run fig7`),
//! which also emits the Table 2 artifacts — the two figures come from
//! the same simulated run.

fn main() {
    bench::campaigns::standalone_main("fig7");
}
