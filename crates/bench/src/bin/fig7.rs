//! Regenerate Fig 7: percent of daily task executions killed by the VM
//! execution timeout over the campaign (paper §5.2).

use bench::{fault_plan, print_anchors, quick_mode, run_traced, save, trace_path};
use cloudbench::anchors;
use modis::campaign::run_campaign_on;
use modis::{run_campaign, ModisConfig};
use simcore::report::Csv;

fn main() {
    let mut cfg = if quick_mode() {
        ModisConfig::quick()
    } else {
        ModisConfig::default()
    };
    if let Some(plan) = fault_plan() {
        eprintln!("fig7: fault plan \"{}\"", plan.name);
        cfg.faults = plan;
    }
    eprintln!(
        "fig7: {}-day campaign, {} workers ...",
        cfg.days, cfg.workers
    );
    let report = run_campaign(cfg);
    println!("{}", report.telemetry.render_fig7());

    let mut csv = Csv::new();
    csv.row(&["day", "executions", "vm_timeouts", "fraction"]);
    for (day, total, hits, frac) in report.telemetry.daily_timeout_rows() {
        csv.row(&[
            day.to_string(),
            total.to_string(),
            hits.to_string(),
            format!("{frac:.5}"),
        ]);
    }
    save("fig7.csv", csv.as_str());

    let block = print_anchors(
        "Paper anchors (Fig 7):",
        &[
            (
                anchors::TAB2_VM_TIMEOUT_RATE,
                report.telemetry.overall_timeout_fraction(),
            ),
            (
                anchors::FIG7_MAX_DAILY,
                report.telemetry.max_daily_timeout_fraction(),
            ),
        ],
    );
    save("fig7.anchors.txt", &block);

    // Traced single-point run: a miniature campaign (task.execute spans
    // tagged with failure class, over the real storage/network spans).
    if let Some(path) = trace_path() {
        eprintln!("fig7: traced mini-campaign ...");
        run_traced(&path, 0x0D15, |sim| {
            let mut cfg = ModisConfig {
                workers: 8,
                days: 2,
                arrival_scale: 4.0,
                request_tiles: (2, 4),
                request_days: (4, 10),
                ..ModisConfig::quick()
            };
            if let Some(plan) = fault_plan() {
                cfg.faults = plan;
            }
            let report = run_campaign_on(sim, cfg);
            eprintln!("fig7: traced {} executions", report.executions);
        });
    }
}
