//! Regenerate Fig 3: average per-client queue performance vs
//! concurrency (paper §3.3), plus the queue-length invariance check.
//! Thin wrapper over the `fig3` campaign — equivalent to `azlab run
//! fig3`.

fn main() {
    bench::campaigns::standalone_main("fig3");
}
