//! Regenerate Fig 3: average per-client queue performance vs concurrency
//! (paper §3.3), plus the queue-length invariance check.

use azstore::{StampConfig, StorageStamp};
use bench::{print_anchors, quick_mode, run_traced, save, trace_path};
use cloudbench::anchors;
use cloudbench::experiments::queue::{self, QueueOp, QueueScalingConfig};
use simcore::report::Csv;

fn main() {
    let cfg = if quick_mode() {
        QueueScalingConfig::quick()
    } else {
        QueueScalingConfig::default()
    };
    eprintln!(
        "fig3: sweeping {:?} clients, {} ops each, {} B messages ...",
        cfg.client_counts, cfg.ops_per_client, cfg.message_bytes
    );
    let result = queue::run(&cfg);
    println!("{}", result.render());

    let mut csv = Csv::new();
    csv.row(&[
        "op",
        "clients",
        "per_client_ops_s",
        "aggregate_ops_s",
        "ok",
        "failed",
    ]);
    for r in &result.rows {
        csv.row(&[
            r.op.to_string(),
            r.clients.to_string(),
            format!("{:.3}", r.per_client_ops_s),
            format!("{:.2}", r.aggregate_ops_s),
            r.ok.to_string(),
            r.failed.to_string(),
        ]);
    }
    save("fig3.csv", csv.as_str());

    let mut checks = Vec::new();
    if let Some(r) = result.at(QueueOp::Add, 64) {
        checks.push((anchors::FIG3_ADD_PEAK_OPS, r.aggregate_ops_s));
    }
    if let Some(r) = result.at(QueueOp::Receive, 64) {
        checks.push((anchors::FIG3_RECV_PEAK_OPS, r.aggregate_ops_s));
    }
    if let Some(r) = result.at(QueueOp::Peek, 128) {
        checks.push((anchors::FIG3_PEEK_128_OPS, r.aggregate_ops_s));
    }
    if let Some(r) = result.at(QueueOp::Peek, 192) {
        checks.push((anchors::FIG3_PEEK_192_OPS, r.aggregate_ops_s));
    }
    let mut block = print_anchors("Paper anchors (Fig 3):", &checks);

    // Queue-length invariance (200 k vs 2 M messages; scaled when quick).
    let scale = if quick_mode() { 0.05 } else { 1.0 };
    let (small, large) = queue::length_invariance(77, scale);
    let extra = format!(
        "  queue length invariance: {:.1} ops/s at {}k msgs vs {:.1} ops/s at {}k msgs (paper: no variation)\n",
        small,
        (200.0 * scale) as u64,
        large,
        (2000.0 * scale) as u64
    );
    print!("{extra}");
    block.push_str(&extra);
    save("fig3.anchors.txt", &block);

    // Traced single-point run: 4 clients producing then draining one
    // queue (Add/Peek/Receive/Delete spans with their replica-sync
    // commit children).
    if let Some(path) = trace_path() {
        eprintln!("fig3: traced 4-client queue scenario ...");
        run_traced(&path, 0xF163, |sim| {
            let stamp = StorageStamp::standalone(sim, StampConfig::default());
            for i in 0..4 {
                let c = stamp.attach_small_client();
                sim.spawn(async move {
                    for k in 0..8 {
                        let _ = c.queue.add("q", format!("m{i}-{k}"), 512.0).await;
                    }
                    let _ = c.queue.peek("q").await;
                    while let Ok(Some(m)) = c.queue.receive_default("q").await {
                        let _ = c.queue.delete_message("q", m.receipt).await;
                    }
                });
            }
        });
    }
}
