//! Regenerate Fig 1: average per-client blob download/upload bandwidth
//! as a function of the number of concurrent clients (paper §3.1).

use azstore::{StampConfig, StorageStamp};
use bench::{print_anchors, quick_mode, run_traced, save, trace_path};
use cloudbench::anchors;
use cloudbench::experiments::blob::{self, BlobScalingConfig};
use simcore::report::Csv;

fn main() {
    let cfg = if quick_mode() {
        BlobScalingConfig::quick()
    } else {
        BlobScalingConfig::default()
    };
    eprintln!(
        "fig1: sweeping {:?} clients, {} runs each, {:.0} MB blob ...",
        cfg.client_counts,
        cfg.runs,
        cfg.blob_bytes / 1.0e6
    );
    let result = blob::run(&cfg);
    println!("{}", result.render());

    let mut csv = Csv::new();
    csv.row(&[
        "clients",
        "download_per_client_mbps",
        "download_aggregate_mbps",
        "upload_per_client_mbps",
        "upload_aggregate_mbps",
    ]);
    for r in &result.rows {
        csv.row(&[
            r.clients.to_string(),
            format!("{:.3}", r.download_per_client_mbps),
            format!("{:.2}", r.download_aggregate_mbps),
            format!("{:.3}", r.upload_per_client_mbps),
            format!("{:.2}", r.upload_aggregate_mbps),
        ]);
    }
    save("fig1.csv", csv.as_str());

    let mut checks = Vec::new();
    if let Some(r1) = result.at(1) {
        checks.push((anchors::FIG1_DL_1CLIENT_MBPS, r1.download_per_client_mbps));
        if let Some(r32) = result.at(32) {
            checks.push((
                anchors::FIG1_DL_32CLIENT_RATIO,
                r32.download_per_client_mbps / r1.download_per_client_mbps,
            ));
        }
    }
    if let Some(r128) = result.at(128) {
        checks.push((anchors::FIG1_DL_PEAK_MBPS, r128.download_aggregate_mbps));
    }
    if let Some(r64) = result.at(64) {
        checks.push((anchors::FIG1_UL_64CLIENT_MBPS, r64.upload_per_client_mbps));
    }
    if let Some(r192) = result.at(192) {
        checks.push((anchors::FIG1_UL_192CLIENT_MBPS, r192.upload_per_client_mbps));
        checks.push((anchors::FIG1_UL_PEAK_MBPS, r192.upload_aggregate_mbps));
    }
    let block = print_anchors("Paper anchors (Fig 1):", &checks);
    save("fig1.anchors.txt", &block);

    // Traced single-point run: 8 concurrent downloaders + uploaders
    // against one stamp (the Fig 1 protocol in miniature).
    if let Some(path) = trace_path() {
        eprintln!("fig1: traced 8-client blob scenario ...");
        run_traced(&path, 0xF161, |sim| {
            let stamp = StorageStamp::standalone(sim, StampConfig::default());
            stamp.blob_service().seed("bench", "blob", 50.0e6);
            for i in 0..8 {
                let c = stamp.attach_small_client();
                sim.spawn(async move {
                    let _ = c.blob.get("bench", "blob").await;
                    let _ = c.blob.put("bench", &format!("up{i}"), 8.0e6).await;
                });
            }
        });
    }
}
