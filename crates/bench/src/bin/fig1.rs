//! Regenerate Fig 1: average per-client blob download/upload bandwidth
//! vs concurrency (paper §3.1). Thin wrapper over the `fig1` campaign —
//! equivalent to `azlab run fig1`.

fn main() {
    bench::campaigns::standalone_main("fig1");
}
