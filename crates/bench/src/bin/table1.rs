//! Regenerate Table 1: worker/web role VM request times across the five
//! lifecycle phases (paper §4.1; 431 successful runs). Thin wrapper
//! over the `table1` campaign — equivalent to `azlab run table1`.

fn main() {
    bench::campaigns::standalone_main("table1");
}
