//! Regenerate Table 1: worker/web role VM request times across the five
//! lifecycle phases (paper §4.1; 431 successful runs).

use bench::{print_anchors, quick_mode, run_traced, save, trace_path};
use cloudbench::anchors;
use cloudbench::experiments::vm::{self, VmLifecycleConfig};
use fabric::{DeploymentSpec, FabricConfig, FabricController, Phase, RoleType, VmSize};
use simcore::report::Csv;

fn main() {
    let cfg = if quick_mode() {
        VmLifecycleConfig::quick()
    } else {
        VmLifecycleConfig::default()
    };
    eprintln!(
        "table1: collecting {} successful runs ...",
        cfg.successful_runs
    );
    let result = vm::run(&cfg);
    println!("{}", result.render());
    println!(
        "startup failures: {} of {} start requests ({:.2}%)  [paper: 2.6%]",
        result.failures,
        result.start_requests,
        result.failure_rate() * 100.0
    );

    let mut csv = Csv::new();
    csv.row(&["role", "size", "phase", "avg_s", "std_s", "n"]);
    for role in RoleType::ALL {
        for size in VmSize::ALL {
            for phase in Phase::ALL {
                if let Some(stats) = result.cells.get(&(role, size, phase)) {
                    csv.row(&[
                        role.to_string(),
                        size.to_string(),
                        phase.to_string(),
                        format!("{:.1}", stats.mean()),
                        format!("{:.1}", stats.std()),
                        stats.count().to_string(),
                    ]);
                }
            }
        }
    }
    save("table1.csv", csv.as_str());

    let small_worker_startup = result
        .mean(RoleType::Worker, VmSize::Small, Phase::Create)
        .unwrap_or(0.0)
        + result
            .mean(RoleType::Worker, VmSize::Small, Phase::Run)
            .unwrap_or(0.0);
    let block = print_anchors(
        "Paper anchors (Table 1):",
        &[
            (anchors::TAB1_SMALL_WORKER_STARTUP_S, small_worker_startup),
            (anchors::TAB1_STARTUP_FAILURE_RATE, result.failure_rate()),
        ],
    );
    save("table1.anchors.txt", &block);

    // Traced single-point run: one small-worker deployment through all
    // five Table 1 phases, with per-instance boot spans.
    if let Some(path) = trace_path() {
        eprintln!("table1: traced lifecycle scenario ...");
        run_traced(&path, 0x7AB1, |sim| {
            let fc = FabricController::new(sim, FabricConfig::default());
            sim.spawn(async move {
                let spec = DeploymentSpec::paper_test(RoleType::Worker, VmSize::Small);
                if let Ok(dep) = fc.create_deployment(spec).await {
                    let _ = dep.run().await;
                    let _ = dep.add_instances().await;
                    let _ = dep.suspend().await;
                    let _ = dep.delete().await;
                }
            });
        });
    }
}
