//! Criterion benches for the DES kernel: raw event throughput, process
//! spawning, channels and semaphores. These quantify the cost basis of
//! every experiment (a full ModisAzure campaign is ~10⁸ events).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcore::prelude::*;

fn bench_timer_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/timers");
    for n in [1_000u64, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let sim = Sim::new(1);
                for i in 0..n {
                    sim.schedule_at(
                        SimTime::from_nanos(i * 7 % 1_000_000),
                        |_| {},
                    );
                }
                sim.run();
                assert_eq!(sim.events_fired(), n);
            });
        });
    }
    g.finish();
}

fn bench_process_ping_pong(c: &mut Criterion) {
    c.bench_function("kernel/process_ping_pong_1k", |b| {
        b.iter(|| {
            let sim = Sim::new(2);
            let (tx_a, rx_a) = channel::<u32>();
            let (tx_b, rx_b) = channel::<u32>();
            sim.spawn(async move {
                for i in 0..1_000 {
                    tx_a.send(i);
                    rx_b.recv().await;
                }
            });
            sim.spawn(async move {
                while let Some(v) = rx_a.recv().await {
                    tx_b.send(v);
                }
            });
            sim.run();
        });
    });
}

fn bench_semaphore_contention(c: &mut Criterion) {
    c.bench_function("kernel/semaphore_100x100", |b| {
        b.iter(|| {
            let sim = Sim::new(3);
            let sem = Semaphore::new(4);
            for _ in 0..100 {
                let (s, sm) = (sim.clone(), sem.clone());
                sim.spawn(async move {
                    for _ in 0..100 {
                        let _p = sm.acquire().await;
                        s.delay(SimDuration::from_nanos(10)).await;
                    }
                });
            }
            sim.run();
            assert_eq!(sem.acquired_total(), 10_000);
        });
    });
}

fn bench_spawn_throughput(c: &mut Criterion) {
    c.bench_function("kernel/spawn_10k_tasks", |b| {
        b.iter(|| {
            let sim = Sim::new(4);
            for _ in 0..10_000 {
                let s = sim.clone();
                sim.spawn(async move {
                    s.delay(SimDuration::from_nanos(1)).await;
                });
            }
            sim.run();
            assert_eq!(sim.tasks_spawned(), 10_000);
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_timer_events,
        bench_process_ping_pong,
        bench_semaphore_contention,
        bench_spawn_throughput
);
criterion_main!(benches);
