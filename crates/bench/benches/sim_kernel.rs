//! Criterion benches for the DES kernel: raw event throughput, process
//! spawning, channels and semaphores. These quantify the cost basis of
//! every experiment (a full ModisAzure campaign is ~10⁸ events).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcore::prelude::*;

fn bench_timer_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/timers");
    for n in [1_000u64, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let sim = Sim::new(1);
                for i in 0..n {
                    sim.schedule_at(SimTime::from_nanos(i * 7 % 1_000_000), |_| {});
                }
                sim.run();
                assert_eq!(sim.events_fired(), n);
            });
        });
    }
    g.finish();
}

fn bench_process_ping_pong(c: &mut Criterion) {
    c.bench_function("kernel/process_ping_pong_1k", |b| {
        b.iter(|| {
            let sim = Sim::new(2);
            let (tx_a, rx_a) = channel::<u32>();
            let (tx_b, rx_b) = channel::<u32>();
            sim.spawn(async move {
                for i in 0..1_000 {
                    tx_a.send(i);
                    rx_b.recv().await;
                }
            });
            sim.spawn(async move {
                while let Some(v) = rx_a.recv().await {
                    tx_b.send(v);
                }
            });
            sim.run();
        });
    });
}

fn bench_semaphore_contention(c: &mut Criterion) {
    c.bench_function("kernel/semaphore_100x100", |b| {
        b.iter(|| {
            let sim = Sim::new(3);
            let sem = Semaphore::new(4);
            for _ in 0..100 {
                let (s, sm) = (sim.clone(), sem.clone());
                sim.spawn(async move {
                    for _ in 0..100 {
                        let _p = sm.acquire().await;
                        s.delay(SimDuration::from_nanos(10)).await;
                    }
                });
            }
            sim.run();
            assert_eq!(sem.acquired_total(), 10_000);
        });
    });
}

fn bench_spawn_throughput(c: &mut Criterion) {
    c.bench_function("kernel/spawn_10k_tasks", |b| {
        b.iter(|| {
            let sim = Sim::new(4);
            for _ in 0..10_000 {
                let s = sim.clone();
                sim.spawn(async move {
                    s.delay(SimDuration::from_nanos(1)).await;
                });
            }
            sim.run();
            assert_eq!(sim.tasks_spawned(), 10_000);
        });
    });
}

/// Span-heavy workload: 100 tasks x 50 ops, each op wrapped in a span
/// when `spans` is set. With no tracer installed the span call must be a
/// near-free thread-local check (the perf guard below holds it to <2%).
fn tracing_workload(sim_seed: u64, spans: bool, install: bool) {
    let sim = Sim::new(sim_seed);
    let tracer = simtrace::Tracer::new(&sim);
    let guard = if install {
        Some(tracer.install())
    } else {
        None
    };
    for i in 0..100 {
        let s = sim.clone();
        sim.spawn(async move {
            for _ in 0..50 {
                if spans {
                    let sp =
                        simtrace::span(simtrace::Layer::App, "bench.op", || format!("task{i}"));
                    s.delay(SimDuration::from_nanos(10)).await;
                    drop(sp);
                } else {
                    s.delay(SimDuration::from_nanos(10)).await;
                }
            }
        });
    }
    sim.run();
    drop(guard);
}

fn bench_tracing_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/tracing");
    let mut baseline = std::time::Duration::ZERO;
    let mut disabled = std::time::Duration::ZERO;
    let mut enabled = std::time::Duration::ZERO;
    g.bench_function("baseline_no_spans", |b| {
        b.iter(|| tracing_workload(5, false, false));
        baseline = b.min();
    });
    g.bench_function("spans_disabled", |b| {
        b.iter(|| tracing_workload(5, true, false));
        disabled = b.min();
    });
    g.bench_function("spans_enabled", |b| {
        b.iter(|| tracing_workload(5, true, true));
        enabled = b.min();
    });
    g.finish();

    // Perf guard: uninstrumented-cost of the tracing hooks. Spans compiled
    // in but no tracer installed must stay within 2% of the span-free
    // baseline; the enabled figure is informational (recording is opt-in).
    let overhead = disabled.as_secs_f64() / baseline.as_secs_f64() - 1.0;
    let enabled_x = enabled.as_secs_f64() / baseline.as_secs_f64();
    println!(
        "kernel/tracing: disabled overhead {:+.2}% (guard: <2%), enabled {:.2}x baseline",
        overhead * 100.0,
        enabled_x
    );
    assert!(
        overhead < 0.02,
        "tracing-disabled overhead {:.2}% exceeds the 2% guard",
        overhead * 100.0
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_timer_events,
        bench_process_ping_pong,
        bench_semaphore_contention,
        bench_spawn_throughput,
        bench_tracing_overhead
);
criterion_main!(benches);
