//! Criterion benches for the storage stamp's operation fast paths:
//! how many *simulated* storage operations per wall-clock second the
//! reproduction sustains. The table experiment pushes ~10⁵ and the
//! ModisAzure campaign ~10⁷ of these.

use criterion::{criterion_group, criterion_main, Criterion};

use azstore::{Entity, StampConfig, StorageStamp};
use simcore::prelude::*;

fn bench_blob_roundtrip(c: &mut Criterion) {
    c.bench_function("storage/blob_put_get_x100", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let stamp = StorageStamp::standalone(&sim, StampConfig::default());
            let client = stamp.attach_small_client();
            let h = sim.spawn(async move {
                for i in 0..100 {
                    let name = format!("b{i}");
                    client.blob.put("bench", &name, 1.0e5).await.unwrap();
                    client.blob.get("bench", &name).await.unwrap();
                }
            });
            sim.run();
            h.try_take().unwrap();
        });
    });
}

fn bench_table_insert_query(c: &mut Criterion) {
    c.bench_function("storage/table_insert_query_x200", |b| {
        b.iter(|| {
            let sim = Sim::new(2);
            let stamp = StorageStamp::standalone(&sim, StampConfig::default());
            let client = stamp.attach_small_client();
            let h = sim.spawn(async move {
                for i in 0..200 {
                    let e = Entity::benchmark("p", &format!("r{i}"), 4);
                    client.table.insert("t", e).await.unwrap();
                }
                for i in 0..200 {
                    client
                        .table
                        .query_point("t", "p", &format!("r{i}"))
                        .await
                        .unwrap();
                }
            });
            sim.run();
            h.try_take().unwrap();
        });
    });
}

fn bench_queue_cycle(c: &mut Criterion) {
    c.bench_function("storage/queue_add_recv_delete_x200", |b| {
        b.iter(|| {
            let sim = Sim::new(3);
            let stamp = StorageStamp::standalone(&sim, StampConfig::default());
            let client = stamp.attach_small_client();
            let h = sim.spawn(async move {
                for i in 0..200 {
                    client.queue.add("q", format!("m{i}"), 512.0).await.unwrap();
                }
                for _ in 0..200 {
                    let m = client.queue.receive_default("q").await.unwrap().unwrap();
                    client.queue.delete_message("q", m.receipt).await.unwrap();
                }
            });
            sim.run();
            h.try_take().unwrap();
        });
    });
}

fn bench_concurrent_table_clients(c: &mut Criterion) {
    // The expensive shape: many concurrent clients through the latches.
    c.bench_function("storage/table_64clients_x20ops", |b| {
        b.iter(|| {
            let sim = Sim::new(4);
            let stamp = StorageStamp::standalone(&sim, StampConfig::default());
            for ci in 0..64 {
                let client = stamp.attach_small_client();
                sim.spawn(async move {
                    for i in 0..20 {
                        let e = Entity::benchmark("p", &format!("c{ci}-r{i}"), 4);
                        client.table.insert("t", e).await.unwrap();
                    }
                });
            }
            sim.run();
            assert_eq!(stamp.table_service().ops(), 64 * 20);
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_blob_roundtrip,
        bench_table_insert_query,
        bench_queue_cycle,
        bench_concurrent_table_clients
);
criterion_main!(benches);
