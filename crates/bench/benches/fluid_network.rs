//! Criterion benches for the fluid-flow network — including the
//! DESIGN.md ablation: cost of a max-min rate recomputation as a
//! function of the number of active flows. This is the price paid for
//! choosing fluid flows over packet simulation, and it must stay
//! sub-millisecond at the paper's 192-client scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcnet::fluid::{max_min_rates, FlowSpec};
use dcnet::{LinkModel, Network};
use simcore::prelude::*;

fn bench_max_min_allocation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid/max_min_rates");
    for flows in [16usize, 64, 192, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &flows| {
            // A storage-like scenario: shared egress + per-flow frontend
            // + one throttle link per client.
            let mut models = vec![
                LinkModel::SharedDegrading {
                    capacity: 400.0e6,
                    knee: 128,
                    gamma: 0.002,
                },
                LinkModel::PerFlow {
                    base: 13.0e6,
                    beta: 34.0,
                    exponent: 0.8,
                },
            ];
            let mut specs = Vec::new();
            for i in 0..flows {
                models.push(LinkModel::Shared { capacity: 13.0e6 });
                specs.push(FlowSpec {
                    cap: f64::INFINITY,
                    links: vec![0usize, 1, 2 + i],
                });
            }
            b.iter(|| {
                let rates = max_min_rates(&models, &specs);
                assert_eq!(rates.len(), flows);
                std::hint::black_box(rates);
            });
        });
    }
    g.finish();
}

fn bench_transfer_churn(c: &mut Criterion) {
    // End-to-end: many flows joining/leaving a shared pipe, which is the
    // recompute-heavy pattern of the Fig 1 sweep.
    let mut g = c.benchmark_group("fluid/transfer_churn");
    for flows in [32usize, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &flows| {
            b.iter(|| {
                let sim = Sim::new(9);
                let net = Network::new(&sim);
                let pipe = net.add_link("pipe", LinkModel::Shared { capacity: 1.0e8 });
                for i in 0..flows {
                    let n = net.clone();
                    let s = sim.clone();
                    sim.spawn(async move {
                        s.delay(SimDuration::from_millis(i as u64)).await;
                        n.transfer(&[pipe], 1.0e6, f64::INFINITY).await;
                    });
                }
                sim.run();
                assert_eq!(net.flows_completed() as usize, flows);
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_max_min_allocation, bench_transfer_churn
);
criterion_main!(benches);
