//! Criterion benches over whole (scaled-down) paper experiments — the
//! end-to-end cost of regenerating each artifact, per sweep point.
//! Full-scale regeneration is the job of the `fig*`/`table*` binaries;
//! these track the harness's own efficiency.

use criterion::{criterion_group, criterion_main, Criterion};

use cloudbench::experiments::{blob, queue, table, tcp, vm};

fn bench_fig1_point(c: &mut Criterion) {
    c.bench_function("experiments/fig1_point_32clients", |b| {
        b.iter(|| {
            let r = blob::run(&blob::BlobScalingConfig {
                blob_bytes: 100.0e6,
                client_counts: vec![32],
                runs: 1,
                seed: 1,
            });
            assert_eq!(r.rows.len(), 1);
        });
    });
}

fn bench_fig2_point(c: &mut Criterion) {
    c.bench_function("experiments/fig2_point_32clients", |b| {
        b.iter(|| {
            let r = table::run(&table::TableScalingConfig {
                entity_kb: 4,
                client_counts: vec![32],
                inserts_per_client: 20,
                queries_per_client: 20,
                updates_per_client: 10,
                seed: 1,
            });
            assert_eq!(r.rows.len(), 4);
        });
    });
}

fn bench_fig3_point(c: &mut Criterion) {
    c.bench_function("experiments/fig3_point_32clients", |b| {
        b.iter(|| {
            let r = queue::run(&queue::QueueScalingConfig {
                message_bytes: 512.0,
                client_counts: vec![32],
                ops_per_client: 20,
                seed: 1,
            });
            assert_eq!(r.rows.len(), 3);
        });
    });
}

fn bench_table1_runs(c: &mut Criterion) {
    c.bench_function("experiments/table1_10runs", |b| {
        b.iter(|| {
            let r = vm::run(&vm::VmLifecycleConfig {
                successful_runs: 10,
                seed: 1,
            });
            assert_eq!(r.successes, 10);
        });
    });
}

fn bench_fig4_sampling(c: &mut Criterion) {
    c.bench_function("experiments/fig4_10k_samples", |b| {
        b.iter(|| {
            let r = tcp::run_latency(&tcp::TcpLatencyConfig {
                pairs: 10,
                samples_per_pair: 1000,
                seed: 1,
            });
            assert_eq!(r.samples_ms.len(), 10_000);
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1_point,
        bench_fig2_point,
        bench_fig3_point,
        bench_table1_runs,
        bench_fig4_sampling
);
criterion_main!(benches);
