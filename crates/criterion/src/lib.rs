//! Vendored minimal benchmarking fallback.
//!
//! Implements the subset of the `criterion` API used by this workspace's
//! benches (`Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group` + `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) with no external dependencies.
//! Each benchmark runs a short warm-up, then `sample_size` timed samples,
//! and prints the mean / min / max wall-clock time per iteration. It is a
//! measurement tool, not a statistics suite — good enough for the relative
//! comparisons the repo's perf guards make (e.g. tracing on vs off), and
//! it keeps `cargo bench` working offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id from a function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly: warm-up plus `sample_size` timed samples, each
    /// sample sized so it lasts long enough for the clock to resolve it.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that takes
        // at least ~1 ms so short closures are resolvable.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "{name:<50} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            mean,
            min,
            max,
            self.samples.len()
        );
    }

    /// Mean time per iteration over the collected samples.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }

    /// Fastest sample (robust to scheduler noise; what perf guards
    /// should compare).
    pub fn min(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or(Duration::ZERO)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark of the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run one named benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finish the group (reporting happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Re-exported for closures that want to defeat the optimizer.
pub use std::hint::black_box;

/// Declare a group of benchmark functions. Both the simple
/// `criterion_group!(benches, f, g)` and the
/// `name = …; config = …; targets = …` forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_mean() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
        });
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
    }
}
