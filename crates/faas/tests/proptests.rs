//! Property-based tests for the serverless layer: byte-identical
//! trace generation, three-way keepalive divergence on a fixed trace,
//! and hybrid-histogram window bounds over arbitrary gap patterns.

use faas::policy::{
    KeepalivePolicy, PolicyKind, FIXED_WINDOW_S, MAX_KEEPALIVE_S, MIN_PREWARM_S, MIN_SAMPLES,
};
use faas::{run_faas, FaasConfig, FaasResult, FaasTrace, TraceShape};
use proptest::prelude::*;
use simcore::prelude::*;

fn any_shape() -> impl Strategy<Value = TraceShape> {
    prop_oneof![
        Just(TraceShape::wild()),
        Just(TraceShape::diurnal()),
        Just(TraceShape::bursty()),
    ]
}

fn tiny_cell(policy: PolicyKind, seed: u64) -> FaasResult {
    let sim = Sim::new(seed);
    run_faas(
        &sim,
        &FaasConfig {
            apps: 12,
            horizon_s: 1800.0,
            hosts: 8,
            mem_capacity_mb: 3072.0,
            ..FaasConfig::quick(TraceShape::wild(), policy)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same shape: the synthetic trace reproduces byte for
    /// byte (schedule digest over raw f64 bits), independent of how
    /// many times the generator has run in the process.
    #[test]
    fn trace_generation_is_byte_deterministic(
        seed in 0u64..10_000,
        shape in any_shape(),
        napps in 4usize..64,
    ) {
        let gen = |_: ()| {
            let mut rng = SimRng::for_stream(seed, "faas.trace");
            FaasTrace::synth(&mut rng, &shape, napps, 1800.0)
        };
        let a = gen(());
        let b = gen(());
        prop_assert_eq!(a.schedule_digest(), b.schedule_digest());
        prop_assert_eq!(a.apps.len(), b.apps.len());
        for (x, y) in a.apps.iter().zip(b.apps.iter()) {
            prop_assert_eq!(x.rate_ops_s.to_bits(), y.rate_ops_s.to_bits());
            prop_assert_eq!(x.mem_mb.to_bits(), y.mem_mb.to_bits());
        }
    }

    /// On the byte-identical demand (same seed draws the trace before
    /// any fabric randomness), the three keepalive policies must leave
    /// three pairwise-distinct eviction logs — the subsystem's
    /// divergence witness.
    #[test]
    fn keepalive_policies_diverge_three_ways(seed in 0u64..500) {
        let none = tiny_cell(PolicyKind::NoKeepalive, seed);
        let fixed = tiny_cell(PolicyKind::FixedWindow, seed);
        let hybrid = tiny_cell(PolicyKind::Hybrid, seed);
        // Identical demand...
        prop_assert_eq!(none.invocations, fixed.invocations);
        prop_assert_eq!(fixed.invocations, hybrid.invocations);
        // ...three distinct eviction behaviours.
        prop_assert_ne!(&none.eviction_log, &fixed.eviction_log);
        prop_assert_ne!(&fixed.eviction_log, &hybrid.eviction_log);
        prop_assert_ne!(&none.eviction_log, &hybrid.eviction_log);
        // And the frontier endpoints hold: keeping nothing is at least
        // as cold and at most as wasteful as the fixed window.
        prop_assert!(none.cold_fraction() >= fixed.cold_fraction());
        prop_assert!(none.wasted_mb_s <= fixed.wasted_mb_s);
    }

    /// The hybrid histogram's emitted windows stay inside hard bounds
    /// for any gap pattern: keepalive never exceeds the cap, a prewarm
    /// is never scheduled before `MIN_PREWARM_S`, and the window pair
    /// always leaves a nonnegative residency span.
    #[test]
    fn hybrid_windows_respect_bounds(
        gaps in prop::collection::vec(1.0f64..20_000.0, 1..80),
    ) {
        let mut policy = PolicyKind::Hybrid.build(1);
        policy.observe_arrival(0, None);
        let mut seen = 0u64;
        for g in &gaps {
            policy.observe_arrival(0, Some(*g));
            seen += 1;
            let w = policy.windows(0);
            prop_assert!(w.keepalive_s >= 0.0);
            prop_assert!(
                w.keepalive_s <= MAX_KEEPALIVE_S.max(FIXED_WINDOW_S),
                "keepalive {} above cap", w.keepalive_s
            );
            if let Some(p) = w.prewarm_s {
                prop_assert!(p >= MIN_PREWARM_S, "prewarm {p} below floor");
                prop_assert!(p.is_finite() && w.keepalive_s.is_finite());
            }
            if seen < MIN_SAMPLES {
                // Not enough evidence: the fallback fixed window.
                prop_assert_eq!(w.keepalive_s.to_bits(), FIXED_WINDOW_S.to_bits());
                prop_assert!(w.prewarm_s.is_none());
            }
        }
    }
}
