//! Deterministic synthetic invocation traces shaped like the Azure
//! Functions 2019 dataset, plus a replay adapter for the real thing.
//!
//! The generator reproduces the three published shape facts from
//! *Serverless in the Wild* (Shahrad et al., ATC'20) without needing
//! the dataset on disk:
//!
//! * **Pareto-ish popularity** — a handful of apps produce most
//!   invocations while the long tail fires every few minutes or less.
//!   Per-app mean rates follow a jittered log-uniform rank curve from
//!   the cap down to the floor, so the head is busy enough to learn
//!   keepalive windows from while the tail stays cold-start-dominated.
//! * **Heavy-tailed inter-invocation times** — most apps are bursty:
//!   Weibull-renewal gaps with shape < 1 (tight clusters separated by
//!   gaps much longer than the mean), the regime where keepalive
//!   policy choice decides the cold-start bill.
//! * **Diurnal app classes** — a slice of apps follows a daily rate
//!   curve with a per-app phase, so the population's load moves around
//!   the clock instead of breathing in unison. A timer-trigger slice
//!   fires on near-constant periods — the predictable class whose
//!   inter-arrival histogram a prewarm policy can actually exploit.
//!
//! Every draw comes from forks of one dedicated master stream
//! (`sim.rng("faas.trace")` in the cell runner), taken **before** any
//! fabric randomness: the schedule is a pure function of the seed and
//! the shape, byte-identical across shard counts and policies.

use simcore::dist::{Dist, LogNormal, Uniform};
use simcore::rng::SimRng;
use simload::ArrivalProcess;

/// Behavioural class of one app (which arrival process drives it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppClass {
    /// Heavy-tailed Weibull-renewal gaps (the dominant class).
    Bursty,
    /// Diurnal rate curve with a per-app phase.
    Diurnal,
    /// Timer triggers: near-constant gaps with scheduler jitter.
    Steady,
}

impl AppClass {
    /// Stable short name (decision logs, CSV).
    pub fn name(self) -> &'static str {
        match self {
            AppClass::Bursty => "bursty",
            AppClass::Diurnal => "diurnal",
            AppClass::Steady => "steady",
        }
    }
}

/// Population-level shape knobs — the campaign sweeps presets of this.
#[derive(Debug, Clone)]
pub struct TraceShape {
    /// Stable short name (CSV column values).
    pub name: &'static str,
    /// Class mix weights `(bursty, diurnal, steady)`; need not sum to 1.
    pub class_weights: (f64, f64, f64),
    /// Weibull shape of bursty apps' inter-invocation gaps (< 1).
    pub burst_shape: f64,
    /// Skew exponent of the log-uniform rank-rate curve: per-app rates
    /// span cap→floor geometrically by rank, with the rank fraction
    /// raised to this power (>1 thickens the busy head, ≈1 is the
    /// published very-heavy popularity tail).
    pub popularity_alpha: f64,
    /// Slowest per-app mean rate (rank-curve floor), invocations/s.
    pub rate_floor_ops_s: f64,
    /// Fastest per-app mean rate (cap), invocations/s.
    pub rate_cap_ops_s: f64,
    /// Period of the diurnal class's rate curve, seconds.
    pub day_s: f64,
}

impl TraceShape {
    /// The published mix: mostly bursty apps, a diurnal slice, a steady
    /// slice — the shape the keepalive frontier is judged on.
    pub fn wild() -> TraceShape {
        TraceShape {
            name: "wild",
            class_weights: (0.6, 0.25, 0.15),
            burst_shape: 0.5,
            popularity_alpha: 1.1,
            rate_floor_ops_s: 1.0 / 900.0,
            rate_cap_ops_s: 1.0,
            day_s: 7200.0,
        }
    }

    /// Diurnal-dominated population (per-app phases spread the peaks).
    pub fn diurnal() -> TraceShape {
        TraceShape {
            name: "diurnal",
            class_weights: (0.15, 0.7, 0.15),
            burst_shape: 0.6,
            popularity_alpha: 1.2,
            rate_floor_ops_s: 1.0 / 600.0,
            rate_cap_ops_s: 1.0,
            day_s: 7200.0,
        }
    }

    /// Extreme-burstiness population: nearly every app heavy-tailed at
    /// shape 0.35 — the adversarial case for fixed windows.
    pub fn bursty() -> TraceShape {
        TraceShape {
            name: "bursty",
            class_weights: (0.9, 0.0, 0.1),
            burst_shape: 0.35,
            popularity_alpha: 1.05,
            rate_floor_ops_s: 1.0 / 1200.0,
            rate_cap_ops_s: 0.5,
            day_s: 7200.0,
        }
    }

    /// The campaign's trace shapes, sweep order.
    pub fn presets() -> Vec<TraceShape> {
        vec![
            TraceShape::wild(),
            TraceShape::diurnal(),
            TraceShape::bursty(),
        ]
    }
}

/// Static description of one app in the population.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Index into the trace's app table.
    pub id: usize,
    /// Arrival-process class.
    pub class: AppClass,
    /// Long-run mean invocation rate, invocations/s.
    pub rate_ops_s: f64,
    /// Resident container footprint, MB (Azure p50 ≈ 170 MB).
    pub mem_mb: f64,
    /// Code package staged on cold start, MB (drives create time).
    pub package_mb: f64,
    /// Mean execution duration, seconds.
    pub exec_mean_s: f64,
}

/// One function invocation.
#[derive(Debug, Clone, Copy)]
pub struct Invocation {
    /// Arrival instant, seconds.
    pub t_s: f64,
    /// App it belongs to.
    pub app: usize,
    /// Execution duration on a nominal-speed host, seconds.
    pub exec_s: f64,
}

/// A complete invocation trace: the app population plus the merged,
/// time-ordered schedule.
#[derive(Debug, Clone)]
pub struct FaasTrace {
    /// App table (`Invocation::app` indexes it).
    pub apps: Vec<AppSpec>,
    /// All invocations, ascending by `(t_s, app)`.
    pub invocations: Vec<Invocation>,
}

impl FaasTrace {
    /// Generate a synthetic trace: `napps` apps over `[0, horizon_s)`.
    ///
    /// `master` must be a dedicated stream (the cell runner passes
    /// `sim.rng("faas.trace")`); each app gets its own fork, so the
    /// population is stable under changes to any single app's draws.
    pub fn synth(
        master: &mut SimRng,
        shape: &TraceShape,
        napps: usize,
        horizon_s: f64,
    ) -> FaasTrace {
        assert!(napps > 0 && horizon_s > 0.0);
        let (wb, wd, ws) = shape.class_weights;
        let wsum = wb + wd + ws;
        assert!(wsum > 0.0, "class weights must not all be zero");
        let mut apps = Vec::with_capacity(napps);
        let mut invocations = Vec::new();
        for id in 0..napps {
            let mut rng = master.fork(&format!("app{id}"));
            let class = {
                let u = rng.f64() * wsum;
                if u < wb {
                    AppClass::Bursty
                } else if u < wb + wd {
                    AppClass::Diurnal
                } else {
                    AppClass::Steady
                }
            };
            // Log-uniform popularity by rank (app 0 is the head): rates
            // span the full cap→floor spectrum for any population size,
            // so every cell has both always-warm head apps and a sparse
            // tail where keepalive policy decides the cold-start bill.
            let span = shape.rate_floor_ops_s / shape.rate_cap_ops_s;
            let frac = if napps > 1 {
                (id as f64 / (napps - 1) as f64).powf(shape.popularity_alpha)
            } else {
                0.0
            };
            let rate =
                (shape.rate_cap_ops_s * span.powf(frac) * Uniform::new(0.7, 1.3).sample(&mut rng))
                    .clamp(shape.rate_floor_ops_s, shape.rate_cap_ops_s);
            // Azure Functions first-percentile allocated memory is
            // ~100-200 MB at the median with a long tail; log-normal
            // around 170 MB clipped to a container-plausible band.
            let mem_mb = LogNormal::with_mean(170.0, 0.6)
                .sample(&mut rng)
                .clamp(32.0, 2048.0);
            // Package sizes symmetric around the 5 MB Table 1 reference
            // so the population-mean create time matches the calibrated
            // lifecycle exactly.
            let package_mb = Uniform::new(1.2, 8.8).sample(&mut rng);
            // Executions are sub-second at the median with a tail —
            // short against every lifecycle phase, as in the dataset.
            let exec_mean_s = LogNormal::with_mean(0.6, 0.8)
                .sample(&mut rng)
                .clamp(0.05, 10.0);
            let process = match class {
                AppClass::Bursty => ArrivalProcess::HeavyTail {
                    shape: shape.burst_shape,
                },
                AppClass::Diurnal => ArrivalProcess::Diurnal {
                    period_s: shape.day_s,
                    amplitude: 0.8,
                    phase: rng.f64(),
                },
                AppClass::Steady => ArrivalProcess::Periodic { cv: 0.05 },
            };
            let instants = process.instants(&mut rng, rate, horizon_s);
            let exec = LogNormal::with_mean(exec_mean_s, 0.5);
            for t_s in instants {
                invocations.push(Invocation {
                    t_s,
                    app: id,
                    exec_s: exec.sample(&mut rng).clamp(0.01, 30.0),
                });
            }
            apps.push(AppSpec {
                id,
                class,
                rate_ops_s: rate,
                mem_mb,
                package_mb,
                exec_mean_s,
            });
        }
        invocations.sort_by(|a, b| {
            a.t_s
                .partial_cmp(&b.t_s)
                .expect("finite instants")
                .then(a.app.cmp(&b.app))
        });
        FaasTrace { apps, invocations }
    }

    /// Replay adapter for the Azure Functions 2019 invocations file:
    /// `HashOwner,HashApp,HashFunction,Trigger,1,2,…,1440` with
    /// per-minute invocation counts. Functions aggregate into their
    /// app; each minute's count spreads evenly across the minute (the
    /// dataset's resolution floor). Apps get the dataset's published
    /// medians for memory (170 MB) and execution (0.6 s) since the
    /// percentile files ship separately. Instants beyond `horizon_s`
    /// are clipped.
    pub fn from_azure_invocations_csv(text: &str, horizon_s: f64) -> Result<FaasTrace, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty trace file")?;
        let cols: Vec<&str> = header.split(',').collect();
        if cols.len() < 5 || cols[1] != "HashApp" {
            return Err(format!(
                "unexpected header (want HashOwner,HashApp,HashFunction,Trigger,1,…): {header:?}"
            ));
        }
        let minutes = cols.len() - 4;
        // App order = first appearance in the file (deterministic).
        let mut app_ids: Vec<String> = Vec::new();
        let mut per_app_counts: Vec<Vec<u64>> = Vec::new();
        for (lineno, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != cols.len() {
                return Err(format!(
                    "line {}: {} fields, header has {}",
                    lineno + 1,
                    fields.len(),
                    cols.len()
                ));
            }
            let app_hash = fields[1];
            let id = match app_ids.iter().position(|a| a == app_hash) {
                Some(i) => i,
                None => {
                    app_ids.push(app_hash.to_string());
                    per_app_counts.push(vec![0; minutes]);
                    app_ids.len() - 1
                }
            };
            for (m, f) in fields[4..].iter().enumerate() {
                let c: u64 = f
                    .trim()
                    .parse()
                    .map_err(|_| format!("line {}: bad count {f:?}", lineno + 1))?;
                per_app_counts[id][m] += c;
            }
        }
        if app_ids.is_empty() {
            return Err("trace contains no functions".to_string());
        }
        let mut apps = Vec::with_capacity(app_ids.len());
        let mut invocations = Vec::new();
        for (id, counts) in per_app_counts.iter().enumerate() {
            let total: u64 = counts.iter().sum();
            for (m, &c) in counts.iter().enumerate() {
                for i in 0..c {
                    let t_s = m as f64 * 60.0 + (i as f64 + 0.5) * 60.0 / c as f64;
                    if t_s < horizon_s {
                        invocations.push(Invocation {
                            t_s,
                            app: id,
                            exec_s: 0.6,
                        });
                    }
                }
            }
            apps.push(AppSpec {
                id,
                class: AppClass::Bursty,
                rate_ops_s: total as f64 / (minutes as f64 * 60.0),
                mem_mb: 170.0,
                package_mb: fabric::calib::REFERENCE_PACKAGE_MB,
                exec_mean_s: 0.6,
            });
        }
        invocations.sort_by(|a, b| {
            a.t_s
                .partial_cmp(&b.t_s)
                .expect("finite instants")
                .then(a.app.cmp(&b.app))
        });
        Ok(FaasTrace { apps, invocations })
    }

    /// Byte-exact digest of the schedule: one fixed-format line per
    /// invocation carrying the raw f64 bits. Two traces are the same
    /// schedule iff their digests are equal — the determinism witness
    /// the proptests compare.
    pub fn schedule_digest(&self) -> String {
        let mut s = String::with_capacity(self.invocations.len() * 48);
        for inv in &self.invocations {
            s.push_str(&format!(
                "t={:016x} app={:05} exec={:016x}\n",
                inv.t_s.to_bits(),
                inv.app,
                inv.exec_s.to_bits()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master(seed: u64) -> SimRng {
        SimRng::for_stream(seed, "faas.trace")
    }

    #[test]
    fn synth_is_deterministic_and_sorted() {
        let shape = TraceShape::wild();
        let a = FaasTrace::synth(&mut master(7), &shape, 40, 3600.0);
        let b = FaasTrace::synth(&mut master(7), &shape, 40, 3600.0);
        assert_eq!(a.schedule_digest(), b.schedule_digest());
        assert!(!a.invocations.is_empty());
        assert!(
            a.invocations.windows(2).all(|w| w[0].t_s <= w[1].t_s),
            "unsorted"
        );
        let c = FaasTrace::synth(&mut master(8), &shape, 40, 3600.0);
        assert_ne!(a.schedule_digest(), c.schedule_digest());
    }

    #[test]
    fn population_is_heavy_tailed() {
        // Top-decile apps must carry well over half the invocations
        // (Pareto popularity), and per-app rates span the floor-to-cap
        // range.
        let shape = TraceShape::wild();
        let t = FaasTrace::synth(&mut master(11), &shape, 200, 7200.0);
        let mut per_app = vec![0u64; t.apps.len()];
        for inv in &t.invocations {
            per_app[inv.app] += 1;
        }
        let mut sorted = per_app.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = sorted.iter().take(20).sum();
        let bottom_half: u64 = sorted.iter().skip(100).sum();
        let total: u64 = sorted.iter().sum();
        assert!(
            top as f64 > 0.4 * total as f64,
            "top-10% carries {top}/{total}"
        );
        assert!(
            (bottom_half as f64) < 0.1 * total as f64,
            "bottom half carries {bottom_half}/{total}"
        );
        for app in &t.apps {
            assert!(app.rate_ops_s >= shape.rate_floor_ops_s * 0.999);
            assert!(app.rate_ops_s <= shape.rate_cap_ops_s * 1.001);
            assert!((32.0..=2048.0).contains(&app.mem_mb));
        }
    }

    #[test]
    fn class_mix_tracks_the_weights() {
        let t = FaasTrace::synth(&mut master(13), &TraceShape::wild(), 400, 60.0);
        let bursty = t
            .apps
            .iter()
            .filter(|a| a.class == AppClass::Bursty)
            .count() as f64
            / t.apps.len() as f64;
        assert!((0.45..0.75).contains(&bursty), "bursty share {bursty}");
    }

    #[test]
    fn azure_replay_parses_and_spreads_minutes() {
        let csv = "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n\
                   o1,appA,f1,http,2,0,1\n\
                   o1,appA,f2,timer,0,1,0\n\
                   o2,appB,f3,queue,3,0,0\n";
        let t = FaasTrace::from_azure_invocations_csv(csv, 1e9).unwrap();
        assert_eq!(t.apps.len(), 2);
        // appA: minute 0 has 2 (f1) → 15 s and 45 s; minute 1 has 1
        // (f2) → 90 s; minute 2 has 1 (f1) → 150 s. appB: minute 0 has
        // 3 → 10/30/50 s.
        let a: Vec<(f64, usize)> = t.invocations.iter().map(|i| (i.t_s, i.app)).collect();
        assert_eq!(
            a,
            vec![
                (10.0, 1),
                (15.0, 0),
                (30.0, 1),
                (45.0, 0),
                (50.0, 1),
                (90.0, 0),
                (150.0, 0),
            ]
        );
        assert!((t.apps[0].rate_ops_s - 4.0 / 180.0).abs() < 1e-12);
        // Horizon clips.
        let clipped = FaasTrace::from_azure_invocations_csv(csv, 60.0).unwrap();
        assert_eq!(clipped.invocations.len(), 5);
    }

    #[test]
    fn azure_replay_rejects_garbage() {
        assert!(FaasTrace::from_azure_invocations_csv("", 60.0).is_err());
        assert!(FaasTrace::from_azure_invocations_csv("a,b,c\n", 60.0).is_err());
        let bad_fields = "HashOwner,HashApp,HashFunction,Trigger,1\no1,a,f,h\n";
        assert!(FaasTrace::from_azure_invocations_csv(bad_fields, 60.0).is_err());
        let bad_count = "HashOwner,HashApp,HashFunction,Trigger,1\no1,a,f,h,x\n";
        assert!(FaasTrace::from_azure_invocations_csv(bad_count, 60.0).is_err());
    }
}
