//! The per-app container pool: Idle/Loading/Active slots over real
//! fabric deployments.
//!
//! Every container is a one-instance small-worker [`fabric`]
//! deployment on the cell's own [`FabricController`] running at a
//! compressed [`lifecycle scale`](fabric::FabricConfig::lifecycle_scale):
//! a cold start *is* a Table 1 create (package staging included) plus
//! first boot, with the calibrated 2.6 % startup-failure retry — no
//! modelled cold-start constant anywhere. Evictions pay the scaled
//! suspend+delete; host-crash episodes from `simfault` stall Active
//! work mid-execution and get Idle containers reaped, exactly as the
//! full-size fabric behaves.
//!
//! ## Slot lifecycle
//!
//! ```text
//! arrival ──┬─ Idle slot?      claim it (warm start, overhead 0)
//!           ├─ unclaimed load? join it (cold start, partial wait)
//!           └─ neither         begin a load (cold start, full wait)
//! release ──┬─ prewarm window  evict now, reload before predicted next
//!           ├─ keepalive > 0   Idle until expiry / LRU / crash
//!           └─ keepalive = 0   evict now
//! ```
//!
//! Idle memory is the pool's budget: capacity is enforced on *idle*
//! containers (Active and Loading memory is demand, not a policy
//! choice) by LRU eviction, and every idle byte-second inside the
//! horizon accrues to `wasted_mb_s` — the memory axis of the
//! cold-start-vs-memory frontier.
//!
//! Determinism: slots live in id-ordered maps, the policy is a pure
//! state machine, and all randomness flows through the fabric's own
//! per-deployment streams — the decision and eviction logs reproduce
//! byte-for-byte for a given seed and trace.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use fabric::{Deployment, DeploymentSpec, FabricController, RoleType, VmSize};
use simcore::prelude::*;
use simcore::stats::OnlineStats;

use crate::policy::KeepalivePolicy;
use crate::trace::AppSpec;

/// Lifecycle compression for containers: the Table 1 small-worker
/// create+boot (≈379 s) lands at ≈2.96 s — the measured Azure
/// Functions cold-start band.
pub const CONTAINER_LIFECYCLE_SCALE: f64 = 1.0 / 128.0;

/// Why a container was evicted (eviction-log vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// Keepalive window ran out.
    Expired,
    /// Idle-memory capacity pressure (least recently used goes first).
    Lru,
    /// Host under a simfault crash episode; the fabric reaped the VM.
    Crash,
    /// Unloaded in favour of a scheduled prewarm.
    Prewarm,
    /// Policy keeps nothing (keepalive 0).
    Zero,
    /// End-of-horizon drain (final accounting sweep).
    Drain,
}

impl EvictReason {
    fn name(self) -> &'static str {
        match self {
            EvictReason::Expired => "expired",
            EvictReason::Lru => "lru",
            EvictReason::Crash => "crash",
            EvictReason::Prewarm => "prewarm",
            EvictReason::Zero => "zero",
            EvictReason::Drain => "drain",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Load in flight, no invocation attached (prewarm).
    Loading,
    /// Load in flight, an invocation is waiting on it.
    LoadingClaimed,
    /// Resident and unoccupied (keepalive memory).
    Idle,
    /// Running an invocation.
    Active,
    /// Evicted.
    Gone,
}

/// One container slot.
struct Slot {
    id: u64,
    app: usize,
    mem_mb: f64,
    state: Cell<SlotState>,
    dep: RefCell<Option<Rc<Deployment>>>,
    ready: Signal,
    /// When the load that produced this slot began (cold-start anchor).
    load_began_s: f64,
    idle_since: Cell<f64>,
    expires_s: Cell<f64>,
    last_used: Cell<f64>,
}

/// How an arrival got its container.
pub enum Route {
    /// Claimed an idle container: zero start overhead.
    Warm(Rc<SlotHandle>),
    /// Claimed an in-flight (prewarm) load: partial cold wait.
    Join(Rc<SlotHandle>),
    /// Started a fresh load: the full scaled Table 1 wait.
    Cold(Rc<SlotHandle>),
}

/// Opaque reference handed to invocation tasks.
pub struct SlotHandle {
    slot: Rc<Slot>,
}

impl SlotHandle {
    /// Resolves when the container is loaded (immediately if warm).
    pub async fn loaded(&self) {
        self.slot.ready.wait().await;
    }

    /// Run `work` on the container's host (slowdown/crash adjusted).
    pub async fn execute(&self, work: SimDuration) -> SimDuration {
        let dep = self
            .slot
            .dep
            .borrow()
            .clone()
            .expect("execute after loaded()");
        dep.execute_on(0, work).await
    }
}

/// Pool configuration (the cell runner fills this from `FaasConfig`).
pub struct PoolConfig {
    /// Idle-memory capacity, MB.
    pub mem_capacity_mb: f64,
    /// Measurement horizon, seconds (memory accounting clamps here).
    pub horizon_s: f64,
    /// Startup-failure retry backoff, seconds (already scaled).
    pub retry_backoff_s: f64,
}

/// The pool (shared by dispatcher, sweeper, and invocation tasks).
pub struct Pool {
    sim: Sim,
    fc: Rc<FabricController>,
    cfg: PoolConfig,
    apps: Vec<AppSpec>,
    policy: RefCell<Box<dyn KeepalivePolicy>>,
    slots: RefCell<BTreeMap<u64, Rc<Slot>>>,
    next_slot: Cell<u64>,
    /// Idle slot ids per app (id-ordered; selection scans for MRU).
    idle_by_app: RefCell<Vec<Vec<u64>>>,
    /// Unclaimed loading slot ids per app.
    loading_by_app: RefCell<Vec<Vec<u64>>>,
    /// Arrivals seen per app (prewarm cancellation token).
    arrival_seq: RefCell<Vec<u64>>,
    last_arrival: RefCell<Vec<Option<f64>>>,

    // Accounting.
    idle_mb: Cell<f64>,
    peak_idle_mb: Cell<f64>,
    wasted_mb_s: Cell<f64>,
    mem_tick_mb: Cell<f64>,
    warm_starts: Cell<u64>,
    cold_starts: Cell<u64>,
    joins: Cell<u64>,
    prewarm_scheduled: Cell<u64>,
    prewarm_loads: Cell<u64>,
    prewarm_cancelled: Cell<u64>,
    evictions: Cell<u64>,
    evict_expired: Cell<u64>,
    evict_lru: Cell<u64>,
    evict_crash: Cell<u64>,
    containers_created: Cell<u64>,
    cold_full: RefCell<OnlineStats>,
    decision_log: RefCell<String>,
    eviction_log: RefCell<String>,
}

impl Pool {
    /// New pool over `fc` (which must already run at the container
    /// lifecycle scale).
    pub fn new(
        sim: &Sim,
        fc: &Rc<FabricController>,
        apps: &[AppSpec],
        policy: Box<dyn KeepalivePolicy>,
        cfg: PoolConfig,
    ) -> Rc<Pool> {
        let n = apps.len();
        Rc::new(Pool {
            sim: sim.clone(),
            fc: Rc::clone(fc),
            cfg,
            apps: apps.to_vec(),
            policy: RefCell::new(policy),
            slots: RefCell::new(BTreeMap::new()),
            next_slot: Cell::new(0),
            idle_by_app: RefCell::new(vec![Vec::new(); n]),
            loading_by_app: RefCell::new(vec![Vec::new(); n]),
            arrival_seq: RefCell::new(vec![0; n]),
            last_arrival: RefCell::new(vec![None; n]),
            idle_mb: Cell::new(0.0),
            peak_idle_mb: Cell::new(0.0),
            wasted_mb_s: Cell::new(0.0),
            mem_tick_mb: Cell::new(0.0),
            warm_starts: Cell::new(0),
            cold_starts: Cell::new(0),
            joins: Cell::new(0),
            prewarm_scheduled: Cell::new(0),
            prewarm_loads: Cell::new(0),
            prewarm_cancelled: Cell::new(0),
            evictions: Cell::new(0),
            evict_expired: Cell::new(0),
            evict_lru: Cell::new(0),
            evict_crash: Cell::new(0),
            containers_created: Cell::new(0),
            cold_full: RefCell::new(OnlineStats::new()),
            decision_log: RefCell::new(String::new()),
            eviction_log: RefCell::new(String::new()),
        })
    }

    fn now_s(&self) -> f64 {
        self.sim.now().as_secs_f64()
    }

    /// Record one arrival for `app` (inter-arrival observation + the
    /// prewarm cancellation token) and route it to a container.
    pub fn arrive(self: &Rc<Self>, app: usize) -> Route {
        let now = self.now_s();
        let iat = {
            let mut last = self.last_arrival.borrow_mut();
            let iat = last[app].map(|t| now - t);
            last[app] = Some(now);
            iat
        };
        self.arrival_seq.borrow_mut()[app] += 1;
        self.policy.borrow_mut().observe_arrival(app, iat);

        // Warm path: claim the most recently used idle container (the
        // rest keep aging toward their expiry).
        let warm = {
            let mut idle = self.idle_by_app.borrow_mut();
            let pick = idle[app]
                .iter()
                .copied()
                .map(|id| {
                    let slots = self.slots.borrow();
                    (slots[&id].last_used.get(), id)
                })
                .fold(None::<(f64, u64)>, |best, cand| match best {
                    Some(b) if b >= cand => Some(b),
                    _ => Some(cand),
                });
            if let Some((_, id)) = pick {
                idle[app].retain(|&x| x != id);
                Some(id)
            } else {
                None
            }
        };
        if let Some(id) = warm {
            let slot = Rc::clone(&self.slots.borrow()[&id]);
            self.end_idle(&slot, now);
            self.idle_mb.set(self.idle_mb.get() - slot.mem_mb);
            slot.state.set(SlotState::Active);
            slot.last_used.set(now);
            self.warm_starts.set(self.warm_starts.get() + 1);
            simtrace::counter("faas.warm_start", 1);
            self.log_route(now, app, "warm");
            return Route::Warm(Rc::new(SlotHandle { slot }));
        }

        // Join an unclaimed in-flight load (prewarm racing an early
        // arrival): cold, but only the remaining wait is paid.
        let join = {
            let mut loading = self.loading_by_app.borrow_mut();
            if loading[app].is_empty() {
                None
            } else {
                Some(loading[app].remove(0))
            }
        };
        if let Some(id) = join {
            let slot = Rc::clone(&self.slots.borrow()[&id]);
            slot.state.set(SlotState::LoadingClaimed);
            slot.last_used.set(now);
            self.joins.set(self.joins.get() + 1);
            self.cold_starts.set(self.cold_starts.get() + 1);
            simtrace::counter("faas.cold_start", 1);
            self.log_route(now, app, "join");
            return Route::Join(Rc::new(SlotHandle { slot }));
        }

        // Full cold start: a fresh scaled Table 1 lifecycle.
        let slot = self.begin_load(app, true);
        self.cold_starts.set(self.cold_starts.get() + 1);
        simtrace::counter("faas.cold_start", 1);
        self.log_route(now, app, "cold");
        Route::Cold(Rc::new(SlotHandle { slot }))
    }

    /// Start a container load for `app`. `claimed` marks an invocation
    /// already waiting on it; unclaimed loads are prewarms that idle on
    /// completion.
    fn begin_load(self: &Rc<Self>, app: usize, claimed: bool) -> Rc<Slot> {
        let id = self.next_slot.get();
        self.next_slot.set(id + 1);
        let spec = &self.apps[app];
        let slot = Rc::new(Slot {
            id,
            app,
            mem_mb: spec.mem_mb,
            state: Cell::new(if claimed {
                SlotState::LoadingClaimed
            } else {
                SlotState::Loading
            }),
            dep: RefCell::new(None),
            ready: Signal::new(),
            load_began_s: self.now_s(),
            idle_since: Cell::new(0.0),
            expires_s: Cell::new(0.0),
            last_used: Cell::new(self.now_s()),
        });
        self.slots.borrow_mut().insert(id, Rc::clone(&slot));
        if !claimed {
            self.loading_by_app.borrow_mut()[app].push(id);
        }
        self.containers_created
            .set(self.containers_created.get() + 1);

        let pool = Rc::clone(self);
        let task_slot = Rc::clone(&slot);
        let package_mb = spec.package_mb;
        self.sim.clone().spawn(async move {
            let sp = simtrace::span(simtrace::Layer::Faas, "container.load", || {
                format!("app{} slot{}", task_slot.app, task_slot.id)
            });
            let dep = pool
                .fc
                .create_deployment(DeploymentSpec {
                    role: RoleType::Worker,
                    size: VmSize::Small,
                    instances: 1,
                    package_mb,
                })
                .await
                .expect("container quota is effectively unbounded");
            // The 2.6 % startup failures retry on the scaled backoff —
            // the paper's own remedy, compressed with the lifecycle.
            dep.run_with_retry(&simfault::RetryPolicy::fixed(
                pool.cfg.retry_backoff_s,
                simfault::FOREVER,
            ))
            .await
            .expect("retried boot eventually succeeds");
            *task_slot.dep.borrow_mut() = Some(dep);
            sp.end();
            task_slot.ready.fire();
            pool.on_load_ready(&task_slot);
        });
        slot
    }

    /// Load finished: claimed slots go Active (their invocation task is
    /// waiting on the signal); unclaimed prewarms go Idle under the
    /// policy's current keepalive window.
    fn on_load_ready(self: &Rc<Self>, slot: &Rc<Slot>) {
        match slot.state.get() {
            SlotState::LoadingClaimed => {
                if let Some(d) = self.full_cold_duration(slot) {
                    self.cold_full.borrow_mut().push(d);
                }
                slot.state.set(SlotState::Active);
            }
            SlotState::Loading => {
                let now = self.now_s();
                self.loading_by_app.borrow_mut()[slot.app].retain(|&x| x != slot.id);
                self.prewarm_loads.set(self.prewarm_loads.get() + 1);
                let w = self.policy.borrow().windows(slot.app);
                self.mark_idle(slot, now, w.keepalive_s.max(0.0));
            }
            other => unreachable!("load completed in state {other:?}"),
        }
    }

    /// Full-cold duration, but only for loads begun by an arrival that
    /// waited start to finish (the anchor excludes joins; a join's
    /// slot was already reclassified before its load finished only if
    /// it started as a prewarm, which `load_began_s` still dates).
    fn full_cold_duration(&self, slot: &Slot) -> Option<f64> {
        // A prewarm-born slot was in `Loading` when claimed; its
        // last_used (claim time) postdates load_began_s. A directly
        // cold slot has last_used == load_began_s.
        if slot.last_used.get() == slot.load_began_s {
            Some(self.now_s() - slot.load_began_s)
        } else {
            None
        }
    }

    /// Invocation finished on `handle`: consult the policy and either
    /// keep the container idle, evict it, or evict-and-prewarm.
    pub fn release(self: &Rc<Self>, handle: &SlotHandle) {
        let slot = &handle.slot;
        let now = self.now_s();
        debug_assert_eq!(slot.state.get(), SlotState::Active);
        slot.last_used.set(now);
        let w = self.policy.borrow().windows(slot.app);
        {
            let mut log = self.decision_log.borrow_mut();
            match w.prewarm_s {
                Some(p) => log.push_str(&format!(
                    "t={:010.3} app={:04} ka={:09.2} pw={:09.2}\n",
                    now, slot.app, w.keepalive_s, p
                )),
                None => log.push_str(&format!(
                    "t={:010.3} app={:04} ka={:09.2} pw=none\n",
                    now, slot.app, w.keepalive_s
                )),
            }
        }
        match w.prewarm_s {
            Some(gap) => {
                self.evict(slot, EvictReason::Prewarm, now);
                self.schedule_prewarm(slot.app, gap, now);
            }
            None if w.keepalive_s <= 0.0 => {
                self.evict(slot, EvictReason::Zero, now);
            }
            None => {
                self.mark_idle(slot, now, w.keepalive_s);
            }
        }
    }

    /// Queue a prewarm load for `app`, `gap` seconds after its last
    /// arrival. Cancelled if another arrival shows up first (that
    /// arrival re-observes the gap and routes itself), if the app
    /// already has capacity, or if the target lands past the horizon.
    fn schedule_prewarm(self: &Rc<Self>, app: usize, gap: f64, now: f64) {
        let base = self.last_arrival.borrow()[app].unwrap_or(now);
        let target = (base + gap).max(now);
        if target >= self.cfg.horizon_s {
            return;
        }
        let token = self.arrival_seq.borrow()[app];
        self.prewarm_scheduled.set(self.prewarm_scheduled.get() + 1);
        let pool = Rc::clone(self);
        self.sim.clone().spawn(async move {
            let wait = target - pool.now_s();
            if wait > 0.0 {
                pool.sim.delay(SimDuration::from_secs_f64(wait)).await;
            }
            let cancelled = pool.arrival_seq.borrow()[app] != token
                || !pool.idle_by_app.borrow()[app].is_empty()
                || !pool.loading_by_app.borrow()[app].is_empty();
            if cancelled {
                pool.prewarm_cancelled.set(pool.prewarm_cancelled.get() + 1);
                return;
            }
            simtrace::instant(simtrace::Layer::Faas, "prewarm", || format!("app{app}"));
            pool.begin_load(app, false);
        });
    }

    /// Transition to Idle: start the wasted-memory clock, enforce the
    /// idle-capacity budget by LRU eviction.
    fn mark_idle(self: &Rc<Self>, slot: &Rc<Slot>, now: f64, keepalive_s: f64) {
        slot.state.set(SlotState::Idle);
        slot.idle_since.set(now);
        slot.expires_s.set(now + keepalive_s);
        self.idle_by_app.borrow_mut()[slot.app].push(slot.id);
        self.idle_mb.set(self.idle_mb.get() + slot.mem_mb);
        if self.idle_mb.get() > self.peak_idle_mb.get() {
            self.peak_idle_mb.set(self.idle_mb.get());
        }
        while self.idle_mb.get() > self.cfg.mem_capacity_mb {
            let victim = {
                let slots = self.slots.borrow();
                slots
                    .values()
                    .filter(|s| s.state.get() == SlotState::Idle)
                    .map(|s| (s.last_used.get(), s.id))
                    .fold(None::<(f64, u64)>, |best, cand| match best {
                        Some(b) if b <= cand => Some(b),
                        _ => Some(cand),
                    })
            };
            match victim {
                Some((_, id)) => {
                    let v = Rc::clone(&self.slots.borrow()[&id]);
                    self.idle_by_app.borrow_mut()[v.app].retain(|&x| x != id);
                    self.evict(&v, EvictReason::Lru, now);
                }
                None => break,
            }
        }
    }

    /// Stop the idle clock and charge the horizon-clamped idle
    /// byte-seconds.
    fn end_idle(&self, slot: &Slot, now: f64) {
        let h = self.cfg.horizon_s;
        let a = slot.idle_since.get().min(h);
        let b = now.min(h);
        if b > a {
            self.wasted_mb_s
                .set(self.wasted_mb_s.get() + slot.mem_mb * (b - a));
        }
    }

    /// Evict `slot` (caller has already detached it from the idle
    /// index when coming from the warm/LRU paths; this detaches for
    /// the rest).
    fn evict(self: &Rc<Self>, slot: &Rc<Slot>, reason: EvictReason, now: f64) {
        if slot.state.get() == SlotState::Idle {
            self.end_idle(slot, now);
            self.idle_mb.set(self.idle_mb.get() - slot.mem_mb);
            self.idle_by_app.borrow_mut()[slot.app].retain(|&x| x != slot.id);
        }
        slot.state.set(SlotState::Gone);
        self.slots.borrow_mut().remove(&slot.id);
        self.evictions.set(self.evictions.get() + 1);
        match reason {
            EvictReason::Expired => self.evict_expired.set(self.evict_expired.get() + 1),
            EvictReason::Lru => self.evict_lru.set(self.evict_lru.get() + 1),
            EvictReason::Crash => self.evict_crash.set(self.evict_crash.get() + 1),
            _ => {}
        }
        simtrace::counter("faas.evicted", 1);
        simtrace::instant(simtrace::Layer::Faas, "evict", || {
            format!("app{} slot{} {}", slot.app, slot.id, reason.name())
        });
        self.eviction_log.borrow_mut().push_str(&format!(
            "t={:010.3} app={:04} slot={:06} reason={}\n",
            now,
            slot.app,
            slot.id,
            reason.name()
        ));

        let dep = slot.dep.borrow().clone();
        let Some(dep) = dep else { return };
        if reason == EvictReason::Crash {
            // The fabric notices the dead host and reaps the VM (quota
            // released); nothing left to suspend.
            dep.reap_dead();
            return;
        }
        // Live teardown pays the scaled suspend+delete lifecycle.
        self.sim.clone().spawn(async move {
            let _ = dep.suspend().await;
            let _ = dep.delete().await;
        });
    }

    /// Periodic sweep: expire keepalive windows, reap idle containers
    /// on crashed hosts, and integrate the mem-ticks counter.
    pub fn sweep(self: &Rc<Self>, tick_s: f64) {
        let now = self.now_s();
        let due: Vec<Rc<Slot>> = {
            let slots = self.slots.borrow();
            slots
                .values()
                .filter(|s| s.state.get() == SlotState::Idle)
                .filter(|s| {
                    if s.expires_s.get() <= now {
                        return true;
                    }
                    let dep = s.dep.borrow();
                    match dep.as_ref() {
                        Some(d) if d.instance_count() > 0 => {
                            self.fc
                                .hosts()
                                .speed_segment(d.host_of(0), self.sim.now())
                                .0
                                == 0.0
                        }
                        _ => false,
                    }
                })
                .map(Rc::clone)
                .collect()
        };
        for slot in due {
            let crashed = {
                let dep = slot.dep.borrow();
                match dep.as_ref() {
                    Some(d) if d.instance_count() > 0 => {
                        self.fc
                            .hosts()
                            .speed_segment(d.host_of(0), self.sim.now())
                            .0
                            == 0.0
                    }
                    _ => false,
                }
            };
            let reason = if crashed {
                EvictReason::Crash
            } else {
                EvictReason::Expired
            };
            self.evict(&slot, reason, now);
        }
        if now < self.cfg.horizon_s {
            self.mem_tick_mb
                .set(self.mem_tick_mb.get() + self.idle_mb.get() * tick_s);
            simtrace::counter("faas.mem_ticks", self.idle_mb.get().round() as i64);
        }
    }

    /// End-of-horizon drain: evict every idle container so the wasted-
    /// memory integral closes exactly at the horizon.
    pub fn drain(self: &Rc<Self>) {
        let now = self.now_s();
        let idle: Vec<Rc<Slot>> = self
            .slots
            .borrow()
            .values()
            .filter(|s| s.state.get() == SlotState::Idle)
            .map(Rc::clone)
            .collect();
        for slot in idle {
            self.evict(&slot, EvictReason::Drain, now);
        }
    }

    fn log_route(&self, now: f64, app: usize, route: &str) {
        self.decision_log
            .borrow_mut()
            .push_str(&format!("t={:010.3} app={:04} route={route}\n", now, app));
    }

    // --- accessors for the cell runner ---------------------------------

    /// Warm starts so far.
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts.get()
    }
    /// Cold starts so far (fresh loads + joined prewarms).
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts.get()
    }
    /// Arrivals that joined an in-flight load.
    pub fn joins(&self) -> u64 {
        self.joins.get()
    }
    /// Prewarm loads scheduled / completed / cancelled.
    pub fn prewarm_counts(&self) -> (u64, u64, u64) {
        (
            self.prewarm_scheduled.get(),
            self.prewarm_loads.get(),
            self.prewarm_cancelled.get(),
        )
    }
    /// Total evictions and the per-reason breakdown that matters.
    pub fn eviction_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.evictions.get(),
            self.evict_expired.get(),
            self.evict_lru.get(),
            self.evict_crash.get(),
        )
    }
    /// Idle byte-seconds inside the horizon (MB·s).
    pub fn wasted_mb_s(&self) -> f64 {
        self.wasted_mb_s.get()
    }
    /// Largest simultaneous idle footprint, MB.
    pub fn peak_idle_mb(&self) -> f64 {
        self.peak_idle_mb.get()
    }
    /// Sweep-integrated idle MB·s (the `faas.mem_ticks` counter).
    pub fn mem_tick_mb(&self) -> f64 {
        self.mem_tick_mb.get()
    }
    /// Containers created over the run.
    pub fn containers_created(&self) -> u64 {
        self.containers_created.get()
    }
    /// Full-cold start-overhead stats (create + boot, retries
    /// included).
    pub fn cold_full_stats(&self) -> OnlineStats {
        self.cold_full.borrow().clone()
    }
    /// The byte-reproducible policy decision log.
    pub fn decision_log(&self) -> String {
        self.decision_log.borrow().clone()
    }
    /// The byte-reproducible eviction log.
    pub fn eviction_log(&self) -> String {
        self.eviction_log.borrow().clone()
    }
}
