//! The faas cell runner: one serverless experiment, end to end.
//!
//! A cell replays an Azure-Functions-shaped invocation trace against
//! a container [`Pool`] whose cold starts are *emergent*: each one is
//! a real `fabric` create+boot at [`CONTAINER_LIFECYCLE_SCALE`], with
//! the calibrated 2.6 % startup-failure retries and host-crash
//! exposure the full-size lifecycle has. The keepalive policy decides
//! what memory stays resident between invocations; the output is one
//! point per policy on the cold-start-vs-wasted-memory frontier.
//!
//! ## Timeline
//!
//! ```text
//! t=0          trace drawn from "faas.trace" (before any fabric RNG)
//! t=inv.t_s    arrival: warm claim / join in-flight load / cold load
//! exec end     policy verdict: keep idle, evict, or evict+prewarm
//! t=horizon    sweeper drains all idle containers; accounting closes
//! ```
//!
//! The schedule is drawn before any fabric randomness is consumed, so
//! for a given seed **every policy faces the byte-identical demand**
//! — the frontier compares keepalive policies, not luck.

use std::cell::RefCell;
use std::rc::Rc;

use fabric::{FabricConfig, FabricController, HostPoolConfig};
use simcore::prelude::*;
use simcore::stats::OnlineStats;
use simload::SloTracker;

use crate::policy::PolicyKind;
use crate::pool::{Pool, PoolConfig, Route, CONTAINER_LIFECYCLE_SCALE};
use crate::trace::{FaasTrace, TraceShape};

/// One serverless cell.
#[derive(Clone)]
pub struct FaasConfig {
    /// Synthetic trace shape (ignored when `replay` is set).
    pub shape: TraceShape,
    /// Keepalive policy under test.
    pub policy: PolicyKind,
    /// Number of applications to synthesise.
    pub apps: usize,
    /// Trace/measurement horizon, seconds.
    pub horizon_s: f64,
    /// Idle-memory capacity of the pool, MB.
    pub mem_capacity_mb: f64,
    /// Fabric host-pool size behind the containers.
    pub hosts: usize,
    /// Sweeper tick (keepalive expiry granularity), seconds.
    pub sweep_tick_s: f64,
    /// Start-overhead SLO, seconds: a cold start (≈3 s) violates, a
    /// warm start (0 s) is good.
    pub deadline_s: f64,
    /// Replay a pre-parsed real trace instead of synthesising one.
    pub replay: Option<Rc<FaasTrace>>,
}

impl FaasConfig {
    /// Campaign-quick defaults; cells override policy/shape/faults.
    pub fn quick(shape: TraceShape, policy: PolicyKind) -> Self {
        FaasConfig {
            shape,
            policy,
            apps: 48,
            horizon_s: 7200.0,
            mem_capacity_mb: 24576.0,
            hosts: 24,
            sweep_tick_s: 5.0,
            deadline_s: 1.0,
            replay: None,
        }
    }
}

/// What one cell hands back.
pub struct FaasResult {
    /// Policy short name.
    pub policy: &'static str,
    /// Trace shape short name.
    pub shape: &'static str,
    /// Start-overhead SLO accounting (deadline = cold-start budget).
    pub slo: SloTracker,
    /// Invocations dispatched.
    pub invocations: u64,
    /// Cold starts (fresh loads + joined in-flight loads).
    pub cold_starts: u64,
    /// Warm starts (idle container claimed, zero overhead).
    pub warm_starts: u64,
    /// Arrivals that joined an in-flight (prewarm) load.
    pub joins: u64,
    /// Prewarm loads scheduled.
    pub prewarm_scheduled: u64,
    /// Prewarm loads that completed into an idle container.
    pub prewarm_loads: u64,
    /// Prewarms cancelled by a racing arrival or existing capacity.
    pub prewarm_cancelled: u64,
    /// Containers created over the run.
    pub containers_created: u64,
    /// Total evictions.
    pub evictions: u64,
    /// Evictions by keepalive expiry.
    pub evict_expired: u64,
    /// Evictions by idle-capacity (LRU) pressure.
    pub evict_lru: u64,
    /// Idle containers reaped off crashed hosts.
    pub evict_crash: u64,
    /// Idle (wasted) memory integral inside the horizon, MB·s.
    pub wasted_mb_s: f64,
    /// Peak simultaneous idle footprint, MB.
    pub peak_idle_mb: f64,
    /// Sweep-integrated idle MB·s (mirrors the `faas.mem_ticks`
    /// counter series).
    pub mem_tick_mb_s: f64,
    /// Full cold-start overheads (arrival waited create+boot end to
    /// end; the Table 1 anchor).
    pub cold_full: OnlineStats,
    /// Byte-reproducible routing + policy decision log.
    pub decision_log: String,
    /// Byte-reproducible eviction log.
    pub eviction_log: String,
}

impl FaasResult {
    /// Fraction of invocations that paid a cold start (0 when idle).
    pub fn cold_fraction(&self) -> f64 {
        let n = self.cold_starts + self.warm_starts;
        if n == 0 {
            0.0
        } else {
            self.cold_starts as f64 / n as f64
        }
    }

    /// Mean idle (wasted) memory over the horizon, MB.
    pub fn wasted_mb_mean(&self, horizon_s: f64) -> f64 {
        if horizon_s <= 0.0 {
            0.0
        } else {
            self.wasted_mb_s / horizon_s
        }
    }
}

/// Run one faas cell to completion on `sim` (drives `sim.run()`).
pub fn run_faas(sim: &Sim, cfg: &FaasConfig) -> FaasResult {
    assert!(cfg.apps > 0 && cfg.hosts > 0);
    assert!(cfg.horizon_s > 0.0 && cfg.sweep_tick_s > 0.0);

    // Demand first: the trace comes from its own stream, drawn before
    // any fabric randomness, so every policy sees identical arrivals.
    let trace = match &cfg.replay {
        Some(t) => Rc::clone(t),
        None => {
            let mut rng = sim.rng("faas.trace");
            Rc::new(FaasTrace::synth(
                &mut rng,
                &cfg.shape,
                cfg.apps,
                cfg.horizon_s,
            ))
        }
    };

    let fc = FabricController::new(
        sim,
        FabricConfig {
            // Containers are sub-VM slices; the subscription quota is
            // not the scarce resource here (idle memory is).
            quota_cores: u32::MAX / 2,
            hosts: HostPoolConfig {
                hosts: cfg.hosts,
                ..HostPoolConfig::default()
            },
            lifecycle_scale: CONTAINER_LIFECYCLE_SCALE,
            ..FabricConfig::default()
        },
    );

    let pool = Pool::new(
        sim,
        &fc,
        &trace.apps,
        cfg.policy.build(trace.apps.len()),
        PoolConfig {
            mem_capacity_mb: cfg.mem_capacity_mb,
            horizon_s: cfg.horizon_s,
            retry_backoff_s: 30.0 * CONTAINER_LIFECYCLE_SCALE,
        },
    );

    let tracker = Rc::new(RefCell::new(SloTracker::new(cfg.deadline_s)));

    // Dispatcher: replay the schedule open-loop; each invocation runs
    // as its own task so a cold-start wait never delays later traffic.
    {
        let s = sim.clone();
        let pool = Rc::clone(&pool);
        let trace = Rc::clone(&trace);
        let tracker = Rc::clone(&tracker);
        sim.spawn(async move {
            for inv in trace.invocations.iter() {
                let now = s.now().as_secs_f64();
                if inv.t_s > now {
                    s.delay(SimDuration::from_secs_f64(inv.t_s - now)).await;
                }
                tracker.borrow_mut().note_scheduled();
                let route = pool.arrive(inv.app);
                let handle = match route {
                    Route::Warm(h) | Route::Join(h) | Route::Cold(h) => h,
                };
                let s2 = s.clone();
                let pool2 = Rc::clone(&pool);
                let tracker2 = Rc::clone(&tracker);
                let t_arrival = inv.t_s;
                let exec_s = inv.exec_s;
                s.spawn(async move {
                    handle.loaded().await;
                    let overhead = s2.now().as_secs_f64() - t_arrival;
                    handle.execute(SimDuration::from_secs_f64(exec_s)).await;
                    let done = s2.now().as_secs_f64();
                    tracker2.borrow_mut().record_ok(overhead, done);
                    pool2.release(&handle);
                });
            }
        });
    }

    // Sweeper: expiry + crash reaping + the mem-ticks series, then the
    // end-of-horizon drain that closes the memory integral.
    {
        let s = sim.clone();
        let pool = Rc::clone(&pool);
        let tick = cfg.sweep_tick_s;
        let horizon = cfg.horizon_s;
        sim.spawn(async move {
            loop {
                s.delay(SimDuration::from_secs_f64(tick)).await;
                pool.sweep(tick);
                if s.now().as_secs_f64() >= horizon {
                    pool.drain();
                    break;
                }
            }
        });
    }

    sim.run();

    let slo = Rc::try_unwrap(tracker)
        .expect("all invocation tasks finished")
        .into_inner();
    let (prewarm_scheduled, prewarm_loads, prewarm_cancelled) = pool.prewarm_counts();
    let (evictions, evict_expired, evict_lru, evict_crash) = pool.eviction_counts();
    FaasResult {
        policy: cfg.policy.name(),
        shape: trace_shape_name(cfg),
        slo,
        invocations: trace.invocations.len() as u64,
        cold_starts: pool.cold_starts(),
        warm_starts: pool.warm_starts(),
        joins: pool.joins(),
        prewarm_scheduled,
        prewarm_loads,
        prewarm_cancelled,
        containers_created: pool.containers_created(),
        evictions,
        evict_expired,
        evict_lru,
        evict_crash,
        wasted_mb_s: pool.wasted_mb_s(),
        peak_idle_mb: pool.peak_idle_mb(),
        mem_tick_mb_s: pool.mem_tick_mb(),
        cold_full: pool.cold_full_stats(),
        decision_log: pool.decision_log(),
        eviction_log: pool.eviction_log(),
    }
}

fn trace_shape_name(cfg: &FaasConfig) -> &'static str {
    if cfg.replay.is_some() {
        "replay"
    } else {
        cfg.shape.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn tiny(policy: PolicyKind, seed: u64) -> FaasResult {
        let sim = Sim::new(seed);
        run_faas(
            &sim,
            &FaasConfig {
                apps: 12,
                horizon_s: 1800.0,
                hosts: 8,
                mem_capacity_mb: 3072.0,
                ..FaasConfig::quick(TraceShape::wild(), policy)
            },
        )
    }

    #[test]
    fn cell_runs_and_accounts() {
        let r = tiny(PolicyKind::FixedWindow, 7);
        assert!(r.invocations > 50, "invocations {}", r.invocations);
        assert_eq!(
            r.cold_starts + r.warm_starts,
            r.invocations,
            "every invocation routed"
        );
        assert_eq!(r.slo.scheduled, r.invocations);
        assert_eq!(r.slo.completed, r.invocations, "every invocation ran");
        assert!(r.cold_starts > 0, "first touches are cold");
        assert!(r.warm_starts > 0, "keepalive produces warm hits");
        assert!(r.wasted_mb_s > 0.0, "idle memory accrues");
        assert!(!r.decision_log.is_empty() && !r.eviction_log.is_empty());
    }

    #[test]
    fn cold_starts_land_in_the_scaled_table1_band() {
        let r = tiny(PolicyKind::NoKeepalive, 11);
        assert_eq!(r.warm_starts, 0, "no keepalive, no warm hits");
        assert_eq!(r.cold_starts, r.invocations);
        assert!(
            r.cold_full.count() > 20,
            "cold samples {}",
            r.cold_full.count()
        );
        let mean = r.cold_full.mean();
        // (86.25 + 292.75) / 128 ≈ 2.96 s, retries push the tail up.
        assert!(
            (2.0..6.0).contains(&mean),
            "cold start mean {mean} outside the scaled Table 1 band"
        );
        // No keepalive ⇒ nothing idles ⇒ (almost) no wasted memory.
        assert!(r.wasted_mb_s < 1.0, "no-keepalive wasted {}", r.wasted_mb_s);
    }

    #[test]
    fn same_seed_reproduces_byte_identical_logs() {
        let a = tiny(PolicyKind::Hybrid, 3);
        let b = tiny(PolicyKind::Hybrid, 3);
        assert_eq!(a.decision_log, b.decision_log);
        assert_eq!(a.eviction_log, b.eviction_log);
        assert_eq!(a.cold_starts, b.cold_starts);
        assert_eq!(a.wasted_mb_s.to_bits(), b.wasted_mb_s.to_bits());
    }

    #[test]
    fn policies_diverge_on_the_same_demand() {
        let none = tiny(PolicyKind::NoKeepalive, 3);
        let fixed = tiny(PolicyKind::FixedWindow, 3);
        let hybrid = tiny(PolicyKind::Hybrid, 3);
        // Identical demand (same seed, trace drawn first) ...
        assert_eq!(none.invocations, fixed.invocations);
        assert_eq!(fixed.invocations, hybrid.invocations);
        // ... distinct outcomes on the frontier's two axes.
        assert!(none.cold_fraction() >= fixed.cold_fraction());
        assert!(none.wasted_mb_s <= fixed.wasted_mb_s);
        let logs = [
            &none.eviction_log,
            &fixed.eviction_log,
            &hybrid.eviction_log,
        ];
        assert!(logs[0] != logs[1] && logs[1] != logs[2] && logs[0] != logs[2]);
    }
}
