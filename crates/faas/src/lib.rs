//! Serverless functions on the simulated fabric: cold starts,
//! keepalive policies, and the cold-start-vs-memory frontier.
//!
//! The HPDC'10 paper measures the VM lifecycle tax a tenant pays to
//! get capacity (Table 1: ≈10 minutes from create to first useful
//! work). This crate asks the question serverless platforms answered
//! a decade later: what happens when that lifecycle sits on the
//! *critical path of a single function invocation*? A cold start here
//! is not a modelled constant — it is the same emergent `fabric`
//! create + first-boot machinery (package staging, readiness
//! staggers, the calibrated 2.6 % startup-failure retries) compressed
//! by [`pool::CONTAINER_LIFECYCLE_SCALE`] to container scale, ≈3 s.
//!
//! Three layers:
//!
//! - [`trace`] — a deterministic synthetic invocation-trace generator
//!   matching the published Azure Functions 2019 shape (heavy-tailed
//!   inter-arrivals, diurnal classes, Pareto app popularity), plus a
//!   replay adapter for the real dataset's CSV format.
//! - [`policy`] — [`policy::KeepalivePolicy`] implementations: keep
//!   nothing, the fixed window production platforms shipped, and the
//!   Serverless-in-the-Wild hybrid histogram (per-app prewarm +
//!   keepalive from observed inter-arrival quantiles).
//! - [`pool`] — the container pool that turns policy decisions into
//!   real deployments: warm claims, joined in-flight loads, LRU
//!   idle-capacity pressure, crash reaping, and byte-reproducible
//!   decision/eviction logs.
//!
//! [`run::run_faas`] wires them into one cell; the `bench` crate's
//! `faas` campaign sweeps policies × trace shapes × fault plans into
//! the frontier table.

#![warn(missing_docs)]

pub mod policy;
pub mod pool;
pub mod run;
pub mod trace;

pub use policy::{KeepalivePolicy, PolicyKind, PolicyWindows};
pub use pool::{EvictReason, Pool, PoolConfig, CONTAINER_LIFECYCLE_SCALE};
pub use run::{run_faas, FaasConfig, FaasResult};
pub use trace::{AppClass, AppSpec, FaasTrace, Invocation, TraceShape};
