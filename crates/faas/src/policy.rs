//! Keepalive policies: what happens to a container when its invocation
//! finishes.
//!
//! A policy sees only per-app arrival history (inter-invocation times)
//! and answers one question at idle time: how long to keep the loaded
//! container resident, and whether to unload now and *prewarm* shortly
//! before the predicted next arrival instead. Policies are pure state
//! machines over their observations — no RNG, no clock reads — so the
//! pool's decision log is byte-reproducible from the trace alone.
//!
//! Three policies span the frontier:
//!
//! * [`NoKeepalive`] — unload at idle. Minimum memory, every
//!   invocation a cold start.
//! * [`FixedWindow`] — keep resident for a flat window (Azure's
//!   classic 20 minutes). Maximum warmth, maximum idle memory.
//! * [`HybridHistogram`] — *Serverless in the Wild* (Shahrad et al.,
//!   ATC'20): a per-app inter-invocation-time histogram picks a
//!   prewarm instant just before the 5th-percentile gap and a
//!   keepalive covering the 99th, falling back to the fixed window
//!   until the histogram has signal.

use simlab::Log2Hist;

/// Azure's classic fixed keepalive window, seconds (20 minutes).
pub const FIXED_WINDOW_S: f64 = 1200.0;
/// Hard cap on any keepalive window, seconds (4 hours — the hybrid
/// histogram's tracked range in the paper).
pub const MAX_KEEPALIVE_S: f64 = 4.0 * 3600.0;
/// Gaps beyond this are out-of-bounds for the hybrid histogram.
pub const OOB_LIMIT_S: f64 = 4.0 * 3600.0;
/// Minimum histogram samples before the hybrid policy trusts it. Low
/// on purpose: sparse apps are where the histogram pays, and they only
/// produce a handful of gaps per horizon.
pub const MIN_SAMPLES: u64 = 4;
/// Out-of-bounds fraction above which the hybrid policy falls back.
pub const MAX_OOB_FRAC: f64 = 0.5;
/// Head margin: prewarm at 85 % of the 5th-percentile gap.
pub const PREWARM_MARGIN: f64 = 0.85;
/// Tail margin: keep alive through 115 % of the 99th-percentile gap.
pub const KEEPALIVE_MARGIN: f64 = 1.15;
/// Shortest gap worth unloading into: below this the prewarm would
/// chase the unload (a container load is ≈3 s plus teardown) and the
/// policy keeps the container loaded instead.
pub const MIN_PREWARM_S: f64 = 15.0;

/// What the policy wants done with a container going idle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyWindows {
    /// Keep the container resident this long once it is (re)loaded,
    /// seconds. `0.0` unloads immediately.
    pub keepalive_s: f64,
    /// `Some(gap)`: unload now and start a fresh load `gap` seconds
    /// after the triggering arrival (the keepalive window then runs
    /// from the prewarmed load). `None`: plain keepalive from idle.
    pub prewarm_s: Option<f64>,
}

/// A keepalive policy: observes each app's arrivals, dictates windows.
pub trait KeepalivePolicy {
    /// Stable short name (CSV column values, decision log).
    fn name(&self) -> &'static str;
    /// One arrival for `app`; `iat_s` is the gap since the app's
    /// previous arrival (`None` on its first).
    fn observe_arrival(&mut self, app: usize, iat_s: Option<f64>);
    /// Current windows for `app` (consulted when a container idles).
    fn windows(&self, app: usize) -> PolicyWindows;
}

/// Which policy a cell runs (the campaign sweeps all of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Unload at idle: the cold-start-maximal baseline.
    NoKeepalive,
    /// Flat window ([`FIXED_WINDOW_S`]).
    FixedWindow,
    /// Histogram-driven prewarm + keepalive.
    Hybrid,
}

impl PolicyKind {
    /// All policies, frontier order (coldest first).
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::NoKeepalive,
        PolicyKind::FixedWindow,
        PolicyKind::Hybrid,
    ];

    /// Stable short name (CSV column values).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::NoKeepalive => "no_keepalive",
            PolicyKind::FixedWindow => "fixed",
            PolicyKind::Hybrid => "hybrid",
        }
    }

    /// Instantiate for a population of `napps` apps.
    pub fn build(self, napps: usize) -> Box<dyn KeepalivePolicy> {
        match self {
            PolicyKind::NoKeepalive => Box::new(NoKeepalive),
            PolicyKind::FixedWindow => Box::new(FixedWindow {
                window_s: FIXED_WINDOW_S,
            }),
            PolicyKind::Hybrid => Box::new(HybridHistogram::new(napps)),
        }
    }
}

/// Unload every container the moment it goes idle.
pub struct NoKeepalive;

impl KeepalivePolicy for NoKeepalive {
    fn name(&self) -> &'static str {
        "no_keepalive"
    }
    fn observe_arrival(&mut self, _app: usize, _iat_s: Option<f64>) {}
    fn windows(&self, _app: usize) -> PolicyWindows {
        PolicyWindows {
            keepalive_s: 0.0,
            prewarm_s: None,
        }
    }
}

/// Keep every idle container resident for a flat window.
pub struct FixedWindow {
    /// The window, seconds.
    pub window_s: f64,
}

impl KeepalivePolicy for FixedWindow {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn observe_arrival(&mut self, _app: usize, _iat_s: Option<f64>) {}
    fn windows(&self, _app: usize) -> PolicyWindows {
        PolicyWindows {
            keepalive_s: self.window_s,
            prewarm_s: None,
        }
    }
}

/// Per-app state of the hybrid policy.
struct AppHist {
    hist: Log2Hist,
    samples: u64,
    oob: u64,
}

/// The *Serverless in the Wild* hybrid histogram policy.
///
/// Each app keeps a log₂ histogram of its inter-invocation times
/// (exactly the mergeable [`simlab::Log2Hist`] the campaigns already
/// aggregate with). With enough in-bounds samples the policy unloads
/// idle containers and schedules a prewarm at [`PREWARM_MARGIN`] × the
/// histogram's 5th-percentile bucket's lower edge, keeping the
/// prewarmed container until [`KEEPALIVE_MARGIN`] × the 99th
/// percentile bucket's upper edge — conservative edges on both sides,
/// so an early arrival still finds the container loading rather than
/// absent and a late one still finds it resident. Without a prewarm
/// the informed keepalive is additionally capped at the fixed window
/// (the histogram tightens the platform default, never out-spends it).
/// Too few samples, or a mostly out-of-bounds gap pattern, falls back
/// to the fixed window.
pub struct HybridHistogram {
    apps: Vec<AppHist>,
    /// Window used while an app's histogram lacks signal.
    pub fallback_s: f64,
}

impl HybridHistogram {
    /// Fresh policy for `napps` apps.
    pub fn new(napps: usize) -> Self {
        HybridHistogram {
            apps: (0..napps)
                .map(|_| AppHist {
                    hist: Log2Hist::new(),
                    samples: 0,
                    oob: 0,
                })
                .collect(),
            fallback_s: FIXED_WINDOW_S,
        }
    }

    fn informed_windows(&self, app: usize) -> Option<PolicyWindows> {
        let h = &self.apps[app];
        if h.samples < MIN_SAMPLES {
            return None;
        }
        if h.oob as f64 > MAX_OOB_FRAC * h.samples as f64 {
            return None;
        }
        let (head_lo, _) = h.hist.quantile_edges(0.05);
        let (_, tail_hi) = h.hist.quantile_edges(0.99);
        if tail_hi <= 0.0 {
            return None;
        }
        let prewarm = PREWARM_MARGIN * head_lo;
        let keep_until = (KEEPALIVE_MARGIN * tail_hi).min(MAX_KEEPALIVE_S);
        if prewarm >= MIN_PREWARM_S && prewarm < keep_until {
            Some(PolicyWindows {
                keepalive_s: keep_until - prewarm,
                prewarm_s: Some(prewarm),
            })
        } else {
            // Without a prewarm the histogram only *tightens* the
            // platform window: keeping a container longer than the
            // fixed baseline would spend more memory than the policy
            // it is trying to beat. Gaps beyond the window are covered
            // by prewarming (above), not by holding memory.
            Some(PolicyWindows {
                keepalive_s: keep_until.min(self.fallback_s),
                prewarm_s: None,
            })
        }
    }
}

impl KeepalivePolicy for HybridHistogram {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn observe_arrival(&mut self, app: usize, iat_s: Option<f64>) {
        let Some(iat) = iat_s else { return };
        let h = &mut self.apps[app];
        h.samples += 1;
        if iat > OOB_LIMIT_S {
            h.oob += 1;
        } else {
            h.hist.push(iat);
        }
    }

    fn windows(&self, app: usize) -> PolicyWindows {
        match self.informed_windows(app) {
            Some(w) => w,
            None => PolicyWindows {
                keepalive_s: self.fallback_s,
                prewarm_s: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_are_constant() {
        let mut none = NoKeepalive;
        let mut fixed = FixedWindow {
            window_s: FIXED_WINDOW_S,
        };
        none.observe_arrival(0, Some(5.0));
        fixed.observe_arrival(0, Some(5.0));
        assert_eq!(none.windows(0).keepalive_s, 0.0);
        assert_eq!(fixed.windows(0).keepalive_s, FIXED_WINDOW_S);
        assert!(none.windows(0).prewarm_s.is_none());
        assert!(fixed.windows(0).prewarm_s.is_none());
    }

    #[test]
    fn hybrid_falls_back_until_it_has_signal() {
        let mut h = HybridHistogram::new(2);
        assert_eq!(h.windows(0).keepalive_s, FIXED_WINDOW_S);
        for _ in 0..(MIN_SAMPLES - 1) {
            h.observe_arrival(0, Some(100.0));
        }
        assert_eq!(h.windows(0).keepalive_s, FIXED_WINDOW_S, "one short");
        h.observe_arrival(0, Some(100.0));
        assert_ne!(h.windows(0).keepalive_s, FIXED_WINDOW_S, "informed now");
        // The untouched app is unaffected.
        assert_eq!(h.windows(1).keepalive_s, FIXED_WINDOW_S);
    }

    #[test]
    fn hybrid_prewarms_on_long_regular_gaps() {
        // Gaps concentrated near 600 s: prewarm ≈ 0.85 × the p05
        // bucket's lower edge (512 s binade → 435.2 s), keepalive
        // covers through 1.15 × the p99 bucket's upper edge.
        let mut h = HybridHistogram::new(1);
        for _ in 0..50 {
            h.observe_arrival(0, Some(600.0));
        }
        let w = h.windows(0);
        let pw = w.prewarm_s.expect("regular long gaps must prewarm");
        assert!((pw - 0.85 * 512.0).abs() < 1e-9, "prewarm {pw}");
        let covered = pw + w.keepalive_s;
        assert!(covered >= 1024.0, "must cover the gap bucket: {covered}");
        assert!(covered <= MAX_KEEPALIVE_S * KEEPALIVE_MARGIN);
    }

    #[test]
    fn hybrid_keeps_short_gap_apps_loaded() {
        // Gaps of ~20 s: prewarm target under MIN_PREWARM_S, so the
        // policy keeps the container loaded with a tight window
        // instead of unloading.
        let mut h = HybridHistogram::new(1);
        for _ in 0..50 {
            h.observe_arrival(0, Some(20.0));
        }
        let w = h.windows(0);
        assert!(w.prewarm_s.is_none());
        assert!(
            w.keepalive_s < FIXED_WINDOW_S / 10.0,
            "tight window: {}",
            w.keepalive_s
        );
    }

    #[test]
    fn hybrid_mostly_oob_falls_back() {
        let mut h = HybridHistogram::new(1);
        for i in 0..20 {
            let gap = if i % 2 == 0 { OOB_LIMIT_S * 2.0 } else { 60.0 };
            h.observe_arrival(0, Some(gap));
        }
        // 50 % OOB is the boundary; push one more OOB over it.
        h.observe_arrival(0, Some(OOB_LIMIT_S * 2.0));
        assert_eq!(h.windows(0).keepalive_s, FIXED_WINDOW_S);
        assert!(h.windows(0).prewarm_s.is_none());
    }

    #[test]
    fn first_arrival_has_no_gap_to_observe() {
        let mut h = HybridHistogram::new(1);
        h.observe_arrival(0, None);
        assert_eq!(h.apps[0].samples, 0);
    }
}
