//! # cloudbench — the paper's measurement harness
//!
//! This crate is the reproduction's *primary contribution* layer: the
//! methodology of *Early observations on the performance of Windows
//! Azure* (HPDC'10) packaged as a reusable library. It drives the
//! simulated platform (`azstore`, `fabric`, `dcnet`) through exactly the
//! protocols the paper describes and aggregates the same statistics the
//! paper plots:
//!
//! * [`experiments::blob`] — Fig 1 (blob bandwidth vs concurrency)
//! * [`experiments::table`] — Fig 2 (table ops vs concurrency)
//! * [`experiments::queue`] — Fig 3 (queue ops vs concurrency)
//! * [`experiments::vm`] — Table 1 (VM lifecycle campaign)
//! * [`experiments::tcp`] — Figs 4 & 5 (TCP latency / bandwidth)
//!
//! Sweep points are independent simulations parallelized across OS
//! threads ([`runner::parallel_sweep`]); the paper's published numbers
//! live in [`anchors`] so results can be compared programmatically.
//!
//! ## Example
//! ```
//! use cloudbench::experiments::blob;
//!
//! // A scaled-down Fig 1 sweep (full scale: BlobScalingConfig::default()).
//! let mut cfg = blob::BlobScalingConfig::quick();
//! cfg.client_counts = vec![1, 32];
//! let result = blob::run(&cfg);
//! let one = result.at(1).unwrap().download_per_client_mbps;
//! let many = result.at(32).unwrap().download_per_client_mbps;
//! assert!(many < one); // concurrency costs per-client bandwidth
//! ```

#![warn(missing_docs)]

pub mod anchors;
pub mod experiments;
pub mod runner;

pub use anchors::Anchor;
pub use runner::{parallel_sweep, CLIENT_COUNTS};
