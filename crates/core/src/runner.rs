//! Sweep execution machinery.
//!
//! Each sweep point (a client count, a repeated run) is an independent
//! simulation, so points parallelize perfectly across OS threads — the
//! data-parallel idiom the HPC guides prescribe, implemented with scoped
//! threads plus an mpsc channel to stream results back as they
//! complete (a `Sim` itself is single-threaded and `!Send`; only the
//! *results* cross threads).

use std::sync::mpsc;

/// The concurrency ladder used throughout the paper: "For all our tests
/// we use from 1 to 192 concurrent clients" (§3).
pub const CLIENT_COUNTS: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 192];

/// Run `f` over `points`, one OS thread per point (points are whole
/// simulations; counts are small). Results come back in input order.
pub fn parallel_sweep<T, R, F>(points: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = points.len();
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for (i, p) in points.into_iter().enumerate() {
            let tx = tx.clone();
            let f = &f;
            scope.spawn(move || {
                let r = f(p);
                // Receiver outlives all senders inside the scope.
                let _ = tx.send((i, r));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((i, r)) = rx.recv() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("worker thread dropped its result"))
            .collect()
    })
}

/// Mean of a slice (0 for empty) — tiny helper shared by experiments.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_input_order() {
        let out = parallel_sweep(vec![5u64, 1, 4, 2], |x| {
            // Stagger so completion order differs from input order.
            std::thread::sleep(std::time::Duration::from_millis(x * 3));
            x * 10
        });
        assert_eq!(out, vec![50, 10, 40, 20]);
    }

    #[test]
    fn sweep_handles_empty_and_single() {
        let empty: Vec<u32> = parallel_sweep(Vec::<u32>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_sweep(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn client_ladder_matches_paper() {
        assert_eq!(CLIENT_COUNTS.first(), Some(&1));
        assert_eq!(CLIENT_COUNTS.last(), Some(&192));
        assert!(CLIENT_COUNTS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
