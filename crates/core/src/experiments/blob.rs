//! Experiment FIG1 — blob download/upload bandwidth vs concurrency
//! (paper §3.1, Fig 1).
//!
//! Protocol, following the paper: "we start a number of worker roles
//! (1–192) that download the same 1 GB blob simultaneously from the blob
//! storage"; for upload, "the worker role instances will upload the same
//! 1 GB data to the same container in the blob storage, using different
//! blob name."

use std::cell::RefCell;
use std::rc::Rc;

use azstore::StorageStamp;
use simcore::report::{num, AsciiTable};
use simlab::CellCtx;

use crate::runner::{mean, parallel_sweep, CLIENT_COUNTS};

/// Configuration for the blob scaling experiment.
#[derive(Debug, Clone)]
pub struct BlobScalingConfig {
    /// Blob size in bytes (paper: 1 GB).
    pub blob_bytes: f64,
    /// Client counts to sweep.
    pub client_counts: Vec<usize>,
    /// Repeated runs per point ("we run the same test three times each
    /// day"); means are taken across runs.
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for BlobScalingConfig {
    fn default() -> Self {
        BlobScalingConfig {
            blob_bytes: 1.0e9,
            client_counts: CLIENT_COUNTS.to_vec(),
            runs: 3,
            seed: 0xF161,
        }
    }
}

/// A smaller, faster variant for tests and examples.
impl BlobScalingConfig {
    /// Reduced blob size / ladder for quick runs.
    pub fn quick() -> Self {
        BlobScalingConfig {
            blob_bytes: 100.0e6,
            client_counts: vec![1, 8, 32, 64, 128, 192],
            runs: 1,
            seed: 0xF161,
        }
    }
}

/// One Fig 1 sweep point.
#[derive(Debug, Clone, Copy)]
pub struct BlobScalingRow {
    /// Concurrent clients.
    pub clients: usize,
    /// Mean per-client download bandwidth, MB/s.
    pub download_per_client_mbps: f64,
    /// Aggregate (service-side) download throughput, MB/s.
    pub download_aggregate_mbps: f64,
    /// Mean per-client upload bandwidth, MB/s.
    pub upload_per_client_mbps: f64,
    /// Aggregate upload throughput, MB/s.
    pub upload_aggregate_mbps: f64,
}

/// Full Fig 1 result.
#[derive(Debug, Clone)]
pub struct BlobScalingResult {
    /// One row per swept client count.
    pub rows: Vec<BlobScalingRow>,
}

impl BlobScalingResult {
    /// Row for an exact client count, if swept.
    pub fn at(&self, clients: usize) -> Option<&BlobScalingRow> {
        self.rows.iter().find(|r| r.clients == clients)
    }

    /// Peak aggregate download throughput `(clients, MB/s)`.
    pub fn download_peak(&self) -> (usize, f64) {
        self.rows
            .iter()
            .map(|r| (r.clients, r.download_aggregate_mbps))
            .fold(
                (0, 0.0),
                |best, cur| if cur.1 > best.1 { cur } else { best },
            )
    }

    /// Render the Fig 1 data as a table.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "clients",
            "dl MB/s per client",
            "dl aggregate MB/s",
            "ul MB/s per client",
            "ul aggregate MB/s",
        ])
        .with_title("Fig 1 — average per-client blob bandwidth vs concurrency");
        for r in &self.rows {
            t.row(vec![
                r.clients.to_string(),
                num(r.download_per_client_mbps, 2),
                num(r.download_aggregate_mbps, 1),
                num(r.upload_per_client_mbps, 2),
                num(r.upload_aggregate_mbps, 1),
            ]);
        }
        t.render()
    }
}

fn one_download_run(clients: usize, bytes: f64, seed: u64, ctx: &CellCtx) -> (f64, f64) {
    ctx.with_sim(seed, |sim| {
        let stamp = StorageStamp::standalone(sim, super::stamp_config(ctx));
        stamp.blob_service().seed("bench", "theblob", bytes);
        let rates: Rc<RefCell<Vec<f64>>> = Rc::default();
        let t0 = sim.now();
        for _ in 0..clients {
            let c = stamp.attach_small_client();
            let r = rates.clone();
            sim.spawn(async move {
                if let Ok(dl) = c.blob.get("bench", "theblob").await {
                    r.borrow_mut().push(dl.rate_bps() / 1.0e6);
                }
            });
        }
        sim.run();
        let elapsed = (sim.now() - t0).as_secs_f64();
        let per_client = mean(&rates.borrow());
        let aggregate = clients as f64 * bytes / 1.0e6 / elapsed;
        (per_client, aggregate)
    })
}

fn one_upload_run(clients: usize, bytes: f64, seed: u64, ctx: &CellCtx) -> (f64, f64) {
    ctx.with_sim(seed, |sim| {
        let stamp = StorageStamp::standalone(sim, super::stamp_config(ctx));
        let rates: Rc<RefCell<Vec<f64>>> = Rc::default();
        let t0 = sim.now();
        for i in 0..clients {
            let c = stamp.attach_small_client();
            let r = rates.clone();
            sim.spawn(async move {
                let name = format!("upload-{i}");
                if let Ok(ul) = c.blob.put("bench", &name, bytes).await {
                    r.borrow_mut()
                        .push(ul.bytes / ul.elapsed.as_secs_f64() / 1.0e6);
                }
            });
        }
        sim.run();
        let elapsed = (sim.now() - t0).as_secs_f64();
        let per_client = mean(&rates.borrow());
        let aggregate = clients as f64 * bytes / 1.0e6 / elapsed;
        (per_client, aggregate)
    })
}

/// Run one sweep point (all repeated runs of one client count) — the
/// per-cell entry the sharded campaign runner drives.
pub fn run_point(cfg: &BlobScalingConfig, clients: usize, ctx: &CellCtx) -> BlobScalingRow {
    let mut dl_pc = Vec::with_capacity(cfg.runs);
    let mut dl_ag = Vec::with_capacity(cfg.runs);
    let mut ul_pc = Vec::with_capacity(cfg.runs);
    let mut ul_ag = Vec::with_capacity(cfg.runs);
    for run in 0..cfg.runs {
        let seed = cfg.seed ^ ((clients as u64) << 16) ^ run as u64;
        let (pc, ag) = one_download_run(clients, cfg.blob_bytes, seed, ctx);
        dl_pc.push(pc);
        dl_ag.push(ag);
        let (pc, ag) = one_upload_run(clients, cfg.blob_bytes, seed ^ 0xABCD, ctx);
        ul_pc.push(pc);
        ul_ag.push(ag);
    }
    BlobScalingRow {
        clients,
        download_per_client_mbps: mean(&dl_pc),
        download_aggregate_mbps: mean(&dl_ag),
        upload_per_client_mbps: mean(&ul_pc),
        upload_aggregate_mbps: mean(&ul_ag),
    }
}

/// Run the full Fig 1 experiment.
pub fn run(cfg: &BlobScalingConfig) -> BlobScalingResult {
    let rows = parallel_sweep(cfg.client_counts.clone(), |clients| {
        run_point(cfg, clients, &CellCtx::detached())
    });
    BlobScalingResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_result() -> BlobScalingResult {
        run(&BlobScalingConfig {
            blob_bytes: 1.0e9,
            client_counts: vec![1, 32, 64, 128, 192],
            runs: 1,
            seed: 42,
        })
    }

    /// The headline Fig 1 anchors, end to end through the simulator.
    #[test]
    fn fig1_anchor_points_hold() {
        let r = full_result();
        let one = r.at(1).unwrap();
        let thirty_two = r.at(32).unwrap();
        let at128 = r.at(128).unwrap();
        let at192 = r.at(192).unwrap();

        // 1 client ≈ 13 MB/s (the 100 Mbit per-VM allocation).
        assert!(
            (11.0..13.5).contains(&one.download_per_client_mbps),
            "1-client dl = {}",
            one.download_per_client_mbps
        );
        // 32 clients ≈ half the single-client bandwidth.
        let ratio = thirty_two.download_per_client_mbps / one.download_per_client_mbps;
        assert!((0.40..0.62).contains(&ratio), "32-client ratio = {ratio}");
        // Peak aggregate ≈ 393 MB/s at 128 clients.
        assert!(
            (330.0..430.0).contains(&at128.download_aggregate_mbps),
            "128-client aggregate = {}",
            at128.download_aggregate_mbps
        );
        // 192 aggregate below the 128 peak (the observed dip).
        assert!(
            at192.download_aggregate_mbps < at128.download_aggregate_mbps,
            "192 {} !< 128 {}",
            at192.download_aggregate_mbps,
            at128.download_aggregate_mbps
        );
        // Upload anchors: ~1.25 MB/s at 64, ~0.65 at 192, aggregate
        // peaking ~124 MB/s at 192.
        let at64 = r.at(64).unwrap();
        assert!(
            (0.95..1.6).contains(&at64.upload_per_client_mbps),
            "64-client ul = {}",
            at64.upload_per_client_mbps
        );
        assert!(
            (0.5..0.85).contains(&at192.upload_per_client_mbps),
            "192-client ul = {}",
            at192.upload_per_client_mbps
        );
        assert!(
            (100.0..130.0).contains(&at192.upload_aggregate_mbps),
            "192 ul aggregate = {}",
            at192.upload_aggregate_mbps
        );
        // Upload is about half of download per-client at any point.
        assert!(one.upload_per_client_mbps < one.download_per_client_mbps);
    }

    #[test]
    fn per_client_bandwidth_declines_monotonically() {
        let r = full_result();
        for w in r.rows.windows(2) {
            assert!(
                w[1].download_per_client_mbps < w[0].download_per_client_mbps * 1.05,
                "per-client dl should decline: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let r = run(&BlobScalingConfig {
            blob_bytes: 10.0e6,
            client_counts: vec![1, 8],
            runs: 1,
            seed: 1,
        });
        let s = r.render();
        assert!(s.contains("Fig 1"));
        assert_eq!(s.lines().count(), 1 + 2 + 2); // title + header+sep + 2 rows
    }

    #[test]
    fn download_peak_helper() {
        let r = full_result();
        let (at, mbps) = r.download_peak();
        assert_eq!(at, 128, "peak at {at} ({mbps} MB/s)");
    }
}
