//! Experiments FIG4 and FIG5 — instance-to-instance TCP latency and
//! bandwidth (paper §4.2).
//!
//! "We create a deployment with 20 small VMs. Ten of these VMs measure
//! latency, and the rest measure bandwidth. Each virtual machine is
//! paired with another one ... the client measures the roundtrip time of
//! 1 byte of information ... For the bandwidth measurement the client
//! sends 2 GB of information to the server." Both figures are cumulative
//! histograms over ~10 000 measurements.

use std::cell::RefCell;
use std::rc::Rc;

use dcnet::{
    BackgroundConfig, BackgroundTraffic, HostId, LatencyModel, Network, Topology, TopologyConfig,
};
use simcore::prelude::*;
use simcore::report::{num, pct, AsciiTable};
use simlab::CellCtx;

use crate::runner::parallel_sweep;

// ---------------------------------------------------------------------------
// FIG4 — latency
// ---------------------------------------------------------------------------

/// Configuration of the latency measurement.
#[derive(Debug, Clone)]
pub struct TcpLatencyConfig {
    /// VM pairs measuring (paper: 10 VMs = 5..10 pairs; samples matter).
    pub pairs: usize,
    /// RTT samples per pair (total ≈ 10 000 in the paper).
    pub samples_per_pair: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for TcpLatencyConfig {
    fn default() -> Self {
        TcpLatencyConfig {
            pairs: 10,
            samples_per_pair: 1000,
            seed: 0xF164,
        }
    }
}

/// Latency measurement outcome.
#[derive(Debug, Clone)]
pub struct TcpLatencyResult {
    /// All RTT samples, milliseconds.
    pub samples_ms: SampleSet,
}

impl TcpLatencyResult {
    /// Fraction of samples at or below `ms`.
    pub fn fraction_at_most(&self, ms: f64) -> f64 {
        self.samples_ms.fraction_at_most(ms)
    }

    /// Render the cumulative histogram (Fig 4 style).
    pub fn render(&self) -> String {
        let hist = self.samples_ms.histogram(0.0, 10.0, 20);
        let mut t = AsciiTable::new(vec!["latency <= (ms)", "samples", "cumulative"])
            .with_title("Fig 4 — cumulative TCP latency between small VMs");
        for (edge, count, cum) in hist.cumulative() {
            t.row(vec![num(edge, 1), count.to_string(), pct(cum)]);
        }
        t.row(vec![
            "overflow".to_string(),
            hist.overflow().to_string(),
            pct(1.0),
        ]);
        t.render()
    }
}

/// Run the latency measurement. Each pair keeps its placement for all of
/// its samples, as a real deployed pair would. Placements come from the
/// fabric's fault-domain spread ([`LatencyModel::spread_placements`]):
/// a 10-pair deployment realizes the datacenter placement mixture
/// instead of rolling i.i.d. placement dice, which at this sample size
/// misses Fig 4's anchors more often than it hits them.
pub fn run_latency(cfg: &TcpLatencyConfig) -> TcpLatencyResult {
    let model = LatencyModel::default();
    let mut samples = SampleSet::with_capacity(cfg.pairs * cfg.samples_per_pair);
    let placements = model.spread_placements(cfg.pairs);
    for (pair, &placement) in placements.iter().enumerate() {
        for v in latency_pair(cfg, pair, placement) {
            samples.push(v);
        }
    }
    TcpLatencyResult {
        samples_ms: samples,
    }
}

/// One pair's RTT samples (ms) — the per-cell entry the sharded runner
/// drives. The latency model is a closed-form draw with no `Sim` behind
/// it, so it is transparent to fault plans (the paper's Fig 4 ran on a
/// healthy deployment; faults act on the storage and fabric figures).
pub fn latency_pair(
    cfg: &TcpLatencyConfig,
    pair: usize,
    placement: dcnet::PairPlacement,
) -> Vec<f64> {
    let model = LatencyModel::default();
    let mut rng = SimRng::from_seed(cfg.seed ^ ((pair as u64) << 8));
    (0..cfg.samples_per_pair)
        .map(|_| model.sample_rtt(placement, &mut rng).as_millis_f64())
        .collect()
}

// ---------------------------------------------------------------------------
// FIG5 — bandwidth
// ---------------------------------------------------------------------------

/// Configuration of the bandwidth measurement.
#[derive(Debug, Clone)]
pub struct TcpBandwidthConfig {
    /// Deployment rounds (each re-places the pairs and re-rolls the
    /// background state).
    pub rounds: usize,
    /// Concurrent measurement pairs per round (paper: 5).
    pub pairs_per_round: usize,
    /// Sequential transfers per pair per round.
    pub transfers_per_pair: usize,
    /// Transfer size (paper: 2 GB).
    pub bytes: f64,
    /// Probability a pair lands in the same rack (deployment locality).
    pub p_same_rack: f64,
    /// ABLATION: background tenant traffic on/off (off removes Fig 5's
    /// contended lower tail).
    pub background: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for TcpBandwidthConfig {
    fn default() -> Self {
        TcpBandwidthConfig {
            rounds: 24,
            pairs_per_round: 5,
            transfers_per_pair: 4,
            bytes: 2.0e9,
            p_same_rack: 0.55,
            background: true,
            seed: 0xF165,
        }
    }
}

impl TcpBandwidthConfig {
    /// Smaller variant for tests.
    pub fn quick() -> Self {
        TcpBandwidthConfig {
            rounds: 8,
            transfers_per_pair: 2,
            bytes: 1.0e9,
            ..TcpBandwidthConfig::default()
        }
    }
}

/// Bandwidth measurement outcome.
#[derive(Debug, Clone)]
pub struct TcpBandwidthResult {
    /// Per-transfer average rates, MB/s.
    pub samples_mbps: SampleSet,
}

impl TcpBandwidthResult {
    /// Fraction of transfers at or above `mbps`.
    pub fn fraction_at_least(&self, mbps: f64) -> f64 {
        1.0 - self.samples_mbps.fraction_at_most(mbps - 1e-9)
    }

    /// Fraction of transfers at or below `mbps`.
    pub fn fraction_at_most(&self, mbps: f64) -> f64 {
        self.samples_mbps.fraction_at_most(mbps)
    }

    /// Render the cumulative histogram (Fig 5 style).
    pub fn render(&self) -> String {
        let hist = self.samples_mbps.histogram(0.0, 130.0, 13);
        let mut t = AsciiTable::new(vec!["bandwidth <= (MB/s)", "samples", "cumulative"])
            .with_title("Fig 5 — cumulative TCP bandwidth, 2 GB transfers");
        for (edge, count, cum) in hist.cumulative() {
            t.row(vec![num(edge, 0), count.to_string(), pct(cum)]);
        }
        t.render()
    }
}

/// Pick a pair of distinct hosts, same-rack with probability
/// `p_same_rack` (deployments are packed close by the fabric).
fn place_pair(topo: &Topology, p_same: f64, rng: &mut SimRng) -> (HostId, HostId) {
    if rng.chance(p_same) {
        loop {
            let (a, b) = topo.random_pair(rng);
            if topo.same_rack(a, b) {
                return (a, b);
            }
        }
    } else {
        loop {
            let (a, b) = topo.random_pair(rng);
            if !topo.same_rack(a, b) {
                return (a, b);
            }
        }
    }
}

/// One deployment round's transfer rates (MB/s) — the per-cell entry
/// the sharded campaign runner drives.
pub fn bandwidth_round(cfg: &TcpBandwidthConfig, round: usize, ctx: &CellCtx) -> Vec<f64> {
    let seed = cfg.seed ^ ((round as u64) << 12);
    ctx.with_sim(seed, |sim| one_round_on(sim, cfg))
}

fn one_round_on(sim: &Sim, cfg: &TcpBandwidthConfig) -> Vec<f64> {
    let net = Network::new(sim);
    let topo = Rc::new(Topology::build(&net, &TopologyConfig::default()));
    let bg_cfg = if cfg.background {
        BackgroundConfig::default()
    } else {
        // All-calm mixtures: controllers exist but never spawn flows.
        let calm = dcnet::ClassMix {
            p_calm: 1.0,
            p_busy: 0.0,
            calm: (0, 0),
            busy: (0, 0),
            congested: (0, 0),
        };
        BackgroundConfig {
            uplink: calm.clone(),
            nic: calm,
            ..BackgroundConfig::default()
        }
    };
    let bg = BackgroundTraffic::start(&topo, &bg_cfg);
    let rates: Rc<RefCell<Vec<f64>>> = Rc::default();
    let done = Rc::new(std::cell::Cell::new(0usize));
    let total_pairs = cfg.pairs_per_round;
    let mut rng = sim.rng("fig5.placement");
    for p in 0..total_pairs {
        let (src, dst) = place_pair(&topo, cfg.p_same_rack, &mut rng);
        let (t, r, s) = (Rc::clone(&topo), rates.clone(), sim.clone());
        let (b, d) = (bg.clone(), done.clone());
        let (bytes, k) = (cfg.bytes, cfg.transfers_per_pair);
        let mut prng = sim.rng(&format!("fig5.pair{p}"));
        sim.spawn(async move {
            // Let the background generators reach steady state first.
            s.delay(SimDuration::from_secs(15)).await;
            for _ in 0..k {
                // Per-connection TCP efficiency: window/framing losses
                // keep a single stream a bit under line rate.
                let cap = 125.0e6 * prng.range_f64(0.80, 0.95);
                let path = t.path(src, dst);
                let stats = t.network().transfer(&path, bytes, cap).await;
                r.borrow_mut().push(stats.avg_rate() / 1.0e6);
            }
            d.set(d.get() + 1);
            if d.get() == total_pairs {
                b.stop();
            }
        });
    }
    sim.run();
    let out = rates.borrow().clone();
    out
}

/// Run the bandwidth measurement across all rounds (parallelized).
pub fn run_bandwidth(cfg: &TcpBandwidthConfig) -> TcpBandwidthResult {
    let rounds: Vec<usize> = (0..cfg.rounds).collect();
    let all = parallel_sweep(rounds, |round| {
        bandwidth_round(cfg, round, &CellCtx::detached())
    });
    let mut samples = SampleSet::new();
    for chunk in all {
        for v in chunk {
            samples.push(v);
        }
    }
    TcpBandwidthResult {
        samples_mbps: samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig 4's anchors: ≈50 % ≤ 1 ms, ≈75 % ≤ 2 ms.
    #[test]
    fn fig4_anchor_fractions() {
        let r = run_latency(&TcpLatencyConfig {
            pairs: 40, // more pairs to tighten the placement mixture
            samples_per_pair: 500,
            seed: 99,
        });
        let le1 = r.fraction_at_most(1.0);
        let le2 = r.fraction_at_most(2.0);
        assert!((le1 - 0.50).abs() < 0.12, "P(<=1ms) = {le1}");
        assert!((le2 - 0.75).abs() < 0.12, "P(<=2ms) = {le2}");
        assert!(r.samples_ms.max() > 5.0, "no tail");
    }

    /// Fig 5's anchors: ≈50 % of transfers ≥ 90 MB/s, ≈15 % ≤ 30 MB/s.
    #[test]
    fn fig5_anchor_fractions() {
        let r = run_bandwidth(&TcpBandwidthConfig::quick());
        let ge90 = r.fraction_at_least(90.0);
        let le30 = r.fraction_at_most(30.0);
        assert!((0.30..0.72).contains(&ge90), "P(>=90) = {ge90}");
        assert!((0.04..0.33).contains(&le30), "P(<=30) = {le30}");
        // Nothing exceeds GigE.
        assert!(r.samples_mbps.max() <= 125.0 + 1e-6);
    }

    #[test]
    fn latency_render_is_cumulative() {
        let r = run_latency(&TcpLatencyConfig {
            pairs: 4,
            samples_per_pair: 100,
            seed: 7,
        });
        let s = r.render();
        assert!(s.contains("Fig 4"));
        assert!(s.contains("overflow"));
    }

    #[test]
    fn bandwidth_render_has_13_bins() {
        let r = run_bandwidth(&TcpBandwidthConfig {
            rounds: 2,
            pairs_per_round: 2,
            transfers_per_pair: 1,
            bytes: 0.5e9,
            p_same_rack: 0.5,
            background: true,
            seed: 3,
        });
        let s = r.render();
        assert_eq!(s.lines().count(), 1 + 2 + 13);
    }

    #[test]
    fn placement_bias_is_respected() {
        let sim = Sim::new(1);
        let net = Network::new(&sim);
        let topo = Topology::build(&net, &TopologyConfig::default());
        let mut rng = sim.rng("place");
        let n = 2000;
        let same = (0..n)
            .filter(|_| {
                let (a, b) = place_pair(&topo, 0.55, &mut rng);
                topo.same_rack(a, b)
            })
            .count();
        let frac = same as f64 / n as f64;
        assert!((frac - 0.55).abs() < 0.05, "same-rack frac = {frac}");
    }
}
