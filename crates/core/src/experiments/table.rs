//! Experiment FIG2 — table operation scaling (paper §3.2, Fig 2).
//!
//! Protocol, verbatim from the paper: each client **inserts** 500 new
//! entities into the same table partition; then each client **queries**
//! the same entity 500 times by partition + row key; then each client
//! **updates** the same entity 100 times with unconditional updates;
//! finally each client **deletes** the same 500 entities it inserted.
//! Entity sizes 1, 4, 16 and 64 kB; 1–192 concurrent clients.

use std::rc::Rc;

use azstore::{Entity, StorageAccountClient, StorageError, StorageStamp};
use simcore::combinators::join_all;
use simcore::prelude::*;
use simcore::report::{num, AsciiTable};
use simlab::CellCtx;

use crate::runner::{mean, parallel_sweep, CLIENT_COUNTS};

/// The four benchmarked table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableOp {
    /// Insert new entities.
    Insert,
    /// Point query by keys.
    Query,
    /// Unconditional update of one shared entity.
    Update,
    /// Delete own entities.
    Delete,
}

impl TableOp {
    /// All four, in the paper's order.
    pub const ALL: [TableOp; 4] = [
        TableOp::Insert,
        TableOp::Query,
        TableOp::Update,
        TableOp::Delete,
    ];
}

impl std::fmt::Display for TableOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TableOp::Insert => "Insert",
            TableOp::Query => "Query",
            TableOp::Update => "Update",
            TableOp::Delete => "Delete",
        })
    }
}

/// Configuration for the table scaling experiment.
#[derive(Debug, Clone)]
pub struct TableScalingConfig {
    /// Entity size in kB (paper: 1, 4, 16, 64; Fig 2 shows 4).
    pub entity_kb: usize,
    /// Client counts to sweep.
    pub client_counts: Vec<usize>,
    /// Inserts (and deletes) per client (paper: 500).
    pub inserts_per_client: usize,
    /// Point queries per client (paper: 500).
    pub queries_per_client: usize,
    /// Updates per client (paper: 100).
    pub updates_per_client: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for TableScalingConfig {
    fn default() -> Self {
        TableScalingConfig {
            entity_kb: 4,
            client_counts: CLIENT_COUNTS.to_vec(),
            inserts_per_client: 500,
            queries_per_client: 500,
            updates_per_client: 100,
            seed: 0xF162,
        }
    }
}

impl TableScalingConfig {
    /// Reduced op counts for quick runs.
    pub fn quick() -> Self {
        TableScalingConfig {
            entity_kb: 4,
            client_counts: vec![1, 8, 64, 192],
            inserts_per_client: 40,
            queries_per_client: 40,
            updates_per_client: 20,
            seed: 0xF162,
        }
    }
}

/// Stats of one client over one phase.
#[derive(Debug, Clone, Copy, Default)]
struct ClientPhase {
    ok: u64,
    timeouts: u64,
    busy: u64,
    other_err: u64,
    elapsed_s: f64,
}

/// One (op, clients) cell of the Fig 2 result.
#[derive(Debug, Clone, Copy)]
pub struct TableScalingRow {
    /// Operation.
    pub op: TableOp,
    /// Concurrent clients.
    pub clients: usize,
    /// Mean per-client successful ops/s (the Fig 2 y-axis).
    pub per_client_ops_s: f64,
    /// Service-side throughput: total successful ops / phase makespan.
    pub aggregate_ops_s: f64,
    /// Successful operations.
    pub ok: u64,
    /// Operations that surfaced a timeout.
    pub timeouts: u64,
    /// Operations that surfaced ServerBusy after retries.
    pub busy: u64,
    /// Clients that completed the whole phase without a single failure
    /// (the paper's "only 89 clients successfully finished all 500").
    pub clients_fully_ok: usize,
}

/// Full Fig 2 result at one entity size.
#[derive(Debug, Clone)]
pub struct TableScalingResult {
    /// Entity size used, kB.
    pub entity_kb: usize,
    /// All cells (4 ops × swept client counts).
    pub rows: Vec<TableScalingRow>,
}

impl TableScalingResult {
    /// Cell lookup.
    pub fn at(&self, op: TableOp, clients: usize) -> Option<&TableScalingRow> {
        self.rows
            .iter()
            .find(|r| r.op == op && r.clients == clients)
    }

    /// Client count with the highest aggregate throughput for `op`.
    pub fn peak_clients(&self, op: TableOp) -> usize {
        self.rows
            .iter()
            .filter(|r| r.op == op)
            .fold((0usize, 0.0f64), |best, r| {
                if r.aggregate_ops_s > best.1 {
                    (r.clients, r.aggregate_ops_s)
                } else {
                    best
                }
            })
            .0
    }

    /// Render the Fig 2 data as a table.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "op",
            "clients",
            "ops/s per client",
            "aggregate ops/s",
            "ok",
            "timeouts",
            "busy",
            "clients fully ok",
        ])
        .with_title(format!(
            "Fig 2 — average per-client table performance ({} kB entities)",
            self.entity_kb
        ));
        for r in &self.rows {
            t.row(vec![
                r.op.to_string(),
                r.clients.to_string(),
                num(r.per_client_ops_s, 2),
                num(r.aggregate_ops_s, 1),
                r.ok.to_string(),
                r.timeouts.to_string(),
                r.busy.to_string(),
                r.clients_fully_ok.to_string(),
            ]);
        }
        t.render()
    }
}

fn classify(e: &StorageError, cp: &mut ClientPhase) {
    match e {
        StorageError::Timeout => cp.timeouts += 1,
        StorageError::ServerBusy => cp.busy += 1,
        _ => cp.other_err += 1,
    }
}

struct PhaseOutcome {
    rowless: Vec<ClientPhase>,
    makespan_s: f64,
}

fn summarize(op: TableOp, clients: usize, out: &PhaseOutcome) -> TableScalingRow {
    let per_client: Vec<f64> = out
        .rowless
        .iter()
        .map(|c| {
            if c.elapsed_s > 0.0 {
                c.ok as f64 / c.elapsed_s
            } else {
                0.0
            }
        })
        .collect();
    let ok: u64 = out.rowless.iter().map(|c| c.ok).sum();
    TableScalingRow {
        op,
        clients,
        per_client_ops_s: mean(&per_client),
        aggregate_ops_s: if out.makespan_s > 0.0 {
            ok as f64 / out.makespan_s
        } else {
            0.0
        },
        ok,
        timeouts: out.rowless.iter().map(|c| c.timeouts).sum(),
        busy: out.rowless.iter().map(|c| c.busy).sum(),
        clients_fully_ok: out
            .rowless
            .iter()
            .filter(|c| c.timeouts + c.busy + c.other_err == 0)
            .count(),
    }
}

/// Run the whole four-phase protocol for one client count; returns the
/// four rows in paper order. This is the per-cell entry the sharded
/// campaign runner drives.
pub fn run_point(cfg: &TableScalingConfig, clients: usize, ctx: &CellCtx) -> Vec<TableScalingRow> {
    let seed = cfg.seed ^ ((clients as u64) << 20) ^ cfg.entity_kb as u64;
    ctx.with_sim(seed, |sim| one_point_on(sim, cfg, clients, ctx))
}

fn one_point_on(
    sim: &Sim,
    cfg: &TableScalingConfig,
    clients: usize,
    ctx: &CellCtx,
) -> Vec<TableScalingRow> {
    let stamp = StorageStamp::standalone(sim, super::stamp_config(ctx));
    // The shared entity targeted by the query and update phases.
    stamp
        .table_service()
        .seed("bench", Entity::benchmark("part0", "shared", cfg.entity_kb));
    let accounts: Vec<Rc<StorageAccountClient>> = (0..clients)
        .map(|_| Rc::new(stamp.attach_small_client()))
        .collect();

    let kb = cfg.entity_kb;
    let (n_ins, n_q, n_u) = (
        cfg.inserts_per_client,
        cfg.queries_per_client,
        cfg.updates_per_client,
    );

    let s = sim.clone();
    let accounts2 = accounts.clone();
    let coordinator = sim.spawn(async move {
        let mut outcomes = Vec::with_capacity(4);
        // ---- Insert phase ----
        let t0 = s.now();
        let futs: Vec<_> = accounts2
            .iter()
            .enumerate()
            .map(|(ci, acct)| {
                let acct = Rc::clone(acct);
                let s = s.clone();
                async move {
                    let mut cp = ClientPhase::default();
                    let start = s.now();
                    for k in 0..n_ins {
                        let e = Entity::benchmark("part0", &format!("c{ci}-r{k}"), kb);
                        match acct.table.insert("bench", e).await {
                            Ok(()) => cp.ok += 1,
                            // The paper's clients aborted the phase on a
                            // timeout exception ("only 89 clients
                            // successfully finished all 500").
                            Err(e @ StorageError::Timeout) => {
                                classify(&e, &mut cp);
                                break;
                            }
                            Err(e) => classify(&e, &mut cp),
                        }
                    }
                    cp.elapsed_s = (s.now() - start).as_secs_f64();
                    cp
                }
            })
            .collect();
        let rowless = join_all(futs).await;
        outcomes.push(PhaseOutcome {
            rowless,
            makespan_s: (s.now() - t0).as_secs_f64(),
        });

        // ---- Query phase ----
        let t0 = s.now();
        let futs: Vec<_> = accounts2
            .iter()
            .map(|acct| {
                let acct = Rc::clone(acct);
                let s = s.clone();
                async move {
                    let mut cp = ClientPhase::default();
                    let start = s.now();
                    for _ in 0..n_q {
                        match acct.table.query_point("bench", "part0", "shared").await {
                            Ok(_) => cp.ok += 1,
                            Err(e) => classify(&e, &mut cp),
                        }
                    }
                    cp.elapsed_s = (s.now() - start).as_secs_f64();
                    cp
                }
            })
            .collect();
        let rowless = join_all(futs).await;
        outcomes.push(PhaseOutcome {
            rowless,
            makespan_s: (s.now() - t0).as_secs_f64(),
        });

        // ---- Update phase (everyone updates the same entity) ----
        let t0 = s.now();
        let futs: Vec<_> = accounts2
            .iter()
            .map(|acct| {
                let acct = Rc::clone(acct);
                let s = s.clone();
                async move {
                    let mut cp = ClientPhase::default();
                    let start = s.now();
                    for _ in 0..n_u {
                        let e = Entity::benchmark("part0", "shared", kb);
                        match acct.table.update("bench", e).await {
                            Ok(()) => cp.ok += 1,
                            Err(e) => classify(&e, &mut cp),
                        }
                    }
                    cp.elapsed_s = (s.now() - start).as_secs_f64();
                    cp
                }
            })
            .collect();
        let rowless = join_all(futs).await;
        outcomes.push(PhaseOutcome {
            rowless,
            makespan_s: (s.now() - t0).as_secs_f64(),
        });

        // ---- Delete phase (each client deletes its own entities) ----
        let t0 = s.now();
        let futs: Vec<_> = accounts2
            .iter()
            .enumerate()
            .map(|(ci, acct)| {
                let acct = Rc::clone(acct);
                let s = s.clone();
                async move {
                    let mut cp = ClientPhase::default();
                    let start = s.now();
                    for k in 0..n_ins {
                        match acct
                            .table
                            .delete("bench", "part0", &format!("c{ci}-r{k}"))
                            .await
                        {
                            Ok(()) => cp.ok += 1,
                            // An entity whose insert failed leaves a
                            // NotFound here; don't double-count it as an
                            // infrastructure error.
                            Err(StorageError::NotFound) => {}
                            Err(e) => classify(&e, &mut cp),
                        }
                    }
                    cp.elapsed_s = (s.now() - start).as_secs_f64();
                    cp
                }
            })
            .collect();
        let rowless = join_all(futs).await;
        outcomes.push(PhaseOutcome {
            rowless,
            makespan_s: (s.now() - t0).as_secs_f64(),
        });
        outcomes
    });
    sim.run();
    let outcomes = coordinator.try_take().expect("coordinator finished");
    TableOp::ALL
        .iter()
        .zip(outcomes.iter())
        .map(|(op, out)| summarize(*op, clients, out))
        .collect()
}

/// Run the full Fig 2 experiment at the configured entity size.
pub fn run(cfg: &TableScalingConfig) -> TableScalingResult {
    let per_point = parallel_sweep(cfg.client_counts.clone(), |clients| {
        run_point(cfg, clients, &CellCtx::detached())
    });
    TableScalingResult {
        entity_kb: cfg.entity_kb,
        rows: per_point.into_iter().flatten().collect(),
    }
}

/// Run the experiment at several entity sizes (the paper ran 1, 4, 16
/// and 64 kB and reports that "the shape of the performance curves for
/// different entity sizes are similar").
pub fn run_sizes(base: &TableScalingConfig, sizes_kb: &[usize]) -> Vec<TableScalingResult> {
    sizes_kb
        .iter()
        .map(|&kb| {
            run(&TableScalingConfig {
                entity_kb: kb,
                ..base.clone()
            })
        })
        .collect()
}

/// Shape similarity of two per-client curves for `op`: each curve is
/// normalized by its own first point, then 1 − mean absolute relative
/// difference is returned (1.0 = identical shapes, ≤0 = unrelated).
pub fn curve_similarity(a: &TableScalingResult, b: &TableScalingResult, op: TableOp) -> f64 {
    let curve = |r: &TableScalingResult| -> Vec<f64> {
        let mut pts: Vec<(usize, f64)> = r
            .rows
            .iter()
            .filter(|x| x.op == op)
            .map(|x| (x.clients, x.per_client_ops_s))
            .collect();
        pts.sort_by_key(|(c, _)| *c);
        let first = pts.first().map(|(_, v)| *v).unwrap_or(1.0).max(1e-12);
        pts.into_iter().map(|(_, v)| v / first).collect()
    };
    let (ca, cb) = (curve(a), curve(b));
    if ca.len() != cb.len() || ca.is_empty() {
        return 0.0;
    }
    let mean_rel_diff = ca
        .iter()
        .zip(&cb)
        .map(|(x, y)| (x - y).abs() / x.max(*y).max(1e-12))
        .sum::<f64>()
        / ca.len() as f64;
    1.0 - mean_rel_diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_result() -> TableScalingResult {
        run(&TableScalingConfig {
            entity_kb: 4,
            client_counts: vec![1, 8, 32, 128, 192],
            inserts_per_client: 60,
            queries_per_client: 60,
            updates_per_client: 40,
            seed: 7,
        })
    }

    /// Fig 2 shape anchors: per-client rates decline; Insert and Query
    /// aggregates are still rising at 192 (unsaturated); Update peaks
    /// near 8; Delete peaks near 128.
    #[test]
    fn fig2_shape_anchors_hold() {
        let r = shape_result();
        for op in TableOp::ALL {
            let one = r.at(op, 1).unwrap().per_client_ops_s;
            let many = r.at(op, 192).unwrap().per_client_ops_s;
            assert!(
                many < one,
                "{op}: per-client should decline ({one} -> {many})"
            );
        }
        for op in [TableOp::Insert, TableOp::Query] {
            let a128 = r.at(op, 128).unwrap().aggregate_ops_s;
            let a192 = r.at(op, 192).unwrap().aggregate_ops_s;
            assert!(
                a192 > a128 * 0.95,
                "{op}: server should not be saturated at 192 ({a128} -> {a192})"
            );
        }
        let upd_peak = r.peak_clients(TableOp::Update);
        assert!(
            (4..=32).contains(&upd_peak),
            "update peak at {upd_peak} clients (paper: 8)"
        );
        let del_peak = r.peak_clients(TableOp::Delete);
        assert!(
            (64..=192).contains(&del_peak),
            "delete peak at {del_peak} clients (paper: 128)"
        );
        // Update declines drastically: 192-client aggregate well below peak.
        let upd192 = r.at(TableOp::Update, 192).unwrap().aggregate_ops_s;
        let upd_peak_v = r
            .rows
            .iter()
            .filter(|x| x.op == TableOp::Update)
            .map(|x| x.aggregate_ops_s)
            .fold(0.0f64, f64::max);
        assert!(
            upd192 < upd_peak_v * 0.7,
            "update did not decline: {upd192} vs {upd_peak_v}"
        );
    }

    /// §3.2's 64 kB cliff: at 128+ clients a large fraction of clients
    /// fail to finish all inserts with timeout-class errors, while the
    /// 4 kB runs stay clean.
    #[test]
    fn large_entities_at_high_concurrency_hit_timeouts() {
        let big = run(&TableScalingConfig {
            entity_kb: 64,
            client_counts: vec![128],
            inserts_per_client: 60,
            queries_per_client: 0,
            updates_per_client: 0,
            seed: 11,
        });
        let row = big.at(TableOp::Insert, 128).unwrap();
        let failed_clients = 128 - row.clients_fully_ok;
        assert!(
            failed_clients >= 25,
            "expected a large failed-client fraction at 64kB/128, got {failed_clients}"
        );
        assert!(row.timeouts + row.busy > 0);

        let small = run(&TableScalingConfig {
            entity_kb: 4,
            client_counts: vec![128],
            inserts_per_client: 60,
            queries_per_client: 0,
            updates_per_client: 0,
            seed: 11,
        });
        let srow = small.at(TableOp::Insert, 128).unwrap();
        assert!(
            srow.clients_fully_ok >= 120,
            "4 kB inserts should stay clean, fully_ok={}",
            srow.clients_fully_ok
        );
    }

    /// §3.2: "the shape of the performance curves for different entity
    /// sizes are similar" (apart from the 64 kB timeout exceptions).
    #[test]
    fn small_entity_sizes_share_curve_shapes() {
        let base = TableScalingConfig {
            entity_kb: 4,
            client_counts: vec![1, 8, 32, 128],
            inserts_per_client: 40,
            queries_per_client: 40,
            updates_per_client: 0,
            seed: 13,
        };
        let results = run_sizes(&base, &[1, 4, 16]);
        for op in [TableOp::Insert, TableOp::Query] {
            for pair in results.windows(2) {
                let sim = curve_similarity(&pair[0], &pair[1], op);
                assert!(
                    sim > 0.75,
                    "{op}: {} kB vs {} kB shapes diverge (similarity {sim:.2})",
                    pair[0].entity_kb,
                    pair[1].entity_kb
                );
            }
        }
    }

    #[test]
    fn render_mentions_all_ops() {
        let r = run(&TableScalingConfig {
            entity_kb: 4,
            client_counts: vec![2],
            inserts_per_client: 5,
            queries_per_client: 5,
            updates_per_client: 5,
            seed: 3,
        });
        let s = r.render();
        for op in TableOp::ALL {
            assert!(s.contains(&op.to_string()), "missing {op} in render");
        }
    }
}
