//! Experiment FIG3 — queue operation scaling (paper §3.3, Fig 3).
//!
//! "For our queue test we use one queue that is shared among several
//! worker roles – from 1 to 192. We examine the scalability of three
//! queue storage operations: Add, Peek and Receive", with message sizes
//! 512 B–8 kB. Also reproduces the queue-length invariance check
//! (200 k vs 2 M messages).

use std::rc::Rc;

use azstore::{StorageAccountClient, StorageError, StorageStamp};
use simcore::combinators::join_all;
use simcore::prelude::*;
use simcore::report::{num, AsciiTable};
use simlab::CellCtx;

use crate::runner::{mean, parallel_sweep, CLIENT_COUNTS};

/// The three benchmarked queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueOp {
    /// Enqueue a message.
    Add,
    /// Read the head without state change.
    Peek,
    /// Dequeue with a visibility timeout.
    Receive,
}

impl QueueOp {
    /// All three, in the paper's order.
    pub const ALL: [QueueOp; 3] = [QueueOp::Add, QueueOp::Peek, QueueOp::Receive];
}

impl std::fmt::Display for QueueOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QueueOp::Add => "Add",
            QueueOp::Peek => "Peek",
            QueueOp::Receive => "Receive",
        })
    }
}

/// Configuration for the queue scaling experiment.
#[derive(Debug, Clone)]
pub struct QueueScalingConfig {
    /// Message size in bytes (paper: 512, 1 k, 4 k, 8 k; Fig 3 shows 512).
    pub message_bytes: f64,
    /// Client counts to sweep.
    pub client_counts: Vec<usize>,
    /// Operations per client per phase.
    pub ops_per_client: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for QueueScalingConfig {
    fn default() -> Self {
        QueueScalingConfig {
            message_bytes: 512.0,
            client_counts: CLIENT_COUNTS.to_vec(),
            ops_per_client: 200,
            seed: 0xF163,
        }
    }
}

impl QueueScalingConfig {
    /// Reduced op counts for quick runs.
    pub fn quick() -> Self {
        QueueScalingConfig {
            message_bytes: 512.0,
            client_counts: vec![1, 16, 64, 128, 192],
            ops_per_client: 40,
            seed: 0xF163,
        }
    }
}

/// One (op, clients) cell of the Fig 3 result.
#[derive(Debug, Clone, Copy)]
pub struct QueueScalingRow {
    /// Operation.
    pub op: QueueOp,
    /// Concurrent clients.
    pub clients: usize,
    /// Mean per-client successful ops/s.
    pub per_client_ops_s: f64,
    /// Service-side throughput (ops/s).
    pub aggregate_ops_s: f64,
    /// Successful ops.
    pub ok: u64,
    /// Failed ops (timeout/busy/other).
    pub failed: u64,
}

/// Full Fig 3 result at one message size.
#[derive(Debug, Clone)]
pub struct QueueScalingResult {
    /// Message size, bytes.
    pub message_bytes: f64,
    /// All cells.
    pub rows: Vec<QueueScalingRow>,
}

impl QueueScalingResult {
    /// Cell lookup.
    pub fn at(&self, op: QueueOp, clients: usize) -> Option<&QueueScalingRow> {
        self.rows
            .iter()
            .find(|r| r.op == op && r.clients == clients)
    }

    /// Client count with the highest aggregate for `op`.
    pub fn peak_clients(&self, op: QueueOp) -> usize {
        self.rows
            .iter()
            .filter(|r| r.op == op)
            .fold((0usize, 0.0f64), |best, r| {
                if r.aggregate_ops_s > best.1 {
                    (r.clients, r.aggregate_ops_s)
                } else {
                    best
                }
            })
            .0
    }

    /// Render the Fig 3 data as a table.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "op",
            "clients",
            "ops/s per client",
            "aggregate ops/s",
            "ok",
            "failed",
        ])
        .with_title(format!(
            "Fig 3 — average per-client queue performance ({} B messages)",
            self.message_bytes
        ));
        for r in &self.rows {
            t.row(vec![
                r.op.to_string(),
                r.clients.to_string(),
                num(r.per_client_ops_s, 2),
                num(r.aggregate_ops_s, 1),
                r.ok.to_string(),
                r.failed.to_string(),
            ]);
        }
        t.render()
    }
}

/// Run one (op, clients) phase — the per-cell entry the sharded
/// campaign runner drives.
pub fn run_phase(
    cfg: &QueueScalingConfig,
    op: QueueOp,
    clients: usize,
    ctx: &CellCtx,
) -> QueueScalingRow {
    let seed = cfg.seed ^ ((clients as u64) << 24) ^ (op as u64) << 40;
    ctx.with_sim(seed, |sim| one_phase_on(sim, op, clients, cfg, ctx))
}

fn one_phase_on(
    sim: &Sim,
    op: QueueOp,
    clients: usize,
    cfg: &QueueScalingConfig,
    ctx: &CellCtx,
) -> QueueScalingRow {
    let stamp = StorageStamp::standalone(sim, super::stamp_config(ctx));
    // Peek/Receive phases need a populated queue.
    if matches!(op, QueueOp::Peek | QueueOp::Receive) {
        stamp.queue_service().seed_messages(
            "bench",
            clients * cfg.ops_per_client * 2,
            cfg.message_bytes,
        );
    }
    let accounts: Vec<Rc<StorageAccountClient>> = (0..clients)
        .map(|_| Rc::new(stamp.attach_small_client()))
        .collect();
    let s = sim.clone();
    let (msg, k) = (cfg.message_bytes, cfg.ops_per_client);
    let h = sim.spawn(async move {
        let t0 = s.now();
        let futs: Vec<_> = accounts
            .iter()
            .map(|acct| {
                let acct = Rc::clone(acct);
                let s = s.clone();
                async move {
                    let mut ok = 0u64;
                    let mut failed = 0u64;
                    let start = s.now();
                    for i in 0..k {
                        let res: Result<(), StorageError> = match op {
                            QueueOp::Add => acct
                                .queue
                                .add("bench", format!("m{i}"), msg)
                                .await
                                .map(|_| ()),
                            QueueOp::Peek => acct.queue.peek("bench").await.map(|_| ()),
                            QueueOp::Receive => {
                                acct.queue.receive_default("bench").await.map(|_| ())
                            }
                        };
                        match res {
                            Ok(()) => ok += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    (ok, failed, (s.now() - start).as_secs_f64())
                }
            })
            .collect();
        let per_client = join_all(futs).await;
        let makespan = (s.now() - t0).as_secs_f64();
        (per_client, makespan)
    });
    sim.run();
    let (per_client, makespan) = h.try_take().expect("phase finished");
    let rates: Vec<f64> = per_client
        .iter()
        .map(|(ok, _, el)| if *el > 0.0 { *ok as f64 / el } else { 0.0 })
        .collect();
    let ok: u64 = per_client.iter().map(|(ok, _, _)| ok).sum();
    let failed: u64 = per_client.iter().map(|(_, f, _)| f).sum();
    QueueScalingRow {
        op,
        clients,
        per_client_ops_s: mean(&rates),
        aggregate_ops_s: if makespan > 0.0 {
            ok as f64 / makespan
        } else {
            0.0
        },
        ok,
        failed,
    }
}

/// Run the full Fig 3 experiment.
pub fn run(cfg: &QueueScalingConfig) -> QueueScalingResult {
    let points: Vec<(QueueOp, usize)> = QueueOp::ALL
        .iter()
        .flat_map(|op| cfg.client_counts.iter().map(move |c| (*op, *c)))
        .collect();
    let rows = parallel_sweep(points, |(op, clients)| {
        run_phase(cfg, op, clients, &CellCtx::detached())
    });
    QueueScalingResult {
        message_bytes: cfg.message_bytes,
        rows,
    }
}

/// Run the experiment at several message sizes (the paper ran 512 B,
/// 1, 4 and 8 kB: "the shape of the performance curve for each message
/// size is very similar").
pub fn run_sizes(base: &QueueScalingConfig, sizes_bytes: &[f64]) -> Vec<QueueScalingResult> {
    sizes_bytes
        .iter()
        .map(|&b| {
            run(&QueueScalingConfig {
                message_bytes: b,
                ..base.clone()
            })
        })
        .collect()
}

/// Shape similarity of two per-client curves for `op` (1.0 = identical
/// after normalizing by each curve's first point).
pub fn curve_similarity(a: &QueueScalingResult, b: &QueueScalingResult, op: QueueOp) -> f64 {
    let curve = |r: &QueueScalingResult| -> Vec<f64> {
        let mut pts: Vec<(usize, f64)> = r
            .rows
            .iter()
            .filter(|x| x.op == op)
            .map(|x| (x.clients, x.per_client_ops_s))
            .collect();
        pts.sort_by_key(|(c, _)| *c);
        let first = pts.first().map(|(_, v)| *v).unwrap_or(1.0).max(1e-12);
        pts.into_iter().map(|(_, v)| v / first).collect()
    };
    let (ca, cb) = (curve(a), curve(b));
    if ca.len() != cb.len() || ca.is_empty() {
        return 0.0;
    }
    let mean_rel_diff = ca
        .iter()
        .zip(&cb)
        .map(|(x, y)| (x - y).abs() / x.max(*y).max(1e-12))
        .sum::<f64>()
        / ca.len() as f64;
    1.0 - mean_rel_diff
}

/// One arm of the §3.3 queue-length invariance check: the per-client
/// Receive rate (ops/s) on a queue preloaded with `n_msgs` messages.
pub fn length_invariance_at(seed: u64, n_msgs: usize, ctx: &CellCtx) -> f64 {
    ctx.with_sim(seed, |sim| {
        let stamp = StorageStamp::standalone(sim, super::stamp_config(ctx));
        stamp.queue_service().seed_messages("big", n_msgs, 512.0);
        let acct = stamp.attach_small_client();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let t0 = s.now();
            let k = 100u64;
            let mut got = 0u64;
            // A faulted receive doesn't count; cap attempts so a fault
            // plan can't stall the cell forever.
            for _ in 0..k * 10 {
                if got == k {
                    break;
                }
                if let Ok(Some(_)) = acct.queue.receive_default("big").await {
                    got += 1;
                }
            }
            got as f64 / (s.now() - t0).as_secs_f64()
        });
        sim.run();
        h.try_take().unwrap()
    })
}

/// The §3.3 queue-length invariance check: per-client Receive rates on a
/// 200 k-message vs a 2 M-message queue (scaled by `scale` for quick
/// runs). Returns (rate_small, rate_large) in ops/s.
pub fn length_invariance(seed: u64, scale: f64) -> (f64, f64) {
    let ctx = CellCtx::detached();
    (
        length_invariance_at(seed, (200_000.0 * scale) as usize, &ctx),
        length_invariance_at(seed, (2_000_000.0 * scale) as usize, &ctx),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_result() -> QueueScalingResult {
        run(&QueueScalingConfig {
            message_bytes: 512.0,
            client_counts: vec![1, 16, 32, 64, 128, 192],
            ops_per_client: 60,
            seed: 5,
        })
    }

    /// Fig 3 anchors: Add/Receive aggregates peak at 64 clients near
    /// 569/424 ops/s; Peek is far faster and still rising at 192.
    #[test]
    fn fig3_anchor_points_hold() {
        let r = shape_result();
        let add_peak = r.peak_clients(QueueOp::Add);
        assert!(
            (32..=128).contains(&add_peak),
            "add peak at {add_peak} (paper: 64)"
        );
        let recv_peak = r.peak_clients(QueueOp::Receive);
        assert!(
            (32..=128).contains(&recv_peak),
            "receive peak at {recv_peak} (paper: 64)"
        );
        let add64 = r.at(QueueOp::Add, 64).unwrap().aggregate_ops_s;
        assert!(
            (420.0..700.0).contains(&add64),
            "add@64 = {add64} (paper 569)"
        );
        let recv64 = r.at(QueueOp::Receive, 64).unwrap().aggregate_ops_s;
        assert!(
            (300.0..550.0).contains(&recv64),
            "receive@64 = {recv64} (paper 424)"
        );
        // Peek: service-side throughput still rising from 128 to 192.
        let peek128 = r.at(QueueOp::Peek, 128).unwrap().aggregate_ops_s;
        let peek192 = r.at(QueueOp::Peek, 192).unwrap().aggregate_ops_s;
        assert!(
            peek192 > peek128,
            "peek should still rise: {peek128} -> {peek192}"
        );
        assert!(
            (2700.0..4000.0).contains(&peek128),
            "peek@128 = {peek128} (paper 3392)"
        );
        assert!(
            (3100.0..4600.0).contains(&peek192),
            "peek@192 = {peek192} (paper 3878)"
        );
        // Peek beats Add/Receive everywhere (no replication sync).
        for c in [1usize, 64, 192] {
            let p = r.at(QueueOp::Peek, c).unwrap().per_client_ops_s;
            let a = r.at(QueueOp::Add, c).unwrap().per_client_ops_s;
            assert!(p > a, "peek ({p}) !> add ({a}) at {c}");
        }
    }

    /// §6.1's per-writer bands: 15–20 ops/s with ≤16 writers, >10 with
    /// ≤32 writers.
    #[test]
    fn per_writer_bands_hold() {
        let r = shape_result();
        for c in [1usize, 16] {
            let add = r.at(QueueOp::Add, c).unwrap().per_client_ops_s;
            assert!((13.0..22.0).contains(&add), "add per-client at {c} = {add}");
        }
        let add32 = r.at(QueueOp::Add, 32).unwrap().per_client_ops_s;
        assert!(add32 > 10.0, "add per-client at 32 = {add32}");
    }

    #[test]
    fn queue_length_invariance_holds() {
        let (small, large) = length_invariance(3, 0.05);
        let ratio = large / small;
        assert!((0.85..1.18).contains(&ratio), "ratio={ratio}");
    }

    /// §3.3: "the shape of the performance curve for each message size
    /// is very similar".
    #[test]
    fn message_sizes_share_curve_shapes() {
        let base = QueueScalingConfig {
            message_bytes: 512.0,
            client_counts: vec![1, 16, 64, 128],
            ops_per_client: 40,
            seed: 17,
        };
        let results = run_sizes(&base, &[512.0, 1024.0, 4096.0, 8192.0]);
        for op in QueueOp::ALL {
            for pair in results.windows(2) {
                let sim = curve_similarity(&pair[0], &pair[1], op);
                assert!(
                    sim > 0.8,
                    "{op}: {} B vs {} B shapes diverge (similarity {sim:.2})",
                    pair[0].message_bytes,
                    pair[1].message_bytes
                );
            }
        }
    }

    #[test]
    fn render_mentions_all_ops() {
        let r = run(&QueueScalingConfig {
            message_bytes: 512.0,
            client_counts: vec![2],
            ops_per_client: 5,
            seed: 1,
        });
        let s = r.render();
        for op in QueueOp::ALL {
            assert!(s.contains(&op.to_string()));
        }
    }
}
