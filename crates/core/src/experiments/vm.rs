//! Experiment TAB1 — VM lifecycle timing campaign (paper §4.1, Table 1).
//!
//! "For every run of our test program, the test program randomly picks a
//! role type and a VM size, and creates a new Azure cloud deployment ...
//! Then our test program measures the time spent in all five phases —
//! create, run, add, suspend and delete." The paper collected 431
//! successful runs and observed a 2.6 % VM startup failure rate.

use std::collections::HashMap;

use fabric::{
    DeploymentSpec, FabricConfig, FabricController, FabricError, Phase, RoleType, VmSize,
};
use simcore::prelude::*;
use simcore::report::{num, AsciiTable};
use simlab::CellCtx;

/// Configuration of the lifecycle campaign.
#[derive(Debug, Clone)]
pub struct VmLifecycleConfig {
    /// Successful runs to collect (paper: 431).
    pub successful_runs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for VmLifecycleConfig {
    fn default() -> Self {
        VmLifecycleConfig {
            successful_runs: 431,
            seed: 0x7AB1,
        }
    }
}

impl VmLifecycleConfig {
    /// Reduced campaign for quick runs.
    pub fn quick() -> Self {
        VmLifecycleConfig {
            successful_runs: 48,
            seed: 0x7AB1,
        }
    }
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone)]
pub struct VmLifecycleResult {
    /// Per-(role, size, phase) statistics.
    pub cells: HashMap<(RoleType, VmSize, Phase), OnlineStats>,
    /// Successful lifecycle runs collected.
    pub successes: u64,
    /// Start requests that failed (the 2.6 %).
    pub failures: u64,
    /// Total start requests issued (run + add attempts).
    pub start_requests: u64,
}

impl VmLifecycleResult {
    /// Mean of one cell, seconds (`None` if never sampled, e.g. XL Add).
    pub fn mean(&self, role: RoleType, size: VmSize, phase: Phase) -> Option<f64> {
        self.cells.get(&(role, size, phase)).map(|s| s.mean())
    }

    /// Std of one cell, seconds.
    pub fn std(&self, role: RoleType, size: VmSize, phase: Phase) -> Option<f64> {
        self.cells.get(&(role, size, phase)).map(|s| s.std())
    }

    /// Observed startup-failure rate per start request.
    pub fn failure_rate(&self) -> f64 {
        if self.start_requests == 0 {
            0.0
        } else {
            self.failures as f64 / self.start_requests as f64
        }
    }

    /// Render in the paper's Table 1 layout.
    pub fn render(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "Role",
            "Size",
            "Statistic",
            "Create",
            "Run",
            "Add",
            "Suspend",
            "Delete",
        ])
        .with_title("Table 1 — worker/web role VM request time (s)");
        for role in RoleType::ALL {
            for size in VmSize::ALL {
                for (stat_name, f) in [("AVG", true), ("STD", false)] {
                    let cell = |phase: Phase| -> String {
                        match self.cells.get(&(role, size, phase)) {
                            Some(s) if s.count() > 0 => num(if f { s.mean() } else { s.std() }, 0),
                            _ => "N/A".to_string(),
                        }
                    };
                    t.row(vec![
                        role.to_string(),
                        size.to_string(),
                        stat_name.to_string(),
                        cell(Phase::Create),
                        cell(Phase::Run),
                        cell(Phase::Add),
                        cell(Phase::Suspend),
                        cell(Phase::Delete),
                    ]);
                }
            }
        }
        t.render()
    }
}

/// Run the campaign.
pub fn run(cfg: &VmLifecycleConfig) -> VmLifecycleResult {
    run_ctx(cfg, &CellCtx::detached())
}

/// Run the campaign inside a cell context — the sharded campaign
/// runner's entry point (Table 1 is a single sequential campaign, so it
/// stays one cell; the context still routes `--faults` to its thread).
pub fn run_ctx(cfg: &VmLifecycleConfig, ctx: &CellCtx) -> VmLifecycleResult {
    ctx.with_sim(cfg.seed, |sim| run_on(sim, cfg))
}

fn run_on(sim: &Sim, cfg: &VmLifecycleConfig) -> VmLifecycleResult {
    let fc = FabricController::new(sim, FabricConfig::default());
    let mut rng = sim.rng("vm.campaign");
    let target = cfg.successful_runs;
    let s = sim.clone();
    let h = sim.spawn(async move {
        let mut cells: HashMap<(RoleType, VmSize, Phase), OnlineStats> = HashMap::new();
        let mut successes = 0u64;
        let mut failures = 0u64;
        let mut start_requests = 0u64;
        let record = |cells: &mut HashMap<(RoleType, VmSize, Phase), OnlineStats>,
                      role: RoleType,
                      size: VmSize,
                      phase: Phase,
                      secs: f64| {
            cells.entry((role, size, phase)).or_default().push(secs);
        };
        while successes < target as u64 {
            let role = *rng.pick(&RoleType::ALL);
            let size = *rng.pick(&VmSize::ALL);
            let spec = DeploymentSpec::paper_test(role, size);
            let dep = match fc.create_deployment(spec).await {
                Ok(d) => d,
                Err(_) => continue,
            };
            let create_s = dep.create_duration().as_secs_f64();

            start_requests += 1;
            let run = match dep.run().await {
                Ok(r) => r,
                Err(FabricError::StartupFailure) => {
                    failures += 1;
                    let _ = dep.delete().await;
                    continue;
                }
                Err(_) => {
                    let _ = dep.delete().await;
                    continue;
                }
            };

            let add = if size == VmSize::ExtraLarge {
                None
            } else {
                start_requests += 1;
                match dep.add_instances().await {
                    Ok(r) => Some(r),
                    Err(FabricError::StartupFailure) => {
                        failures += 1;
                        let _ = dep.suspend().await;
                        let _ = dep.delete().await;
                        continue;
                    }
                    Err(_) => None,
                }
            };

            let sus = match dep.suspend().await {
                Ok(r) => r,
                Err(_) => continue,
            };
            let del = match dep.delete().await {
                Ok(r) => r,
                Err(_) => continue,
            };

            record(&mut cells, role, size, Phase::Create, create_s);
            record(
                &mut cells,
                role,
                size,
                Phase::Run,
                run.duration.as_secs_f64(),
            );
            if let Some(a) = add {
                record(&mut cells, role, size, Phase::Add, a.duration.as_secs_f64());
            }
            record(
                &mut cells,
                role,
                size,
                Phase::Suspend,
                sus.duration.as_secs_f64(),
            );
            record(
                &mut cells,
                role,
                size,
                Phase::Delete,
                del.duration.as_secs_f64(),
            );
            successes += 1;
            // Space runs out like the real campaign did (and keep the
            // clock moving between deployments).
            s.delay(SimDuration::from_secs(30)).await;
        }
        (cells, successes, failures, start_requests)
    });
    sim.run();
    let (cells, successes, failures, start_requests) = h.try_take().expect("campaign done");
    VmLifecycleResult {
        cells,
        successes,
        failures,
        start_requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::calib::paper_table1;

    fn campaign() -> VmLifecycleResult {
        run(&VmLifecycleConfig {
            successful_runs: 160,
            seed: 0x7AB1,
        })
    }

    #[test]
    fn campaign_collects_requested_successes() {
        let r = campaign();
        assert_eq!(r.successes, 160);
        // Every (role, size) cell eventually sampled.
        for role in RoleType::ALL {
            for size in VmSize::ALL {
                assert!(
                    r.mean(role, size, Phase::Run).is_some(),
                    "{role}/{size} never sampled"
                );
            }
        }
    }

    #[test]
    fn means_track_paper_table1() {
        let r = campaign();
        for role in RoleType::ALL {
            for size in VmSize::ALL {
                let row = paper_table1(role, size);
                let checks: Vec<(Phase, f64)> = vec![
                    (Phase::Create, row.create.avg),
                    (Phase::Run, row.run.avg),
                    (Phase::Suspend, row.suspend.avg),
                ];
                for (phase, target) in checks {
                    if let Some(mean) = r.mean(role, size, phase) {
                        let rel = (mean - target).abs() / target;
                        assert!(
                            rel < 0.25,
                            "{role}/{size}/{phase}: {mean:.0} vs paper {target}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn xl_add_stays_na() {
        let r = campaign();
        for role in RoleType::ALL {
            assert!(r.mean(role, VmSize::ExtraLarge, Phase::Add).is_none());
        }
    }

    #[test]
    fn failure_rate_near_paper() {
        let r = campaign();
        let rate = r.failure_rate();
        // Paper: 2.6 %. Wide band for a 160-run sample.
        assert!((0.005..0.07).contains(&rate), "failure rate = {rate}");
    }

    #[test]
    fn render_has_16_stat_rows_and_na() {
        let r = run(&VmLifecycleConfig {
            successful_runs: 30,
            seed: 1,
        });
        let s = r.render();
        assert!(s.contains("Table 1"));
        assert!(s.contains("N/A"), "XL Add must render as N/A");
        // 8 (role,size) combos x AVG+STD.
        assert_eq!(s.lines().count(), 1 + 2 + 16);
    }
}
