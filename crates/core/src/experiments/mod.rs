//! The paper's experiments, one module per table/figure.
//!
//! | Module | Paper artifact | Regeneration binary |
//! |---|---|---|
//! | [`blob`]  | Fig 1 — blob bandwidth vs concurrency | `fig1` |
//! | [`table`] | Fig 2 — table ops vs concurrency | `fig2` |
//! | [`queue`] | Fig 3 — queue ops vs concurrency | `fig3` |
//! | [`vm`]    | Table 1 — VM lifecycle times | `table1` |
//! | [`tcp`]   | Figs 4 & 5 — TCP latency / bandwidth | `fig4`, `fig5` |
//!
//! (Table 2 and Fig 7 come from the `modis` crate's campaign.)
//!
//! Every experiment exposes two entry points: the serial `run(cfg)`
//! that sweeps all points on its own (the library/test path), and
//! per-cell functions taking a [`simlab::CellCtx`] so the sharded
//! campaign runner can execute individual cells on worker threads with
//! the fault plan and tracer installed there. `run(cfg)` itself goes
//! through a detached context, so both paths execute the exact same
//! event sequences.

use azstore::{FaultProfile, StampConfig};
use simlab::CellCtx;

pub mod blob;
pub mod queue;
pub mod table;
pub mod tcp;
pub mod vm;

/// Stamp configuration for a cell: steady-state storage fault rates
/// come from the cell's fault plan (microbenchmarks are clean without
/// `--faults`, exactly the pre-simlab behaviour). Public so campaigns
/// outside this crate (the `simload` frontier) build their stamps the
/// same way.
pub fn stamp_config(ctx: &CellCtx) -> StampConfig {
    match ctx.fault_plan() {
        Some(plan) => StampConfig {
            faults: FaultProfile::from_plan(plan),
            ..StampConfig::default()
        },
        None => StampConfig::default(),
    }
}
