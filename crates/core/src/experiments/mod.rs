//! The paper's experiments, one module per table/figure.
//!
//! | Module | Paper artifact | Regeneration binary |
//! |---|---|---|
//! | [`blob`]  | Fig 1 — blob bandwidth vs concurrency | `fig1` |
//! | [`table`] | Fig 2 — table ops vs concurrency | `fig2` |
//! | [`queue`] | Fig 3 — queue ops vs concurrency | `fig3` |
//! | [`vm`]    | Table 1 — VM lifecycle times | `table1` |
//! | [`tcp`]   | Figs 4 & 5 — TCP latency / bandwidth | `fig4`, `fig5` |
//!
//! (Table 2 and Fig 7 come from the `modis` crate's campaign.)

pub mod blob;
pub mod queue;
pub mod table;
pub mod tcp;
pub mod vm;
