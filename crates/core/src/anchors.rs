//! The paper's published anchor numbers, as data.
//!
//! Used by EXPERIMENTS.md generation and by the integration tests to
//! report paper-vs-measured side by side. Each constant cites its
//! sentence in the paper.

/// An anchor: a named scalar the paper reports, with the tolerance used
/// when we compare the reproduction against it.
#[derive(Debug, Clone, Copy)]
pub struct Anchor {
    /// Short identifier (also used in EXPERIMENTS.md).
    pub name: &'static str,
    /// The paper's value.
    pub paper: f64,
    /// Relative tolerance for "reproduced" (0.15 = ±15 %).
    pub rel_tol: f64,
}

impl Anchor {
    /// True if `measured` lies within the anchor's tolerance.
    pub fn matches(&self, measured: f64) -> bool {
        if self.paper == 0.0 {
            return measured.abs() < self.rel_tol;
        }
        ((measured - self.paper) / self.paper).abs() <= self.rel_tol
    }

    /// Relative error of a measurement.
    pub fn rel_err(&self, measured: f64) -> f64 {
        if self.paper == 0.0 {
            measured.abs()
        } else {
            (measured - self.paper) / self.paper
        }
    }
}

/// Fig 1: single-client download bandwidth, MB/s ("approximately 13 MB/s").
pub const FIG1_DL_1CLIENT_MBPS: Anchor = Anchor {
    name: "fig1.download.per_client@1",
    paper: 13.0,
    rel_tol: 0.15,
};

/// Fig 1: per-client at 32 clients relative to 1 client ("half").
pub const FIG1_DL_32CLIENT_RATIO: Anchor = Anchor {
    name: "fig1.download.ratio32",
    paper: 0.5,
    rel_tol: 0.25,
};

/// Fig 1: peak aggregate download, MB/s ("393.4 MB/s ... 128 clients").
pub const FIG1_DL_PEAK_MBPS: Anchor = Anchor {
    name: "fig1.download.aggregate@128",
    paper: 393.4,
    rel_tol: 0.12,
};

/// Fig 1: upload per client at 64, MB/s ("∼1.25 MB/s for 64 VMs").
pub const FIG1_UL_64CLIENT_MBPS: Anchor = Anchor {
    name: "fig1.upload.per_client@64",
    paper: 1.25,
    rel_tol: 0.25,
};

/// Fig 1: upload per client at 192, MB/s ("∼0.65 MB/s for 192 VMs").
pub const FIG1_UL_192CLIENT_MBPS: Anchor = Anchor {
    name: "fig1.upload.per_client@192",
    paper: 0.65,
    rel_tol: 0.25,
};

/// Fig 1: peak aggregate upload, MB/s ("124.25 MB/s ... 192 clients").
pub const FIG1_UL_PEAK_MBPS: Anchor = Anchor {
    name: "fig1.upload.aggregate@192",
    paper: 124.25,
    rel_tol: 0.15,
};

/// Fig 3: Add service-side peak, ops/s ("peaks at 64 concurrent clients
/// with 569").
pub const FIG3_ADD_PEAK_OPS: Anchor = Anchor {
    name: "fig3.add.aggregate@64",
    paper: 569.0,
    rel_tol: 0.20,
};

/// Fig 3: Receive service-side peak, ops/s ("... and 424 ops/s").
pub const FIG3_RECV_PEAK_OPS: Anchor = Anchor {
    name: "fig3.receive.aggregate@64",
    paper: 424.0,
    rel_tol: 0.20,
};

/// Fig 3: Peek throughput at 128 clients ("3392 ops/s").
pub const FIG3_PEEK_128_OPS: Anchor = Anchor {
    name: "fig3.peek.aggregate@128",
    paper: 3392.0,
    rel_tol: 0.15,
};

/// Fig 3: Peek throughput at 192 clients ("3878 ops/s").
pub const FIG3_PEEK_192_OPS: Anchor = Anchor {
    name: "fig3.peek.aggregate@192",
    paper: 3878.0,
    rel_tol: 0.15,
};

/// Table 1 (headline): worker small create+run, seconds (~9–10 min).
pub const TAB1_SMALL_WORKER_STARTUP_S: Anchor = Anchor {
    name: "table1.worker.small.create_plus_run",
    paper: 619.0,
    rel_tol: 0.15,
};

/// §4.1: VM startup failure rate ("2.6%").
pub const TAB1_STARTUP_FAILURE_RATE: Anchor = Anchor {
    name: "table1.startup_failure_rate",
    paper: 0.026,
    rel_tol: 0.8,
};

/// Fig 4: fraction of RTTs ≤ 1 ms ("approximately 50% of the time").
pub const FIG4_LE_1MS: Anchor = Anchor {
    name: "fig4.latency.fraction_le_1ms",
    paper: 0.50,
    rel_tol: 0.22,
};

/// Fig 4: fraction of RTTs ≤ 2 ms ("75% of the time").
pub const FIG4_LE_2MS: Anchor = Anchor {
    name: "fig4.latency.fraction_le_2ms",
    paper: 0.75,
    rel_tol: 0.15,
};

/// Fig 5: fraction of transfers ≥ 90 MB/s ("50% of the time").
pub const FIG5_GE_90MBPS: Anchor = Anchor {
    name: "fig5.bandwidth.fraction_ge_90",
    paper: 0.50,
    rel_tol: 0.35,
};

/// Fig 5: fraction ≤ 30 MB/s ("for the lower end of the sample – 15%").
pub const FIG5_LE_30MBPS: Anchor = Anchor {
    name: "fig5.bandwidth.fraction_le_30",
    paper: 0.15,
    rel_tol: 0.8,
};

/// Table 2: overall VM-execution-timeout rate ("5300 task executions ...
/// representing 0.17%").
pub const TAB2_VM_TIMEOUT_RATE: Anchor = Anchor {
    name: "table2.vm_timeout_rate",
    paper: 0.0017,
    rel_tol: 0.9,
};

/// Fig 7: maximum daily timeout fraction ("0% to nearly 16%").
pub const FIG7_MAX_DAILY: Anchor = Anchor {
    name: "fig7.max_daily_timeout_fraction",
    paper: 0.16,
    rel_tol: 0.8,
};

/// Table 2: success rate (65.50 %).
pub const TAB2_SUCCESS_RATE: Anchor = Anchor {
    name: "table2.success_rate",
    paper: 0.655,
    rel_tol: 0.25,
};

/// Frontier: peak open-loop blob GET goodput under the campaign's SLO
/// (MB/s) must land on the closed-loop Fig 1 peak ("393.4 MB/s"): the
/// knee of the offered-load sweep and the concurrency peak probe the
/// same shared egress pipe from opposite directions. Wider tolerance
/// than the Fig 1 anchor — the open-loop estimate rides on a deadline
/// cutoff rather than a steady closed-loop plateau.
pub const FRONTIER_BLOB_CAPACITY_MBPS: Anchor = Anchor {
    name: "frontier.blob.peak_goodput_mbs",
    paper: 393.4,
    rel_tol: 0.2,
};

/// Frontier: peak open-loop table Query goodput under SLO (ops/s).
/// Fig 2 publishes no numeric peak, so the reference is this
/// reproduction's own closed-loop Query aggregate at 192 clients
/// (3923 ops/s from `results/fig2.csv`) — internal cross-validation,
/// not a paper value. The SLO deadline bounds effective concurrency
/// the way the 192-client cap did; the query station's raw drain rate
/// asymptotes well above either.
pub const FRONTIER_TABLE_CAPACITY_OPS: Anchor = Anchor {
    name: "frontier.table.peak_goodput_ops",
    paper: 3923.2,
    rel_tol: 0.2,
};

/// Frontier: peak open-loop queue Add goodput under SLO (ops/s) vs the
/// closed-loop Fig 3 peak ("569 messages per second with 64 clients").
pub const FRONTIER_QUEUE_CAPACITY_OPS: Anchor = Anchor {
    name: "frontier.queue.peak_goodput_ops",
    paper: 569.0,
    rel_tol: 0.2,
};

/// Shedding: goodput gain of the best admission policy over the
/// no-policy baseline at 1.3x offered load under bursty arrivals
/// (clean cells). Not a paper scalar — the paper observed the knee but
/// published no overload-control numbers — this is the robustness bar
/// the shedding campaign holds itself to. Encoded as a capped ratio:
/// the measured value is `min(gain, 4.5)` compared against 3.0 with
/// ±50 % tolerance, so the check passes exactly when the winner
/// preserves ≥ 1.5x the baseline goodput (the "50 % more goodput"
/// acceptance bar) without rewarding unbounded ratios when the
/// baseline collapses toward zero.
pub const SHEDDING_BLOB_GOODPUT_GAIN: Anchor = Anchor {
    name: "shedding.blob.winner_goodput_gain",
    paper: 3.0,
    rel_tol: 0.5,
};

/// Shedding: table Query winner-vs-baseline goodput gain at 1.3x
/// bursty (same capped-ratio encoding as the blob anchor).
pub const SHEDDING_TABLE_GOODPUT_GAIN: Anchor = Anchor {
    name: "shedding.table.winner_goodput_gain",
    paper: 3.0,
    rel_tol: 0.5,
};

/// Shedding: queue Add winner-vs-baseline goodput gain at 1.3x bursty
/// (same capped-ratio encoding as the blob anchor).
pub const SHEDDING_QUEUE_GOODPUT_GAIN: Anchor = Anchor {
    name: "shedding.queue.winner_goodput_gain",
    paper: 3.0,
    rel_tol: 0.5,
};

/// Elastic: predictive-dominance indicator at the campaign's verdict
/// point (queue service, diurnal arrivals, clean cell). Not a paper
/// scalar — the paper measures the ~10-minute scale-out tax (Table 1)
/// but runs no controller against it — this is the bar the elastic
/// campaign holds itself to: the Holt predictive policy must beat the
/// fixed planned-peak baseline on *both* axes of the frontier (fewer
/// SLO violations *and* fewer instance-hours). Encoded as an
/// indicator: measured `1.0` when the double win holds, `0.0`
/// otherwise, compared against 1.0.
pub const ELASTIC_PREDICTIVE_DOMINANCE: Anchor = Anchor {
    name: "elastic.queue.predictive_dominates_fixed",
    paper: 1.0,
    rel_tol: 0.25,
};

/// Elastic: reactive-ordering indicator at the same verdict point.
/// The frontier must be *ordered*: the predictive policy violates no
/// more than utilization-hysteresis, which violates no more than the
/// purely reactive queue-depth policy (each step adds lead time), and
/// queue-depth — the cheapest controller — must at least undercut the
/// fixed baseline's instance-hours. Same indicator encoding as the
/// dominance anchor.
pub const ELASTIC_REACTIVE_ORDERING: Anchor = Anchor {
    name: "elastic.queue.reactive_between",
    paper: 1.0,
    rel_tol: 0.25,
};

/// Elastic: mean order-to-first-ready scale-out lead over every add
/// batch the campaign's controllers ordered, seconds. The reference is
/// the Table 1 expectation for a small worker add — one add boot
/// (≈293 s, the paper's "starting a VM takes around 5 to 10 minutes"
/// regime) plus one exponential readiness stagger (mean ≈183 s) —
/// with a wide tolerance because each cell sees only a handful of
/// batches of an exponential-tailed draw.
pub const ELASTIC_SCALE_OUT_LEAD_S: Anchor = Anchor {
    name: "elastic.scale_out.first_ready_lead_s",
    paper: 476.25,
    rel_tol: 0.35,
};

/// Elastic: mean initial-boot ramp ratio — the observed spread of the
/// initial deployment's instance-ready offsets over its Table 1
/// expectation (per-instance run stagger mean × instance count).
/// ≈1.0 when the emergent lifecycle matches the calibration.
pub const ELASTIC_INITIAL_RAMP_RATIO: Anchor = Anchor {
    name: "elastic.initial_boot.ramp_ratio",
    paper: 1.0,
    rel_tol: 0.25,
};

/// Faas: mean full-cold container start at the verdict point (wild
/// trace, clean cells), seconds. The container lifecycle is the
/// Table 1 small-worker create + first boot compressed by the pool's
/// 1/128 lifecycle scale: (86.25 + 292.75) / 128 ≈ 2.96 s — the
/// paper's ten-minute VM tax re-emerging at container size, squarely
/// in the measured Azure Functions cold-start band of a few seconds.
/// Tolerance covers the per-app package-staging spread and the rare
/// startup-failure retry included in the measured mean.
pub const FAAS_COLD_START_LIFECYCLE_S: Anchor = Anchor {
    name: "faas.cold_start.lifecycle_s",
    paper: 2.961,
    rel_tol: 0.3,
};

/// Faas: hybrid-dominance indicator at the verdict point (wild trace,
/// clean cells). Not a paper scalar — this is the Serverless in the
/// Wild acceptance bar: the histogram-based prewarm+keepalive policy
/// must beat the fixed 20-minute window on at least one frontier axis
/// (cold-start fraction or wasted idle memory-time) without losing on
/// the other by more than 10 %. Indicator encoding: measured `1.0`
/// when it holds, `0.0` otherwise.
pub const FAAS_HYBRID_DOMINANCE: Anchor = Anchor {
    name: "faas.wild.hybrid_dominates_fixed",
    paper: 1.0,
    rel_tol: 0.25,
};

/// Faas: frontier-ordering indicator at the same verdict point. The
/// keepalive frontier must be ordered the way the policy definitions
/// promise: no-keepalive pays the most cold starts while wasting the
/// least idle memory, and the fixed window pays the fewest cold starts
/// while wasting the most — the two ends the hybrid policy is supposed
/// to interpolate between. Same indicator encoding as the dominance
/// anchor.
pub const FAAS_FRONTIER_ORDERING: Anchor = Anchor {
    name: "faas.wild.frontier_ordering",
    paper: 1.0,
    rel_tol: 0.25,
};

/// Geo: aggregate open-loop blob GET peak goodput over the 4-stamp set
/// (MB/s) must land on 4 × the closed-loop Fig 1 peak (4 × 393.4).
/// Under home-stamp affinity each stamp runs at the same operating
/// point as the single-stamp frontier sweep, so the multi-stamp
/// platform must scale the Fig 1 ceiling linearly — the scale-out
/// acceptance bar, at the tight ±10 % the issue demands.
pub const GEO_BLOB_AGGREGATE_MBPS: Anchor = Anchor {
    name: "geo.blob.aggregate_peak_goodput_mbs",
    paper: 1573.6,
    rel_tol: 0.1,
};

/// Geo: aggregate table Query peak goodput over the 4-stamp set
/// (ops/s), 4 × the closed-loop 192-client aggregate the frontier
/// anchor uses (Fig 2 publishes no numeric peak).
pub const GEO_TABLE_AGGREGATE_OPS: Anchor = Anchor {
    name: "geo.table.aggregate_peak_goodput_ops",
    paper: 15692.8,
    rel_tol: 0.1,
};

/// Geo: aggregate queue Add peak goodput over the 4-stamp set (ops/s),
/// 4 × the closed-loop Fig 3 peak ("569 messages per second").
pub const GEO_QUEUE_AGGREGATE_OPS: Anchor = Anchor {
    name: "geo.queue.aggregate_peak_goodput_ops",
    paper: 2276.0,
    rel_tol: 0.1,
};

/// Geo: measured stamp-failover RTO (s) in the mid-window partition
/// cell. Not a paper scalar — the reference is the closed form of the
/// reproduction's own detection/promotion calibration
/// (`azgeo::calib::EXPECTED_RTO_S`): (DOWN_AFTER_MISSES − 1) ×
/// PROBE_INTERVAL_S + PROMOTE_GRACE_S = 9 s, exact because probes tick
/// on a deterministic virtual-time grid and the RTO is charged from
/// the first missed probe.
pub const GEO_FAILOVER_RTO_S: Anchor = Anchor {
    name: "geo.failover.rto_s",
    paper: 9.0,
    rel_tol: 0.05,
};

/// Geo: RPO-positivity indicator for the same failover cell.
/// Asynchronous geo-replication batches mutations every few seconds,
/// so a mid-window stamp partition must abandon a non-empty unshipped
/// tail — lost entries > 0 and a positive lost-tail age at promotion.
/// Indicator encoding: measured `1.0` when both hold, `0.0` otherwise.
pub const GEO_FAILOVER_RPO_POSITIVE: Anchor = Anchor {
    name: "geo.failover.rpo_positive",
    paper: 1.0,
    rel_tol: 0.25,
};

/// Route: strong reads from the home region must be indistinguishable
/// from the PR 9 geo front door — the routing layer adds a policy
/// decision, not a service. Measured as the ratio of the strong/home
/// p50 read latency to the geo-baseline p50 in the same campaign
/// (same service, same load, same seeds); reference 1.0.
pub const ROUTE_STRONG_MATCHES_GEO: Anchor = Anchor {
    name: "route.strong.home_p50_vs_geo",
    paper: 1.0,
    rel_tol: 0.1,
};

/// Route: for a fleet pinned to the secondary's region, eventual reads
/// must be cheaper than strong reads by exactly the region-RTT saving
/// the seed-pure distance matrix promises: rtt(region, primary) −
/// rtt(region, secondary). Measured as (strong mean − eventual mean) /
/// expected saving; reference 1.0 — the routing layer may not invent
/// or eat latency beyond the modelled distances.
pub const ROUTE_EVENTUAL_RTT_DROP: Anchor = Anchor {
    name: "route.eventual.secondary_rtt_drop_ratio",
    paper: 1.0,
    rel_tol: 0.1,
};

/// Route: the bounded-staleness hard invariant. In *every* bounded
/// cell of the campaign (clean and partitioned), the maximum observed
/// staleness over all served reads must be ≤ the cell's τ — the bound
/// is checked against the same applied-watermark lag that is recorded,
/// so a single violation is a routing bug, not noise. Indicator
/// encoding: measured `1.0` when every cell holds, `0.0` otherwise.
pub const ROUTE_BOUNDED_WITHIN_TAU: Anchor = Anchor {
    name: "route.bounded.within_tau",
    paper: 1.0,
    rel_tol: 0.25,
};

/// Route: availability split during the failover window. In the
/// mid-window stamp-partition cell, reads scheduled inside the
/// `azgeo::calib::EXPECTED_RTO_S`-long detection+promotion window
/// must produce zero goodput under strong (the primary is gone) while
/// eventual and bounded keep serving from the surviving secondary —
/// the availability argument for relaxed reads. Indicator encoding:
/// measured `1.0` when both sides hold, `0.0` otherwise.
pub const ROUTE_PARTITION_AVAILABILITY: Anchor = Anchor {
    name: "route.partition.relaxed_reads_survive",
    paper: 1.0,
    rel_tol: 0.25,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_respects_tolerance() {
        assert!(FIG1_DL_1CLIENT_MBPS.matches(12.0));
        assert!(!FIG1_DL_1CLIENT_MBPS.matches(7.0));
        assert!(FIG1_DL_PEAK_MBPS.matches(360.0));
        assert!(!FIG1_DL_PEAK_MBPS.matches(200.0));
    }

    #[test]
    fn rel_err_signs() {
        assert!(FIG4_LE_1MS.rel_err(0.45) < 0.0);
        assert!(FIG4_LE_1MS.rel_err(0.55) > 0.0);
    }

    #[test]
    fn zero_paper_value_uses_absolute() {
        let a = Anchor {
            name: "zero",
            paper: 0.0,
            rel_tol: 0.1,
        };
        assert!(a.matches(0.05));
        assert!(!a.matches(0.2));
    }
}
