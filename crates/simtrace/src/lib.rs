//! # simtrace — deterministic virtual-time tracing & metrics
//!
//! The simulator's layers (`simcore` kernel, `dcnet` network, `azstore`
//! storage, `fabric` controller, `modis` application) can only report
//! end-of-run aggregates on their own. This crate adds the missing
//! *observability*: hierarchical spans stamped with virtual [`SimTime`],
//! monotonic counters and gauges, an in-memory query API (per-span-kind
//! duration percentiles via [`simcore::stats`]), and a Chrome
//! `trace_event` JSON exporter so any run opens in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev).
//!
//! ## Design rules
//!
//! * **Deterministic.** Every stamp is virtual time; buffers are plain
//!   `Vec`s in emission order and maps are `BTreeMap`s, so two runs with
//!   the same seed produce **byte-identical** trace output — the trace
//!   doubles as a regression-diffing artifact.
//! * **Free when off.** Instrumented call sites go through the
//!   thread-local [`active`] tracer; with none installed the cost is one
//!   thread-local read and a branch, and the component-label closure is
//!   never invoked. The hot simulation loop pays ~zero.
//! * **One tracer per simulation thread.** A `Sim` is single-threaded;
//!   [`Tracer::install`] binds the tracer to the current thread and
//!   registers a [`simcore::KernelEvent`] hook for spawn/wake counts.
//!
//! ## Example
//!
//! ```
//! use simcore::prelude::*;
//! use simtrace::{Layer, Tracer};
//!
//! let sim = Sim::new(7);
//! let tracer = Tracer::new(&sim);
//! let _guard = tracer.install(); // thread-local + kernel hook
//!
//! let s = sim.clone();
//! sim.spawn(async move {
//!     // Instrumented model code: a span per request, a child per stage.
//!     let op = simtrace::span(Layer::Store, "table.insert", || "client0".into());
//!     let fe = op.child("frontend", || "station".into());
//!     s.delay(SimDuration::from_millis(2)).await;
//!     fe.end();
//!     simtrace::counter("store.ops", 1);
//!     op.attr("outcome", "ok");
//! });
//! sim.run();
//!
//! let stats = tracer.span_stats();
//! assert_eq!(stats.len(), 2); // table.insert + frontend
//! assert_eq!(tracer.counter("store.ops"), 1);
//! assert!(tracer.chrome_trace().starts_with("{\"traceEvents\":["));
//! ```

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use simcore::report::{num, AsciiTable};
use simcore::stats::SampleSet;
use simcore::time::SimTime;
use simcore::{KernelEvent, Sim};

/// The simulator layer a span or instant belongs to. Layers map to
/// crates: one process ("pid") per layer in the Chrome export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// `simcore` — kernel: executor and event heap.
    Kernel,
    /// `dcnet` — fluid-flow datacenter network.
    Net,
    /// `azstore` — storage stamp (blob / table / queue).
    Store,
    /// `fabric` — fabric controller and VM lifecycle.
    Fabric,
    /// `modis` — application workload (ModisAzure).
    App,
    /// `simload` — open-loop workload generation (arrivals, SLO
    /// deadlines). Separate from [`Layer::App`] so intended-arrival
    /// annotations don't mix with the application's own spans.
    Load,
    /// `faas` — function-invocation layer (container pools, keepalive
    /// policies, cold starts). Separate from [`Layer::Fabric`]: the
    /// underlying scaled VM lifecycle still traces as fabric, while
    /// pool decisions (warm hit, eviction, prewarm) trace here.
    Faas,
    /// `azgeo` — multi-stamp geo layer (location service, replication
    /// shipping, rebalance and failover decisions). Separate from
    /// [`Layer::Store`]: per-stamp request handling still traces as
    /// store, while cross-stamp control-plane activity traces here.
    Geo,
    /// `azroute` — client-side read routing and consistency decisions
    /// (replica selection, staleness checks, escalations). Separate
    /// from [`Layer::Geo`]: the geo layer traces the platform's
    /// control plane, while per-read client policy decisions trace
    /// here.
    Route,
}

impl Layer {
    /// All layers in display order.
    pub const ALL: [Layer; 9] = [
        Layer::Kernel,
        Layer::Net,
        Layer::Store,
        Layer::Fabric,
        Layer::App,
        Layer::Load,
        Layer::Faas,
        Layer::Geo,
        Layer::Route,
    ];

    /// Short lowercase name (used as the Chrome `cat` and in tables).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Kernel => "kernel",
            Layer::Net => "net",
            Layer::Store => "store",
            Layer::Fabric => "fabric",
            Layer::App => "app",
            Layer::Load => "load",
            Layer::Faas => "faas",
            Layer::Geo => "geo",
            Layer::Route => "route",
        }
    }

    /// Longer label naming the crate, for the Chrome process name.
    pub fn process_name(self) -> &'static str {
        match self {
            Layer::Kernel => "kernel (simcore)",
            Layer::Net => "net (dcnet)",
            Layer::Store => "store (azstore)",
            Layer::Fabric => "fabric",
            Layer::App => "app (modis)",
            Layer::Load => "load (simload)",
            Layer::Faas => "faas",
            Layer::Geo => "geo (azgeo)",
            Layer::Route => "route (azroute)",
        }
    }

    fn pid(self) -> u32 {
        match self {
            Layer::Kernel => 1,
            Layer::Net => 2,
            Layer::Store => 3,
            Layer::Fabric => 4,
            Layer::App => 5,
            Layer::Load => 6,
            Layer::Faas => 7,
            Layer::Geo => 8,
            Layer::Route => 9,
        }
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded span (also the query-API view of it).
#[derive(Debug, Clone)]
pub struct SpanInfo {
    /// Unique id (1-based, in start order).
    pub id: u64,
    /// Enclosing span, if this is a child.
    pub parent: Option<u64>,
    /// Layer the span belongs to.
    pub layer: Layer,
    /// Span kind — a small static vocabulary (e.g. `"table.insert"`).
    pub kind: &'static str,
    /// Component instance label (e.g. `"client3"`).
    pub comp: String,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time; `None` while the span is open (or was abandoned).
    pub end: Option<SimTime>,
    /// Key=value attributes attached during the span's life.
    pub attrs: Vec<(&'static str, String)>,
}

struct Inner {
    sim: Sim,
    enabled: Cell<bool>,
    spans: RefCell<Vec<SpanInfo>>,
    open: Cell<usize>,
    counters: RefCell<BTreeMap<&'static str, i64>>,
    counter_series: RefCell<Vec<(SimTime, &'static str, i64)>>,
    gauges: RefCell<BTreeMap<&'static str, f64>>,
    gauge_series: RefCell<Vec<(SimTime, &'static str, f64)>>,
    instants: RefCell<Vec<(SimTime, Layer, &'static str, String)>>,
}

/// A deterministic trace collector bound to one [`Sim`].
///
/// Cheap to clone (all clones share the buffer). Collection happens
/// through [`Span`] guards and the counter/gauge methods; inspection
/// through the query methods ([`span_stats`](Tracer::span_stats),
/// [`counters`](Tracer::counters), …) or the
/// [`chrome_trace`](Tracer::chrome_trace) export.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<Inner>,
}

impl Tracer {
    /// New enabled tracer stamping times from `sim`'s virtual clock.
    pub fn new(sim: &Sim) -> Tracer {
        Tracer {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                enabled: Cell::new(true),
                spans: RefCell::new(Vec::new()),
                open: Cell::new(0),
                counters: RefCell::new(BTreeMap::new()),
                counter_series: RefCell::new(Vec::new()),
                gauges: RefCell::new(BTreeMap::new()),
                gauge_series: RefCell::new(Vec::new()),
                instants: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Pause/resume collection. While disabled every record call is a
    /// no-op (spans started return disabled guards).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.set(on);
    }

    /// True while the tracer records.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Bind this tracer to the current thread (making the module-level
    /// [`span`]/[`counter`]/[`gauge`]/[`instant`] helpers feed it) and
    /// register the kernel hook counting `kernel.tasks_spawned` /
    /// `kernel.wakes` / `kernel.calls`. Dropping the guard unbinds the
    /// hook and restores the previously installed tracer, if any —
    /// installs nest, and work on any thread with its own `Sim` (the
    /// sharded campaign runner installs per worker thread).
    pub fn install(&self) -> InstallGuard {
        let t = self.clone();
        let hook = self.inner.sim.add_kernel_hook(Rc::new(move |_sim, ev| {
            let name = match ev {
                KernelEvent::TaskSpawned => "kernel.tasks_spawned",
                KernelEvent::WakeFired => "kernel.wakes",
                KernelEvent::CallFired => "kernel.calls",
            };
            t.counter_bump(name, 1);
        }));
        let prev = ACTIVE.with(|a| a.borrow_mut().replace(self.clone()));
        TRACING.with(|t| t.set(true));
        InstallGuard {
            sim: self.inner.sim.clone(),
            hook,
            prev,
        }
    }

    /// Start a span. Prefer the module-level [`span`] helper in model
    /// code (it is a no-op without an installed tracer).
    pub fn span(&self, layer: Layer, kind: &'static str, comp: String) -> Span {
        if !self.is_enabled() {
            return Span::disabled();
        }
        self.start_span(layer, kind, comp, None)
    }

    fn start_span(
        &self,
        layer: Layer,
        kind: &'static str,
        comp: String,
        parent: Option<u64>,
    ) -> Span {
        let mut spans = self.inner.spans.borrow_mut();
        let id = spans.len() as u64 + 1;
        spans.push(SpanInfo {
            id,
            parent,
            layer,
            kind,
            comp,
            start: self.inner.sim.now(),
            end: None,
            attrs: Vec::new(),
        });
        self.inner.open.set(self.inner.open.get() + 1);
        Span {
            tracer: Some(self.clone()),
            id,
            layer,
        }
    }

    fn end_span(&self, id: u64) {
        let mut spans = self.inner.spans.borrow_mut();
        let rec = &mut spans[(id - 1) as usize];
        if rec.end.is_none() {
            rec.end = Some(self.inner.sim.now());
            self.inner.open.set(self.inner.open.get() - 1);
        }
    }

    fn span_attr(&self, id: u64, key: &'static str, value: String) {
        let mut spans = self.inner.spans.borrow_mut();
        spans[(id - 1) as usize].attrs.push((key, value));
    }

    /// Add `delta` to a monotonic counter and record a sample point in
    /// the trace.
    pub fn counter_add(&self, name: &'static str, delta: i64) {
        if !self.is_enabled() {
            return;
        }
        let v = {
            let mut c = self.inner.counters.borrow_mut();
            let v = c.entry(name).or_insert(0);
            *v += delta;
            *v
        };
        self.inner
            .counter_series
            .borrow_mut()
            .push((self.inner.sim.now(), name, v));
    }

    /// Add to a counter without recording a series point — for
    /// very-high-frequency sources (the kernel hook) where a per-event
    /// sample would dominate the buffer.
    pub fn counter_bump(&self, name: &'static str, delta: i64) {
        if !self.is_enabled() {
            return;
        }
        *self.inner.counters.borrow_mut().entry(name).or_insert(0) += delta;
    }

    /// Set a gauge to `value` and record a sample point in the trace.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.inner.gauges.borrow_mut().insert(name, value);
        self.inner
            .gauge_series
            .borrow_mut()
            .push((self.inner.sim.now(), name, value));
    }

    /// Record a point-in-time event.
    pub fn instant(&self, layer: Layer, kind: &'static str, comp: String) {
        if !self.is_enabled() {
            return;
        }
        self.inner
            .instants
            .borrow_mut()
            .push((self.inner.sim.now(), layer, kind, comp));
    }

    // ---- query API ----

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> i64 {
        self.inner.counters.borrow().get(name).copied().unwrap_or(0)
    }

    /// All counters with their final values, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, i64)> {
        self.inner
            .counters
            .borrow()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.gauges.borrow().get(name).copied()
    }

    /// Snapshot of every recorded span, in start order.
    pub fn spans(&self) -> Vec<SpanInfo> {
        self.inner.spans.borrow().clone()
    }

    /// Number of spans started.
    pub fn span_count(&self) -> usize {
        self.inner.spans.borrow().len()
    }

    /// Spans started but not yet ended.
    pub fn open_spans(&self) -> usize {
        self.inner.open.get()
    }

    /// Per-(layer, kind) duration statistics over *ended* spans, sorted
    /// by layer then kind. Percentiles are exact ([`SampleSet`]).
    pub fn span_stats(&self) -> Vec<SpanStats> {
        let mut by_key: BTreeMap<(Layer, &'static str), SpanStats> = BTreeMap::new();
        for s in self.inner.spans.borrow().iter() {
            let e = by_key
                .entry((s.layer, s.kind))
                .or_insert_with(|| SpanStats {
                    layer: s.layer,
                    kind: s.kind,
                    count: 0,
                    open: 0,
                    durations: SampleSet::new(),
                });
            e.count += 1;
            match s.end {
                Some(end) => e.durations.push((end - s.start).as_secs_f64()),
                None => e.open += 1,
            }
        }
        by_key.into_values().collect()
    }

    /// Render the per-layer latency breakdown table (the `--trace`
    /// regeneration binaries print this).
    pub fn latency_breakdown(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "layer",
            "span kind",
            "count",
            "open",
            "mean ms",
            "p50 ms",
            "p95 ms",
            "max ms",
            "total s",
        ])
        .with_title("Per-layer latency breakdown (virtual time)");
        for st in self.span_stats() {
            let d = &st.durations;
            let ms = 1e3;
            if d.is_empty() {
                t.row(vec![
                    st.layer.name().to_string(),
                    st.kind.to_string(),
                    st.count.to_string(),
                    st.open.to_string(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                    "n/a".into(),
                ]);
            } else {
                let max = d.values().iter().cloned().fold(f64::MIN, f64::max);
                let total: f64 = d.values().iter().sum();
                t.row(vec![
                    st.layer.name().to_string(),
                    st.kind.to_string(),
                    st.count.to_string(),
                    st.open.to_string(),
                    num(d.mean() * ms, 3),
                    num(d.median() * ms, 3),
                    num(d.percentile(0.95) * ms, 3),
                    num(max * ms, 3),
                    num(total, 3),
                ]);
            }
        }
        t.render()
    }

    /// Export the whole trace as Chrome `trace_event` JSON (the object
    /// form, `{"traceEvents":[…]}`), loadable in `chrome://tracing` and
    /// Perfetto. Spans become async begin/end pairs grouped by their
    /// root span's id; counters and gauges become `"C"` events; instants
    /// become `"i"` events. Output is byte-deterministic for a given
    /// sequence of record calls.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let emit = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&ev);
        };

        for layer in Layer::ALL {
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
                    layer.pid(),
                    json_str(layer.process_name())
                ),
            );
        }

        let spans = self.inner.spans.borrow();
        // Async events group by id: use the root ancestor's id so an
        // operation and its stage children share one track.
        let root_of = |mut i: usize| -> u64 {
            while let Some(p) = spans[i].parent {
                i = (p - 1) as usize;
            }
            spans[i].id
        };
        for (i, s) in spans.iter().enumerate() {
            let root = root_of(i);
            let mut args = format!("\"comp\":{}", json_str(&s.comp));
            for (k, v) in &s.attrs {
                let _ = write!(args, ",{}:{}", json_str(k), json_str(v));
            }
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"b\",\"cat\":{},\"id\":\"0x{:x}\",\"pid\":{},\"tid\":1,\"name\":{},\"ts\":{},\"args\":{{{}}}}}",
                    json_str(s.layer.name()),
                    root,
                    s.layer.pid(),
                    json_str(s.kind),
                    ts_us(s.start),
                    args
                ),
            );
            if let Some(end) = s.end {
                emit(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"ph\":\"e\",\"cat\":{},\"id\":\"0x{:x}\",\"pid\":{},\"tid\":1,\"name\":{},\"ts\":{}}}",
                        json_str(s.layer.name()),
                        root,
                        s.layer.pid(),
                        json_str(s.kind),
                        ts_us(end)
                    ),
                );
            }
        }
        for (at, name, v) in self.inner.counter_series.borrow().iter() {
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"name\":{},\"ts\":{},\"args\":{{\"value\":{}}}}}",
                    json_str(name),
                    ts_us(*at),
                    v
                ),
            );
        }
        for (at, name, v) in self.inner.gauge_series.borrow().iter() {
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"name\":{},\"ts\":{},\"args\":{{\"value\":{}}}}}",
                    json_str(name),
                    ts_us(*at),
                    json_f64(*v)
                ),
            );
        }
        for (at, layer, kind, comp) in self.inner.instants.borrow().iter() {
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"i\",\"cat\":{},\"pid\":{},\"tid\":1,\"name\":{},\"ts\":{},\"s\":\"p\",\"args\":{{\"comp\":{}}}}}",
                    json_str(layer.name()),
                    layer.pid(),
                    json_str(kind),
                    ts_us(*at),
                    json_str(comp)
                ),
            );
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Virtual nanoseconds rendered as Chrome's microsecond `ts` field.
fn ts_us(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Aggregated durations for one (layer, span kind).
pub struct SpanStats {
    /// Layer the spans belong to.
    pub layer: Layer,
    /// Span kind.
    pub kind: &'static str,
    /// Spans started (ended + open).
    pub count: u64,
    /// Spans never ended (abandoned/cancelled or still open).
    pub open: u64,
    /// Durations of ended spans, in seconds.
    pub durations: SampleSet,
}

/// RAII guard for one span; ends the span on drop (which makes spans
/// cancellation-safe: a future dropped by a lost `select2` race still
/// closes its span at the drop time). [`Span::end`] ends it explicitly.
#[must_use = "a span guard ends its span when dropped"]
pub struct Span {
    tracer: Option<Tracer>,
    id: u64,
    layer: Layer,
}

impl Span {
    /// A no-op span (what instrumentation gets when tracing is off).
    pub fn disabled() -> Span {
        Span {
            tracer: None,
            id: 0,
            layer: Layer::Kernel,
        }
    }

    /// False for the no-op span.
    pub fn is_recording(&self) -> bool {
        self.tracer.is_some()
    }

    /// This span's id (0 for the no-op span).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a key=value attribute. The value is only rendered when
    /// recording.
    pub fn attr(&self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(t) = &self.tracer {
            t.span_attr(self.id, key, value.to_string());
        }
    }

    /// Start a child span in the same layer. The label closure is only
    /// invoked when recording.
    pub fn child(&self, kind: &'static str, comp: impl FnOnce() -> String) -> Span {
        match &self.tracer {
            Some(t) => t.start_span(self.layer, kind, comp(), Some(self.id)),
            None => Span::disabled(),
        }
    }

    /// End the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t) = &self.tracer {
            t.end_span(self.id);
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Tracer>> = const { RefCell::new(None) };
    // Fast-path flag mirroring `ACTIVE.is_some()`: a const-init Cell read
    // is a couple of instructions, so uninstrumented runs pay almost
    // nothing per span/counter call site.
    static TRACING: Cell<bool> = const { Cell::new(false) };
}

/// Unbinds the tracer from the thread and removes the kernel hook when
/// dropped, restoring the previously installed tracer if installs were
/// nested (returned by [`Tracer::install`]).
pub struct InstallGuard {
    sim: Sim,
    hook: simcore::KernelHookId,
    prev: Option<Tracer>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        TRACING.with(|t| t.set(self.prev.is_some()));
        ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
        self.sim.remove_kernel_hook(self.hook);
    }
}

/// The tracer installed on this thread, if any.
pub fn active() -> Option<Tracer> {
    ACTIVE.with(|a| a.borrow().clone())
}

/// Start a span against the thread's installed tracer; a no-op span when
/// none is installed (the `comp` closure is not invoked then).
#[inline]
pub fn span(layer: Layer, kind: &'static str, comp: impl FnOnce() -> String) -> Span {
    if !TRACING.with(|t| t.get()) {
        return Span::disabled();
    }
    ACTIVE.with(|a| match &*a.borrow() {
        Some(t) if t.is_enabled() => t.start_span(layer, kind, comp(), None),
        _ => Span::disabled(),
    })
}

/// Add to a counter on the thread's installed tracer (no-op without one).
#[inline]
pub fn counter(name: &'static str, delta: i64) {
    if !TRACING.with(|t| t.get()) {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(t) = &*a.borrow() {
            t.counter_add(name, delta);
        }
    });
}

/// Set a gauge on the thread's installed tracer (no-op without one).
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !TRACING.with(|t| t.get()) {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(t) = &*a.borrow() {
            t.gauge_set(name, value);
        }
    });
}

/// Record an instant event on the thread's installed tracer (no-op
/// without one; the `comp` closure is not invoked then).
#[inline]
pub fn instant(layer: Layer, kind: &'static str, comp: impl FnOnce() -> String) {
    if !TRACING.with(|t| t.get()) {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(t) = &*a.borrow() {
            if t.is_enabled() {
                let comp = comp();
                t.instant(layer, kind, comp);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn disabled_module_helpers_are_noops() {
        // No tracer installed: everything is a no-op and closures never run.
        let sp = span(Layer::Store, "op", || unreachable!("must not be called"));
        assert!(!sp.is_recording());
        sp.attr("k", "v");
        let child = sp.child("stage", || unreachable!("must not be called"));
        assert!(!child.is_recording());
        counter("c", 1);
        gauge("g", 1.0);
        instant(Layer::Net, "i", || unreachable!("must not be called"));
    }

    #[test]
    fn span_records_times_and_attrs() {
        let sim = Sim::new(1);
        let tracer = Tracer::new(&sim);
        let t = tracer.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let sp = t.span(Layer::Store, "op", "c0".into());
            sp.attr("kind", "insert");
            s.delay(SimDuration::from_millis(5)).await;
            sp.end();
        });
        sim.run();
        let spans = tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, "op");
        assert_eq!(spans[0].comp, "c0");
        assert_eq!(spans[0].attrs, vec![("kind", "insert".to_string())]);
        assert_eq!(
            spans[0].end.unwrap() - spans[0].start,
            SimDuration::from_millis(5)
        );
        assert_eq!(tracer.open_spans(), 0);
    }

    #[test]
    fn set_enabled_false_suppresses_recording() {
        let sim = Sim::new(1);
        let tracer = Tracer::new(&sim);
        tracer.set_enabled(false);
        let sp = tracer.span(Layer::App, "x", "c".into());
        assert!(!sp.is_recording());
        tracer.counter_add("n", 3);
        assert_eq!(tracer.counter("n"), 0);
        tracer.set_enabled(true);
        tracer.counter_add("n", 3);
        assert_eq!(tracer.counter("n"), 3);
    }

    #[test]
    fn counter_math_accumulates_and_series_tracks_values() {
        let sim = Sim::new(1);
        let tracer = Tracer::new(&sim);
        tracer.counter_add("ops", 2);
        tracer.counter_add("ops", 3);
        tracer.counter_add("errs", 1);
        tracer.counter_bump("quiet", 10);
        assert_eq!(tracer.counter("ops"), 5);
        assert_eq!(tracer.counter("errs"), 1);
        assert_eq!(tracer.counter("quiet"), 10);
        assert_eq!(tracer.counter("missing"), 0);
        assert_eq!(
            tracer.counters(),
            vec![("errs", 1), ("ops", 5), ("quiet", 10)]
        );
        // Series carries the running value (2 then 5), and bump stays out.
        assert!(tracer.chrome_trace().contains("\"value\":5"));
    }

    #[test]
    fn kernel_hook_counts_spawns_and_wakes() {
        let sim = Sim::new(1);
        let tracer = Tracer::new(&sim);
        let guard = tracer.install();
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(SimDuration::from_millis(1)).await;
        });
        sim.run();
        assert_eq!(tracer.counter("kernel.tasks_spawned"), 1);
        assert!(tracer.counter("kernel.wakes") >= 1);
        drop(guard);
        // After the guard drops, new kernel activity is not counted.
        let before = tracer.counter("kernel.tasks_spawned");
        sim.spawn(async {});
        sim.run();
        assert_eq!(tracer.counter("kernel.tasks_spawned"), before);
        assert!(active().is_none());
    }

    #[test]
    fn breakdown_renders_all_layers_present() {
        let sim = Sim::new(1);
        let tracer = Tracer::new(&sim);
        for layer in Layer::ALL {
            tracer.span(layer, "work", "x".into()).end();
        }
        let table = tracer.latency_breakdown();
        for layer in Layer::ALL {
            assert!(table.contains(layer.name()), "missing {layer} in\n{table}");
        }
    }

    #[test]
    fn chrome_trace_is_wellformed_and_escapes() {
        let sim = Sim::new(1);
        let tracer = Tracer::new(&sim);
        let sp = tracer.span(Layer::Store, "op", "c\"0\\\n".into());
        sp.attr("note", "a\tb");
        sp.end();
        let json = tracer.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\\\"0\\\\\\n"));
        assert!(json.contains("a\\tb"));
        // Balanced braces outside strings is a decent smoke test for
        // hand-rolled JSON.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            match (in_str, esc, c) {
                (true, true, _) => esc = false,
                (true, false, '\\') => esc = true,
                (true, false, '"') => in_str = false,
                (false, _, '"') => in_str = true,
                (false, _, '{') => depth += 1,
                (false, _, '}') => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
