//! Golden determinism: tracing is part of the simulation contract, so two
//! runs with the same seed must serialise to byte-identical Chrome traces.
//!
//! The workload deliberately crosses layers (azstore blob/table ops over
//! the dcnet fluid links inside the stamp, plus an explicit dcnet flow and
//! app-level spans/counters) so any nondeterminism in span ids, ordering,
//! timestamps or attribute formatting shows up as a byte diff.

use azstore::{Entity, StampConfig, StorageStamp};
use dcnet::{LinkModel, Network};
use simcore::Sim;
use simtrace::{Layer, Tracer};

fn traced_run(seed: u64) -> (String, usize) {
    let sim = Sim::new(seed);
    let tracer = Tracer::new(&sim);
    let guard = tracer.install();

    // Store layer: a stamp with mixed blob + table traffic.
    let stamp = StorageStamp::standalone(&sim, StampConfig::default());
    stamp.blob_service().seed("bench", "blob", 8.0e6);
    stamp
        .table_service()
        .seed("bench", Entity::benchmark("p0", "shared", 4));
    for ci in 0..3 {
        let acct = stamp.attach_small_client();
        sim.spawn(async move {
            let sp = simtrace::span(Layer::App, "client.session", || format!("client{ci}"));
            let _ = acct.blob.get("bench", "blob").await;
            let _ = acct.blob.put("bench", &format!("up{ci}"), 2.0e6).await;
            for k in 0..4 {
                let e = Entity::benchmark("p0", &format!("c{ci}-r{k}"), 4);
                let _ = acct.table.insert("bench", e).await;
            }
            let _ = acct.table.query_point("bench", "p0", "shared").await;
            simtrace::counter("test.sessions", 1);
            sp.end();
        });
    }

    // Net layer: an explicit shared-link flow outside the stamp.
    let net = Network::new(&sim);
    let tx = net.add_link("t.tx", LinkModel::Shared { capacity: 125.0e6 });
    let rx = net.add_link("t.rx", LinkModel::Shared { capacity: 125.0e6 });
    for _ in 0..2 {
        let net = net.clone();
        sim.spawn(async move {
            net.transfer(&[tx, rx], 5.0e5, f64::INFINITY).await;
        });
    }

    sim.run();
    drop(guard);
    (tracer.chrome_trace(), tracer.span_count())
}

#[test]
fn same_seed_runs_produce_byte_identical_traces() {
    let (a, spans_a) = traced_run(0xD00D);
    let (b, spans_b) = traced_run(0xD00D);
    assert!(
        spans_a > 20,
        "workload should produce real spans, got {spans_a}"
    );
    assert_eq!(spans_a, spans_b);
    assert_eq!(a, b, "same-seed traces must be byte-identical");
}

#[test]
fn traces_cover_all_exercised_layers() {
    let (json, _) = traced_run(0xD00D);
    for name in ["net (dcnet)", "store (azstore)", "app (modis)"] {
        assert!(json.contains(name), "trace should name layer {name}");
    }
    for kind in ["blob.get", "table.insert", "net.flow", "client.session"] {
        assert!(json.contains(kind), "trace should contain {kind} spans");
    }
}

#[test]
fn different_seeds_diverge() {
    let (a, _) = traced_run(1);
    let (b, _) = traced_run(2);
    assert_ne!(a, b, "different seeds should change virtual timings");
}
