//! Property-based tests for the kernel's data structures and time
//! arithmetic.

use proptest::prelude::*;
use simcore::prelude::*;
use simcore::stats::Histogram;
use simcore::time::NANOS_PER_SEC;

proptest! {
    /// Welford statistics agree with the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1.0e6f64..1.0e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.std() - var.sqrt()).abs() <= 1e-4 * (1.0 + var.sqrt()));
        }
        prop_assert_eq!(s.count(), xs.len() as u64);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
    }

    /// Merging partitioned accumulators equals one pass over the union.
    #[test]
    fn online_stats_merge_is_partition_invariant(
        xs in prop::collection::vec(-1.0e4f64..1.0e4, 1..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i < split { a.push(x) } else { b.push(x) }
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.std() - whole.std()).abs() < 1e-6);
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_are_monotone_and_bounded(
        xs in prop::collection::vec(-1.0e5f64..1.0e5, 1..150),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let mut s = SampleSet::new();
        for &x in &xs {
            s.push(x);
        }
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let qlo = s.percentile(lo);
        let qhi = s.percentile(hi);
        prop_assert!(qlo <= qhi + 1e-9);
        prop_assert!(s.min() <= qlo + 1e-9);
        prop_assert!(qhi <= s.max() + 1e-9);
    }

    /// Every recorded sample lands in exactly one histogram bucket.
    #[test]
    fn histogram_conserves_mass(
        xs in prop::collection::vec(-50.0f64..150.0, 0..300),
        bins in 1usize..40,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        for &x in &xs {
            h.push(x);
        }
        let in_bins: u64 = (0..bins).map(|i| h.count(i)).sum();
        prop_assert_eq!(in_bins + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.total(), xs.len() as u64);
        // Cumulative fraction ends at (total - overflow) / total.
        if !xs.is_empty() {
            let last = h.cumulative().last().unwrap().2;
            let expect = (xs.len() as u64 - h.overflow()) as f64 / xs.len() as f64;
            prop_assert!((last - expect).abs() < 1e-9);
        }
    }

    /// Duration round trip through f64 seconds is accurate to a few ns
    /// per second of magnitude.
    #[test]
    fn duration_secs_roundtrip(ns in 0u64..(86_400 * NANOS_PER_SEC)) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let err = back.as_nanos().abs_diff(ns);
        prop_assert!(err <= 1 + ns / 1_000_000_000, "err={err}");
    }

    /// Time ordering survives adding a duration (monotonicity).
    #[test]
    fn time_addition_is_monotone(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
        let dd = SimDuration::from_nanos(d);
        if ta <= tb {
            prop_assert!(ta + dd <= tb + dd);
        }
    }

    /// The empirical distribution's quantile function is monotone and
    /// spans the knot range.
    #[test]
    fn empirical_quantile_monotone(
        mut points in prop::collection::vec(0.0f64..1000.0, 2..20),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        points.sort_by(|a, b| a.partial_cmp(b).unwrap());
        points.dedup();
        prop_assume!(points.len() >= 2);
        let n = points.len();
        let knots: Vec<(f64, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect();
        let d = Empirical::from_cdf(knots);
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assert!(d.quantile(lo) <= d.quantile(hi) + 1e-9);
        prop_assert!(d.quantile(1.0) <= points[n - 1] + 1e-9);
        prop_assert!(d.quantile(0.0) >= points[0] - 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine executes any batch of delayed tasks in deadline order
    /// and the clock finishes at the latest deadline.
    #[test]
    fn delays_fire_in_order(delays in prop::collection::vec(0u64..1_000_000, 1..50)) {
        let sim = Sim::new(42);
        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for &d in &delays {
            let (s, f) = (sim.clone(), fired.clone());
            sim.spawn(async move {
                s.delay(SimDuration::from_nanos(d)).await;
                f.borrow_mut().push(s.now().as_nanos());
            });
        }
        sim.run();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]), "out of order: {:?}", fired);
        let max = *delays.iter().max().unwrap();
        prop_assert_eq!(sim.now().as_nanos(), max);
    }

    /// A semaphore of arbitrary capacity never admits more than its
    /// permits, and everyone eventually gets through.
    #[test]
    fn semaphore_never_oversubscribes(cap in 1usize..8, tasks in 1usize..40) {
        let sim = Sim::new(7);
        let sem = Semaphore::new(cap);
        let active = std::rc::Rc::new(std::cell::Cell::new(0usize));
        let peak = std::rc::Rc::new(std::cell::Cell::new(0usize));
        let done = std::rc::Rc::new(std::cell::Cell::new(0usize));
        for _ in 0..tasks {
            let (s, sm) = (sim.clone(), sem.clone());
            let (a, p, d) = (active.clone(), peak.clone(), done.clone());
            sim.spawn(async move {
                let _g = sm.acquire().await;
                a.set(a.get() + 1);
                p.set(p.get().max(a.get()));
                s.delay(SimDuration::from_micros(10)).await;
                a.set(a.get() - 1);
                d.set(d.get() + 1);
            });
        }
        sim.run();
        prop_assert!(peak.get() <= cap);
        prop_assert_eq!(done.get(), tasks);
    }

    /// Channels deliver every message exactly once, in order, to a
    /// single consumer.
    #[test]
    fn channel_delivers_exactly_once(msgs in 1usize..200) {
        let sim = Sim::new(9);
        let (tx, rx) = channel::<usize>();
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let g = got.clone();
        sim.spawn(async move {
            while let Some(v) = rx.recv().await {
                g.borrow_mut().push(v);
            }
        });
        sim.spawn(async move {
            for i in 0..msgs {
                tx.send(i);
            }
        });
        sim.run();
        prop_assert_eq!(&*got.borrow(), &(0..msgs).collect::<Vec<_>>());
    }
}
