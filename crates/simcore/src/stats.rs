//! Measurement statistics: the numerical machinery behind every table and
//! figure the reproduction regenerates.

use crate::time::{SimDuration, SimTime};

/// Streaming mean/variance/min/max (Welford's algorithm) — numerically
/// stable for the 10⁶-sample series the ModisAzure campaign produces.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (NaN-free; infinity if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another accumulator into this one (parallel sweep reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Full-sample collector with exact percentiles (the experiment scales
/// here — ≤ a few 10⁵ samples per series — make exactness affordable).
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    values: Vec<f64>,
}

impl SampleSet {
    /// Empty set.
    pub fn new() -> Self {
        SampleSet { values: Vec::new() }
    }

    /// Pre-sized empty set.
    pub fn with_capacity(n: usize) -> Self {
        SampleSet {
            values: Vec::with_capacity(n),
        }
    }

    /// Add one observation.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Convenience: record a duration in seconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.values.push(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let ss: f64 = self.values.iter().map(|v| (v - m) * (v - m)).sum();
        (ss / (self.values.len() - 1) as f64).sqrt()
    }

    /// Exact p-quantile by sorting a copy (p in [0,1], linear interpolation).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        quantile_sorted(&sorted, p)
    }

    /// Median shortcut.
    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }

    /// Minimum (0 if empty).
    pub fn min(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
    }

    /// Maximum (0 if empty).
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Fraction of samples ≤ `x` (the empirical CDF evaluated at x).
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v <= x).count() as f64 / self.values.len() as f64
    }

    /// Export the empirical CDF as `(value, cumulative_fraction)` points.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        sorted
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Bucket into a fixed-width histogram over `[lo, hi)`.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        for &v in &self.values {
            h.push(v);
        }
        h
    }

    /// Merge another set's samples into this one.
    pub fn merge(&mut self, other: &SampleSet) {
        self.values.extend_from_slice(&other.values);
    }
}

fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = rank - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// Fixed-width histogram with explicit under/overflow buckets; renders
/// the cumulative plots of Figs 4 and 5.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` equal-width buckets covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one value.
    pub fn push(&mut self, v: f64) {
        self.total += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let last = self.bins.len() - 1;
            let idx = ((v - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// Total values recorded, including out-of-range.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Width of one bucket.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Iterate `(bin_upper_edge, count, cumulative_fraction)`.
    pub fn cumulative(&self) -> Vec<(f64, u64, f64)> {
        let mut acc = self.underflow;
        let mut out = Vec::with_capacity(self.bins.len());
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            let edge = self.lo + self.bin_width() * (i + 1) as f64;
            let frac = if self.total == 0 {
                0.0
            } else {
                acc as f64 / self.total as f64
            };
            out.push((edge, c, frac));
        }
        out
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Values below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Values at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

/// Per-day counters over virtual time: the aggregation behind Fig 7
/// ("daily percent of task executions with VM timeout").
#[derive(Debug, Clone)]
pub struct DailySeries {
    bucket: SimDuration,
    totals: Vec<u64>,
    hits: Vec<u64>,
}

impl DailySeries {
    /// Day-bucketed series.
    pub fn daily() -> Self {
        Self::with_bucket(SimDuration::from_days(1))
    }

    /// Custom bucket width.
    pub fn with_bucket(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero());
        DailySeries {
            bucket,
            totals: Vec::new(),
            hits: Vec::new(),
        }
    }

    fn bucket_of(&self, t: SimTime) -> usize {
        (t.as_nanos() / self.bucket.as_nanos()) as usize
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.totals.len() {
            self.totals.resize(idx + 1, 0);
            self.hits.resize(idx + 1, 0);
        }
    }

    /// Record one event at time `t`; `hit` marks membership in the
    /// numerator class (e.g. "timed out").
    pub fn record(&mut self, t: SimTime, hit: bool) {
        let idx = self.bucket_of(t);
        self.ensure(idx);
        self.totals[idx] += 1;
        if hit {
            self.hits[idx] += 1;
        }
    }

    /// Number of buckets spanned so far.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// `(bucket_index, total, hits, hit_fraction)` rows; buckets with no
    /// events report fraction 0.
    pub fn rows(&self) -> Vec<(usize, u64, u64, f64)> {
        self.totals
            .iter()
            .zip(&self.hits)
            .enumerate()
            .map(|(i, (&t, &h))| {
                let frac = if t == 0 { 0.0 } else { h as f64 / t as f64 };
                (i, t, h, frac)
            })
            .collect()
    }

    /// Largest per-bucket hit fraction (the "up to 16 %" headline of Fig 7).
    pub fn max_fraction(&self) -> f64 {
        self.rows()
            .into_iter()
            .map(|(_, _, _, f)| f)
            .fold(0.0, f64::max)
    }

    /// Hits / totals over all buckets.
    pub fn overall_fraction(&self) -> f64 {
        let t: u64 = self.totals.iter().sum();
        let h: u64 = self.hits.iter().sum();
        if t == 0 {
            0.0
        } else {
            h as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std with n-1: sqrt(32/7).
        assert!((s.std() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_equals_single_pass() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            whole.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.std() - whole.std()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zeroish() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = SampleSet::new();
        for v in [10.0, 20.0, 30.0, 40.0] {
            s.push(v);
        }
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(1.0), 40.0);
        assert!((s.median() - 25.0).abs() < 1e-12);
        assert!((s.percentile(0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_at_most_is_cdf() {
        let mut s = SampleSet::new();
        for v in 1..=10 {
            s.push(v as f64);
        }
        assert!((s.fraction_at_most(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.fraction_at_most(0.0), 0.0);
        assert_eq!(s.fraction_at_most(10.0), 1.0);
    }

    #[test]
    fn cdf_export_is_monotone() {
        let mut s = SampleSet::new();
        for v in [3.0, 1.0, 2.0] {
            s.push(v);
        }
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 3);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 50.0] {
            h.push(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(0), 2); // 0.0, 1.9
        assert_eq!(h.count(1), 1); // 2.0
        assert_eq!(h.count(4), 1); // 9.99
        let cum = h.cumulative();
        assert!((cum.last().unwrap().2 - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn daily_series_fractions() {
        let mut s = DailySeries::daily();
        let day = SimDuration::from_days(1);
        // Day 0: 4 events, 1 hit. Day 2: 2 events, 2 hits. Day 1: empty.
        for i in 0..4 {
            s.record(SimTime::ZERO + SimDuration::from_hours(i), i == 0);
        }
        s.record(SimTime::ZERO + day * 2, true);
        s.record(SimTime::ZERO + day * 2 + SimDuration::from_hours(1), true);
        let rows = s.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], (0, 4, 1, 0.25));
        assert_eq!(rows[1], (1, 0, 0, 0.0));
        assert_eq!(rows[2], (2, 2, 2, 1.0));
        assert!((s.max_fraction() - 1.0).abs() < 1e-12);
        assert!((s.overall_fraction() - 0.5).abs() < 1e-12);
    }
}
