//! Synchronization primitives for simulation processes.
//!
//! These mirror the shapes of `tokio::sync` but are single-threaded and
//! deterministic: wait queues are strict FIFO, so given the same seed the
//! same process always wins a contended resource. All of them are
//! cancel-safe — dropping a pending future never loses a permit or a
//! message (the invariants the property tests at the bottom check).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

const WAITING: u8 = 0;
const GRANTED: u8 = 1;
const CANCELLED: u8 = 2;

struct WaitNode {
    state: Cell<u8>,
    waker: RefCell<Option<Waker>>,
}

struct SemState {
    permits: Cell<usize>,
    queue: RefCell<VecDeque<Rc<WaitNode>>>,
    acquired_total: Cell<u64>,
}

/// Counting semaphore with FIFO granting. Models any finite-capacity
/// station: storage front-ends, partition servers, replica write pipelines.
#[derive(Clone)]
pub struct Semaphore {
    st: Rc<SemState>,
}

impl Semaphore {
    /// Create with `permits` initially available.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            st: Rc::new(SemState {
                permits: Cell::new(permits),
                queue: RefCell::new(VecDeque::new()),
                acquired_total: Cell::new(0),
            }),
        }
    }

    /// Permits currently available (not counting queued waiters).
    pub fn available(&self) -> usize {
        self.st.permits.get()
    }

    /// Number of processes currently queued.
    pub fn queue_len(&self) -> usize {
        self.st
            .queue
            .borrow()
            .iter()
            .filter(|n| n.state.get() == WAITING)
            .count()
    }

    /// Total successful acquisitions over the simulation (statistic).
    pub fn acquired_total(&self) -> u64 {
        self.st.acquired_total.get()
    }

    /// Acquire one permit, waiting FIFO behind earlier requesters.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            sem: Rc::clone(&self.st),
            node: None,
            done: false,
        }
    }

    /// Take a permit immediately if one is free and nobody is queued.
    pub fn try_acquire(&self) -> Option<Permit> {
        if self.st.permits.get() > 0 && self.st.queue.borrow().is_empty() {
            self.st.permits.set(self.st.permits.get() - 1);
            self.st.acquired_total.set(self.st.acquired_total.get() + 1);
            Some(Permit {
                sem: Rc::clone(&self.st),
            })
        } else {
            None
        }
    }

    /// Add permits (capacity increase at runtime).
    pub fn add_permits(&self, n: usize) {
        for _ in 0..n {
            release_one(&self.st);
        }
    }
}

/// Hand the released permit to the first live waiter, else bank it.
fn release_one(st: &Rc<SemState>) {
    let mut queue = st.queue.borrow_mut();
    while let Some(node) = queue.pop_front() {
        if node.state.get() == CANCELLED {
            continue;
        }
        node.state.set(GRANTED);
        if let Some(w) = node.waker.borrow_mut().take() {
            w.wake();
        }
        return;
    }
    st.permits.set(st.permits.get() + 1);
}

/// RAII guard for one semaphore permit; releases on drop.
pub struct Permit {
    sem: Rc<SemState>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        release_one(&self.sem);
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Rc<SemState>,
    node: Option<Rc<WaitNode>>,
    done: bool,
}

impl Future for Acquire {
    type Output = Permit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        assert!(!self.done, "Acquire polled after completion");
        if let Some(node) = &self.node {
            match node.state.get() {
                GRANTED => {
                    self.done = true;
                    self.sem
                        .acquired_total
                        .set(self.sem.acquired_total.get() + 1);
                    Poll::Ready(Permit {
                        sem: Rc::clone(&self.sem),
                    })
                }
                WAITING => {
                    *node.waker.borrow_mut() = Some(cx.waker().clone());
                    Poll::Pending
                }
                _ => unreachable!("polled a cancelled Acquire"),
            }
        } else {
            // Fast path only when nobody is already queued (FIFO).
            if self.sem.permits.get() > 0 && self.sem.queue.borrow().is_empty() {
                self.sem.permits.set(self.sem.permits.get() - 1);
                self.sem
                    .acquired_total
                    .set(self.sem.acquired_total.get() + 1);
                self.done = true;
                return Poll::Ready(Permit {
                    sem: Rc::clone(&self.sem),
                });
            }
            let node = Rc::new(WaitNode {
                state: Cell::new(WAITING),
                waker: RefCell::new(Some(cx.waker().clone())),
            });
            self.sem.queue.borrow_mut().push_back(Rc::clone(&node));
            self.node = Some(node);
            Poll::Pending
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        if let Some(node) = &self.node {
            match node.state.get() {
                WAITING => node.state.set(CANCELLED),
                // Permit was granted but never picked up: pass it on so it
                // isn't lost (cancel-safety invariant).
                GRANTED => release_one(&self.sem),
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Signal (one-shot broadcast)
// ---------------------------------------------------------------------------

struct SignalState {
    fired: Cell<bool>,
    waiters: RefCell<Vec<Waker>>,
}

/// One-shot broadcast event: any number of processes wait, one `fire()`
/// releases them all. Later waiters pass straight through.
#[derive(Clone)]
pub struct Signal {
    st: Rc<SignalState>,
}

impl Default for Signal {
    fn default() -> Self {
        Self::new()
    }
}

impl Signal {
    /// New unfired signal.
    pub fn new() -> Self {
        Signal {
            st: Rc::new(SignalState {
                fired: Cell::new(false),
                waiters: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Fire the signal, releasing all current and future waiters.
    pub fn fire(&self) {
        if self.st.fired.replace(true) {
            return;
        }
        for w in self.st.waiters.borrow_mut().drain(..) {
            w.wake();
        }
    }

    /// True once fired.
    pub fn is_fired(&self) -> bool {
        self.st.fired.get()
    }

    /// Wait until the signal fires.
    pub fn wait(&self) -> SignalWait {
        SignalWait {
            st: Rc::clone(&self.st),
        }
    }
}

/// Future returned by [`Signal::wait`].
pub struct SignalWait {
    st: Rc<SignalState>,
}

impl Future for SignalWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.st.fired.get() {
            Poll::Ready(())
        } else {
            self.st.waiters.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Channel (unbounded MPMC)
// ---------------------------------------------------------------------------

struct RecvNode<T> {
    slot: RefCell<Option<T>>,
    cancelled: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

struct ChanState<T> {
    queue: RefCell<VecDeque<T>>,
    waiters: RefCell<VecDeque<Rc<RecvNode<T>>>>,
    senders: Cell<usize>,
    sent_total: Cell<u64>,
}

/// Create an unbounded multi-producer multi-consumer channel. Items are
/// handed to receivers in FIFO order of both items and waiting receivers.
pub fn channel<T: 'static>() -> (Sender<T>, Receiver<T>) {
    let st = Rc::new(ChanState {
        queue: RefCell::new(VecDeque::new()),
        waiters: RefCell::new(VecDeque::new()),
        senders: Cell::new(1),
        sent_total: Cell::new(0),
    });
    (Sender { st: Rc::clone(&st) }, Receiver { st })
}

/// Sending half; clone for multiple producers. Channel closes when the
/// last sender drops.
pub struct Sender<T> {
    st: Rc<ChanState<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.st.senders.set(self.st.senders.get() + 1);
        Sender {
            st: Rc::clone(&self.st),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let n = self.st.senders.get() - 1;
        self.st.senders.set(n);
        if n == 0 {
            // Closed: wake everyone so they observe the closure.
            for node in self.st.waiters.borrow_mut().drain(..) {
                if let Some(w) = node.waker.borrow_mut().take() {
                    w.wake();
                }
            }
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue `item`, handing it directly to the longest-waiting receiver
    /// if one exists.
    pub fn send(&self, item: T) {
        self.st.sent_total.set(self.st.sent_total.get() + 1);
        let mut waiters = self.st.waiters.borrow_mut();
        while let Some(node) = waiters.pop_front() {
            if node.cancelled.get() {
                continue;
            }
            *node.slot.borrow_mut() = Some(item);
            if let Some(w) = node.waker.borrow_mut().take() {
                w.wake();
            }
            return;
        }
        drop(waiters);
        self.st.queue.borrow_mut().push_back(item);
    }

    /// Messages currently buffered (not yet handed to a receiver).
    pub fn backlog(&self) -> usize {
        self.st.queue.borrow().len()
    }

    /// Total messages ever sent (statistic).
    pub fn sent_total(&self) -> u64 {
        self.st.sent_total.get()
    }
}

/// Receiving half; clone for multiple consumers (work-sharing pool).
pub struct Receiver<T> {
    st: Rc<ChanState<T>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            st: Rc::clone(&self.st),
        }
    }
}

impl<T: 'static> Receiver<T> {
    /// Wait for the next message; `None` once the channel is closed and
    /// drained.
    pub fn recv(&self) -> Recv<T> {
        Recv {
            st: Rc::clone(&self.st),
            node: None,
            done: false,
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.st.queue.borrow_mut().pop_front()
    }

    /// Messages currently buffered.
    pub fn backlog(&self) -> usize {
        self.st.queue.borrow().len()
    }

    /// True once all senders have dropped.
    pub fn is_closed(&self) -> bool {
        self.st.senders.get() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<T> {
    st: Rc<ChanState<T>>,
    node: Option<Rc<RecvNode<T>>>,
    done: bool,
}

impl<T> Future for Recv<T> {
    type Output = Option<T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        assert!(!self.done, "Recv polled after completion");
        if let Some(node) = self.node.clone() {
            if let Some(item) = node.slot.borrow_mut().take() {
                self.done = true;
                return Poll::Ready(Some(item));
            }
            if self.st.senders.get() == 0 {
                self.done = true;
                return Poll::Ready(None);
            }
            *node.waker.borrow_mut() = Some(cx.waker().clone());
            return Poll::Pending;
        }
        // Only take from the buffer if no earlier receiver is queued —
        // preserves receiver FIFO fairness.
        let no_live_waiters = self.st.waiters.borrow().iter().all(|n| n.cancelled.get());
        if no_live_waiters {
            let item = self.st.queue.borrow_mut().pop_front();
            if let Some(item) = item {
                self.done = true;
                return Poll::Ready(Some(item));
            }
        }
        if self.st.senders.get() == 0 {
            self.done = true;
            return Poll::Ready(None);
        }
        let node = Rc::new(RecvNode {
            slot: RefCell::new(None),
            cancelled: Cell::new(false),
            waker: RefCell::new(Some(cx.waker().clone())),
        });
        self.st.waiters.borrow_mut().push_back(Rc::clone(&node));
        self.node = Some(node);
        Poll::Pending
    }
}

impl<T> Drop for Recv<T> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        if let Some(node) = &self.node {
            node.cancelled.set(true);
            // An item may have been handed over concurrently with the
            // drop; give it back at the front so ordering is preserved.
            if let Some(item) = node.slot.borrow_mut().take() {
                let mut waiters = self.st.waiters.borrow_mut();
                while let Some(next) = waiters.pop_front() {
                    if next.cancelled.get() {
                        continue;
                    }
                    *next.slot.borrow_mut() = Some(item);
                    if let Some(w) = next.waker.borrow_mut().take() {
                        w.wake();
                    }
                    return;
                }
                drop(waiters);
                self.st.queue.borrow_mut().push_front(item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;
    use crate::time::SimDuration as D;

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(2);
        let peak = Rc::new(Cell::new(0usize));
        let active = Rc::new(Cell::new(0usize));
        for _ in 0..10 {
            let (s, sm, pk, ac) = (sim.clone(), sem.clone(), peak.clone(), active.clone());
            sim.spawn(async move {
                let _p = sm.acquire().await;
                ac.set(ac.get() + 1);
                pk.set(pk.get().max(ac.get()));
                s.delay(D::from_millis(10)).await;
                ac.set(ac.get() - 1);
            });
        }
        sim.run();
        assert_eq!(peak.get(), 2);
        assert_eq!(sem.acquired_total(), 10);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn semaphore_grants_fifo() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(1);
        let order: Rc<RefCell<Vec<usize>>> = Rc::default();
        // Occupy the permit first.
        let (s0, sm0) = (sim.clone(), sem.clone());
        sim.spawn(async move {
            let _p = sm0.acquire().await;
            s0.delay(D::from_millis(5)).await;
        });
        for i in 0..5 {
            let (s, sm, ord) = (sim.clone(), sem.clone(), order.clone());
            sim.spawn(async move {
                // Stagger arrival so queue order is well-defined.
                s.delay(D::from_micros(i as u64 + 1)).await;
                let _p = sm.acquire().await;
                ord.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dropped_acquire_does_not_leak_permit() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(1);
        // Holder takes the permit for 10 ms.
        let (s, sm) = (sim.clone(), sem.clone());
        sim.spawn(async move {
            let _p = sm.acquire().await;
            s.delay(D::from_millis(10)).await;
        });
        // Impatient waiter gives up after 1 ms (drops its Acquire).
        let (s2, sm2) = (sim.clone(), sem.clone());
        sim.spawn(async move {
            let mut acq = Box::pin(sm2.acquire());
            let timeout = s2.delay(D::from_millis(1));
            match crate::combinators::select2(&mut acq, timeout).await {
                crate::combinators::Either::Left(_p) => panic!("should have timed out"),
                crate::combinators::Either::Right(()) => drop(acq),
            }
        });
        // Patient waiter must still eventually get the permit.
        let got = Rc::new(Cell::new(false));
        let (sm3, g) = (sem.clone(), got.clone());
        let s3 = sim.clone();
        sim.spawn(async move {
            s3.delay(D::from_millis(2)).await;
            let _p = sm3.acquire().await;
            g.set(true);
        });
        sim.run();
        assert!(got.get());
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(1);
        let p = sem.try_acquire().unwrap();
        assert!(sem.try_acquire().is_none());
        drop(p);
        assert!(sem.try_acquire().is_some());
        drop(sim);
    }

    #[test]
    fn signal_releases_all_waiters() {
        let sim = Sim::new(1);
        let sig = Signal::new();
        let released = Rc::new(Cell::new(0u32));
        for _ in 0..4 {
            let (sg, r) = (sig.clone(), released.clone());
            sim.spawn(async move {
                sg.wait().await;
                r.set(r.get() + 1);
            });
        }
        let (s, sg) = (sim.clone(), sig.clone());
        sim.spawn(async move {
            s.delay(D::from_secs(1)).await;
            sg.fire();
        });
        sim.run();
        assert_eq!(released.get(), 4);
        assert!(sig.is_fired());
    }

    #[test]
    fn channel_delivers_in_order() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        let got: Rc<RefCell<Vec<u32>>> = Rc::default();
        let g = got.clone();
        sim.spawn(async move {
            while let Some(v) = rx.recv().await {
                g.borrow_mut().push(v);
            }
        });
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..5 {
                tx.send(i);
                s.delay(D::from_millis(1)).await;
            }
            // tx drops here -> channel closes -> receiver exits.
        });
        sim.run();
        assert_eq!(*got.borrow(), vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.live_tasks(), 0, "receiver must exit on close");
    }

    #[test]
    fn channel_mpmc_work_sharing() {
        let sim = Sim::new(7);
        let (tx, rx) = channel::<u32>();
        let counts: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(vec![0; 3]));
        for w in 0..3usize {
            let (rxc, c, s) = (rx.clone(), counts.clone(), sim.clone());
            sim.spawn(async move {
                while let Some(_v) = rxc.recv().await {
                    c.borrow_mut()[w] += 1;
                    s.delay(D::from_millis(3)).await;
                }
            });
        }
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..30 {
                tx.send(i);
                s.delay(D::from_millis(1)).await;
            }
        });
        sim.run();
        let total: u32 = counts.borrow().iter().sum();
        assert_eq!(total, 30);
        // Work must actually be shared across all three consumers.
        assert!(
            counts.borrow().iter().all(|&c| c > 0),
            "{:?}",
            counts.borrow()
        );
    }

    #[test]
    fn channel_close_drains_buffer_first() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        tx.send(1);
        tx.send(2);
        drop(tx);
        let got: Rc<RefCell<Vec<Option<u32>>>> = Rc::default();
        let g = got.clone();
        sim.spawn(async move {
            g.borrow_mut().push(rx.recv().await);
            g.borrow_mut().push(rx.recv().await);
            g.borrow_mut().push(rx.recv().await);
        });
        sim.run();
        assert_eq!(*got.borrow(), vec![Some(1), Some(2), None]);
    }
}
