//! Small future combinators (the `futures` crate is not available
//! offline): two-way select, join-all, and a deadline wrapper.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::sim::Sim;
use crate::time::SimDuration;

/// Result of [`select2`].
#[derive(Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Race two futures; the loser is dropped (or, if passed by `&mut`, left
/// where it was so the caller can keep polling it — the pattern the task
/// monitor uses to race work against a kill signal).
pub fn select2<A, B>(a: A, b: B) -> Select2<A, B>
where
    A: Future,
    B: Future,
{
    Select2 {
        a: Some(a),
        b: Some(b),
    }
}

/// Future returned by [`select2`].
pub struct Select2<A, B> {
    a: Option<A>,
    b: Option<B>,
}

impl<A, B> Future for Select2<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    type Output = Either<A::Output, B::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        if let Some(a) = this.a.as_mut() {
            if let Poll::Ready(v) = Pin::new(a).poll(cx) {
                this.a = None;
                return Poll::Ready(Either::Left(v));
            }
        }
        if let Some(b) = this.b.as_mut() {
            if let Poll::Ready(v) = Pin::new(b).poll(cx) {
                this.b = None;
                return Poll::Ready(Either::Right(v));
            }
        }
        Poll::Pending
    }
}

/// Drive a set of futures to completion concurrently, returning their
/// outputs in input order.
pub async fn join_all<F>(futures: Vec<F>) -> Vec<F::Output>
where
    F: Future,
{
    JoinAll {
        slots: futures
            .into_iter()
            .map(|f| JoinSlot::Pending(Box::pin(f)))
            .collect(),
    }
    .await
}

enum JoinSlot<F: Future> {
    Pending(Pin<Box<F>>),
    Done(Option<F::Output>),
}

struct JoinAll<F: Future> {
    slots: Vec<JoinSlot<F>>,
}

// Safe: the contained futures are heap-pinned (`Pin<Box<F>>`), so moving
// the `JoinAll` wrapper itself never moves a pinned future.
impl<F: Future> Unpin for JoinAll<F> {}

impl<F: Future> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut all_done = true;
        for slot in this.slots.iter_mut() {
            if let JoinSlot::Pending(f) = slot {
                match f.as_mut().poll(cx) {
                    Poll::Ready(v) => *slot = JoinSlot::Done(Some(v)),
                    Poll::Pending => all_done = false,
                }
            }
        }
        if !all_done {
            return Poll::Pending;
        }
        let outs = this
            .slots
            .iter_mut()
            .map(|s| match s {
                JoinSlot::Done(v) => v.take().expect("output taken twice"),
                JoinSlot::Pending(_) => unreachable!(),
            })
            .collect();
        Poll::Ready(outs)
    }
}

/// Error returned by [`timeout`] when the deadline fires first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Run `fut` but give up (dropping it) if `d` of virtual time passes first.
pub async fn timeout<F: Future>(sim: &Sim, d: SimDuration, fut: F) -> Result<F::Output, Elapsed> {
    let fut = Box::pin(fut);
    let delay = sim.delay(d);
    match select2(fut, delay).await {
        Either::Left(v) => Ok(v),
        Either::Right(()) => Err(Elapsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration as D;

    #[test]
    fn select_picks_earlier_future() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let fast = Box::pin(async {
                s.delay(D::from_millis(1)).await;
                "fast"
            });
            let slow = Box::pin(async {
                s.delay(D::from_millis(5)).await;
                "slow"
            });
            select2(fast, slow).await
        });
        sim.run();
        assert_eq!(h.try_take(), Some(Either::Left("fast")));
    }

    #[test]
    fn select_prefers_left_on_tie() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let a = Box::pin(s.delay(D::from_millis(2)));
            let b = Box::pin(s.delay(D::from_millis(2)));
            select2(a, b).await
        });
        sim.run();
        assert!(matches!(h.try_take(), Some(Either::Left(()))));
    }

    #[test]
    fn join_all_returns_in_input_order() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let futs: Vec<_> = (0..5u64)
                .map(|i| {
                    let s = s.clone();
                    async move {
                        // Later entries finish earlier; output order must
                        // still follow input order.
                        s.delay(D::from_millis(10 - i)).await;
                        i
                    }
                })
                .collect();
            join_all(futs).await
        });
        sim.run();
        assert_eq!(h.try_take(), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn timeout_expires() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let slow = async {
                s.delay(D::from_secs(10)).await;
                7u32
            };
            timeout(&s, D::from_secs(1), slow).await
        });
        sim.run();
        assert_eq!(h.try_take(), Some(Err(Elapsed)));
        // Timed-out process released everything: sim must be quiescent at
        // the timeout, not at the abandoned 10s delay... but the cancelled
        // delay's heap entry still fires harmlessly; clock may advance.
    }

    #[test]
    fn timeout_passes_through_fast_result() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let quick = async {
                s.delay(D::from_millis(1)).await;
                7u32
            };
            timeout(&s, D::from_secs(1), quick).await
        });
        sim.run();
        assert_eq!(h.try_take(), Some(Ok(7)));
    }
}
