//! Plain-text report rendering: ASCII tables for the terminal (the
//! regeneration binaries print paper-style tables with these) and CSV for
//! downstream plotting.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-justify (labels).
    Left,
    /// Right-justify (numbers).
    Right,
}

/// A simple monospace table builder.
pub struct AsciiTable {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Start a table with the given column headers; all columns default to
    /// right alignment except the first.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; headers.len()];
        if !aligns.is_empty() {
            aligns[0] = Align::Left;
        }
        AsciiTable {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Set a title rendered above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Override per-column alignment.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns;
        self
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a `String`.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String], out: &mut String| {
            for i in 0..ncols {
                let cell = &cells[i];
                let w = widths[i];
                match self.aligns[i] {
                    Align::Left => {
                        let _ = write!(out, " {cell:<w$} ");
                    }
                    Align::Right => {
                        let _ = write!(out, " {cell:>w$} ");
                    }
                }
                if i + 1 < ncols {
                    out.push('|');
                }
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &mut out);
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Minimal CSV writer (quotes only when needed).
#[derive(Default)]
pub struct Csv {
    buf: String,
}

impl Csv {
    /// Empty document.
    pub fn new() -> Self {
        Csv { buf: String::new() }
    }

    /// Append one row of cells.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        let mut first = true;
        for c in cells {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let c = c.as_ref();
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                self.buf.push('"');
                self.buf.push_str(&c.replace('"', "\"\""));
                self.buf.push('"');
            } else {
                self.buf.push_str(c);
            }
        }
        self.buf.push('\n');
        self
    }

    /// The document so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consume into the document string.
    pub fn into_string(self) -> String {
        self.buf
    }
}

/// Format a float with `prec` decimals, trimming to at most 12 chars —
/// the uniform number style used across reports.
pub fn num(v: f64, prec: usize) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else {
        format!("{v:.prec$}")
    }
}

/// Format a fraction as a percentage with two decimals ("4.57%").
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = AsciiTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].chars().all(|c| c == '-' || c == '+'));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        // Numbers right-aligned: "1" ends at same column as "12345".
        assert!(lines[2].ends_with("1 "));
        assert!(lines[3].ends_with("12345 "));
    }

    #[test]
    fn table_title_and_len() {
        let mut t = AsciiTable::new(vec!["x"]).with_title("Table 1");
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().starts_with("Table 1\n"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let mut t = AsciiTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut c = Csv::new();
        c.row(&["plain", "with,comma", "with\"quote"]);
        assert_eq!(c.as_str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
    }

    #[test]
    fn num_and_pct_formatting() {
        assert_eq!(num(3.14159, 2), "3.14");
        assert_eq!(num(f64::NAN, 2), "n/a");
        assert_eq!(pct(0.0457), "4.57%");
    }
}
