//! Probability distributions for model parameters.
//!
//! Implemented in-tree (the `rand_distr` crate is not in the approved
//! offline set) with the standard textbook samplers: inverse-CDF for
//! exponential/Pareto, Box–Muller for the normal family, inverse-CDF
//! interpolation for empirical distributions, and cumulative-weight
//! search for discrete mixtures.

use crate::rng::SimRng;

/// A samplable real-valued distribution.
pub trait Dist {
    /// Draw one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Theoretical mean where defined (used by tests and by model code
    /// that needs expectations, e.g. capacity planning in the harness).
    fn mean(&self) -> f64;
}

/// Degenerate distribution: always `value`.
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub f64);

impl Dist for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Construct; panics if `hi < lo`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(hi >= lo, "Uniform bounds inverted: [{lo}, {hi})");
        Uniform { lo, hi }
    }
}

impl Dist for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Exponential with the given mean (`rate = 1/mean`). The workhorse for
/// inter-arrival and memoryless service times.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    /// Mean of the distribution (must be positive).
    pub mean: f64,
}

impl Exp {
    /// Construct from the mean; panics on non-positive mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "Exp mean must be positive, got {mean}");
        Exp { mean }
    }
}

impl Dist for Exp {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; `1 - u` avoids ln(0) since u ∈ [0, 1).
        let u = rng.f64();
        -self.mean * (1.0 - u).ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Normal(mu, sigma) via Box–Muller (one of the pair is discarded so the
/// sampler stays stateless and fork-friendly).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation (non-negative).
    pub sigma: f64,
}

impl Normal {
    /// Construct; panics on negative sigma.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "Normal sigma must be >= 0, got {sigma}");
        Normal { mu, sigma }
    }

    fn standard(rng: &mut SimRng) -> f64 {
        let u1 = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Dist for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mu + self.sigma * Normal::standard(rng)
    }
    fn mean(&self) -> f64 {
        self.mu
    }
}

/// Normal truncated below at `floor` (durations must not be negative;
/// resampling would bias the fingerprint-relevant draw count, so we clamp).
#[derive(Debug, Clone, Copy)]
pub struct TruncNormal {
    /// The underlying normal.
    pub normal: Normal,
    /// Samples below this are clamped up to it.
    pub floor: f64,
}

impl TruncNormal {
    /// Normal(mu, sigma) clamped below at `floor`.
    pub fn new(mu: f64, sigma: f64, floor: f64) -> Self {
        TruncNormal {
            normal: Normal::new(mu, sigma),
            floor,
        }
    }
}

impl Dist for TruncNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.normal.sample(rng).max(self.floor)
    }
    fn mean(&self) -> f64 {
        // Approximation: exact only when truncation mass is negligible,
        // which holds for all calibrated uses (floor ≥ ~3σ below mu).
        self.normal.mu.max(self.floor)
    }
}

/// LogNormal parameterized by the *target* mean and sigma of the log space.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of the underlying normal (log space).
    pub mu: f64,
    /// Sigma of the underlying normal (log space).
    pub sigma: f64,
}

impl LogNormal {
    /// From log-space parameters directly.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Construct so the distribution has the given linear-space mean and
    /// the given log-space sigma (how heavy the right tail is).
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0);
        LogNormal {
            mu: mean.ln() - sigma * sigma / 2.0,
            sigma,
        }
    }
}

impl Dist for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Pareto (heavy tail) with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    /// Minimum value (scale).
    pub x_min: f64,
    /// Tail exponent; heavier tail for smaller alpha.
    pub alpha: f64,
}

impl Pareto {
    /// Construct; panics on non-positive parameters.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0);
        Pareto { x_min, alpha }
    }
}

impl Dist for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
        self.x_min / u.powf(1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        if self.alpha > 1.0 {
            self.alpha * self.x_min / (self.alpha - 1.0)
        } else {
            f64::INFINITY
        }
    }
}

/// Weibull with scale `lambda` and shape `k`, via inverse CDF
/// (`lambda * (-ln(1-u))^(1/k)`). `k = 1` reduces to the exponential;
/// `k < 1` gives the heavy-tailed on/off sojourns that characterize
/// virtualized-web-app arrival burstiness (Wang et al.), which is what
/// the open-loop workload generator (`simload`) draws from.
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    /// Scale parameter (positive).
    pub lambda: f64,
    /// Shape parameter (positive); `< 1` is heavier-than-exponential.
    pub k: f64,
}

/// `ln Γ(x)` for `x > 0` (Lanczos, g = 7, 9 coefficients) — enough
/// precision for Weibull moment bookkeeping, with no libm dependency.
fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // Published Lanczos coefficients, kept digit-for-digit.
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

impl Weibull {
    /// Construct from scale and shape; panics on non-positive parameters.
    pub fn new(lambda: f64, k: f64) -> Self {
        assert!(lambda > 0.0 && k > 0.0, "Weibull({lambda}, {k})");
        Weibull { lambda, k }
    }

    /// Construct so the distribution has the given mean at shape `k`
    /// (`lambda = mean / Γ(1 + 1/k)`).
    pub fn with_mean(mean: f64, k: f64) -> Self {
        assert!(mean > 0.0 && k > 0.0, "Weibull mean {mean}, shape {k}");
        Weibull {
            lambda: mean / ln_gamma(1.0 + 1.0 / k).exp(),
            k,
        }
    }
}

impl Dist for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
        self.lambda * (-u.ln()).powf(1.0 / self.k)
    }
    fn mean(&self) -> f64 {
        self.lambda * ln_gamma(1.0 + 1.0 / self.k).exp()
    }
}

/// Empirical distribution given as CDF knots `(value, cum_prob)`;
/// sampling inverts the CDF with linear interpolation between knots.
/// This is how the paper's published histograms (Figs 4 and 5) are turned
/// back into generators.
#[derive(Debug, Clone)]
pub struct Empirical {
    knots: Vec<(f64, f64)>,
}

impl Empirical {
    /// `knots` must be non-empty with strictly increasing values and
    /// non-decreasing probabilities ending at 1.0.
    pub fn from_cdf(knots: Vec<(f64, f64)>) -> Self {
        assert!(!knots.is_empty(), "empirical CDF needs at least one knot");
        for w in knots.windows(2) {
            assert!(w[1].0 >= w[0].0, "CDF values must be non-decreasing");
            assert!(w[1].1 >= w[0].1, "CDF probabilities must be non-decreasing");
        }
        let last = knots.last().unwrap().1;
        assert!(
            (last - 1.0).abs() < 1e-9,
            "CDF must end at probability 1.0, ends at {last}"
        );
        Empirical { knots }
    }

    /// Build from raw samples (each sample becomes an equal-mass knot).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = samples.len();
        let knots = samples
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
            .collect();
        Empirical { knots }
    }

    /// Value at cumulative probability `p` (the quantile function).
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let mut prev = (self.knots[0].0, 0.0);
        for &(v, cp) in &self.knots {
            if p <= cp {
                let (pv, pp) = prev;
                if cp - pp < 1e-12 {
                    return v;
                }
                let t = (p - pp) / (cp - pp);
                return pv + t * (v - pv);
            }
            prev = (v, cp);
        }
        self.knots.last().unwrap().0
    }
}

impl Dist for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.f64())
    }
    fn mean(&self) -> f64 {
        // Trapezoid over the inverse CDF.
        let mut mean = 0.0;
        let mut prev = (self.knots[0].0, 0.0);
        for &(v, cp) in &self.knots {
            let (pv, pp) = prev;
            mean += (cp - pp) * (v + pv) / 2.0;
            prev = (v, cp);
        }
        mean
    }
}

/// Finite mixture of component distributions with the given weights.
pub struct Mixture {
    components: Vec<(f64, Box<dyn Dist>)>,
    total_weight: f64,
}

impl Mixture {
    /// `components` are `(weight, dist)` pairs; weights need not sum to 1.
    pub fn new(components: Vec<(f64, Box<dyn Dist>)>) -> Self {
        assert!(!components.is_empty());
        let total_weight = components.iter().map(|(w, _)| *w).sum::<f64>();
        assert!(total_weight > 0.0);
        Mixture {
            components,
            total_weight,
        }
    }
}

impl Dist for Mixture {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let mut pick = rng.f64() * self.total_weight;
        for (w, d) in &self.components {
            if pick < *w {
                return d.sample(rng);
            }
            pick -= w;
        }
        self.components.last().unwrap().1.sample(rng)
    }
    fn mean(&self) -> f64 {
        self.components
            .iter()
            .map(|(w, d)| w / self.total_weight * d.mean())
            .sum()
    }
}

/// Weighted choice over `usize` indices (e.g. picking a task type by the
/// paper's observed mix).
#[derive(Debug, Clone)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// `weights` must be non-empty, non-negative, not all zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "negative weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "all weights zero");
        Discrete { cumulative }
    }

    /// Draw an index with probability proportional to its weight.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let pick = rng.f64() * total;
        // Linear scan: weight vectors here are tiny (≤ a dozen classes).
        self.cumulative
            .iter()
            .position(|&c| pick < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &dyn Dist, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    fn sample_std(d: &dyn Dist, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::from_seed(seed);
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        (samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64).sqrt()
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::from_seed(1);
        let d = Constant(3.5);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn uniform_moments() {
        let d = Uniform::new(2.0, 6.0);
        assert!((sample_mean(&d, 2, 50_000) - 4.0).abs() < 0.05);
    }

    #[test]
    fn exp_moments() {
        let d = Exp::with_mean(5.0);
        assert!((sample_mean(&d, 3, 100_000) - 5.0).abs() < 0.15);
        // std of exponential equals its mean.
        assert!((sample_std(&d, 3, 100_000) - 5.0).abs() < 0.25);
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0);
        assert!((sample_mean(&d, 4, 100_000) - 10.0).abs() < 0.05);
        assert!((sample_std(&d, 4, 100_000) - 2.0).abs() < 0.05);
    }

    #[test]
    fn trunc_normal_never_below_floor() {
        let d = TruncNormal::new(1.0, 5.0, 0.0);
        let mut rng = SimRng::from_seed(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn lognormal_hits_target_mean() {
        let d = LogNormal::with_mean(7.0, 0.8);
        assert!((d.mean() - 7.0).abs() < 1e-9);
        assert!((sample_mean(&d, 6, 200_000) - 7.0).abs() < 0.25);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        // k = 1: Weibull(λ, 1) == Exp(mean = λ).
        let d = Weibull::new(5.0, 1.0);
        assert!((d.mean() - 5.0).abs() < 1e-9, "mean={}", d.mean());
        assert!((sample_mean(&d, 21, 100_000) - 5.0).abs() < 0.15);
    }

    #[test]
    fn weibull_with_mean_hits_target_for_bursty_shapes() {
        for k in [0.5, 0.7, 1.0, 2.0] {
            let d = Weibull::with_mean(3.0, k);
            assert!((d.mean() - 3.0).abs() < 1e-6, "k={k} mean={}", d.mean());
            let m = sample_mean(&d, 22, 300_000);
            assert!((m - 3.0).abs() < 0.15, "k={k} sample mean={m}");
        }
        // Heavy shape (k < 1) has std > mean (burstier than exponential).
        let heavy = Weibull::with_mean(3.0, 0.5);
        assert!(sample_std(&heavy, 23, 200_000) > 3.5);
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(3) = 2, Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(3.0) - 2.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn pareto_respects_scale_and_mean() {
        let d = Pareto::new(2.0, 3.0);
        let mut rng = SimRng::from_seed(7);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
        assert!((sample_mean(&d, 7, 200_000) - d.mean()).abs() < 0.1);
        assert!(Pareto::new(1.0, 0.9).mean().is_infinite());
    }

    #[test]
    fn empirical_quantiles_interpolate() {
        // 50% of mass at <=1.0, 75% at <=2.0, rest up to 10.
        let d = Empirical::from_cdf(vec![(0.5, 0.0), (1.0, 0.5), (2.0, 0.75), (10.0, 1.0)]);
        assert!((d.quantile(0.5) - 1.0).abs() < 1e-9);
        assert!((d.quantile(0.75) - 2.0).abs() < 1e-9);
        assert!((d.quantile(0.625) - 1.5).abs() < 1e-9);
        assert_eq!(d.quantile(1.0), 10.0);
        // Sampled fractions track the CDF.
        let mut rng = SimRng::from_seed(8);
        let n = 50_000;
        let below1 = (0..n).filter(|_| d.sample(&mut rng) <= 1.0).count() as f64 / n as f64;
        assert!((below1 - 0.5).abs() < 0.01, "below1={below1}");
    }

    #[test]
    fn empirical_from_samples_median() {
        let d = Empirical::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        let med = d.quantile(0.5);
        assert!((2.0..=3.5).contains(&med), "median={med}");
    }

    #[test]
    #[should_panic(expected = "CDF must end at probability 1.0")]
    fn empirical_rejects_bad_cdf() {
        let _ = Empirical::from_cdf(vec![(1.0, 0.5)]);
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let m = Mixture::new(vec![
            (0.25, Box::new(Constant(0.0)) as Box<dyn Dist>),
            (0.75, Box::new(Constant(4.0))),
        ]);
        assert!((m.mean() - 3.0).abs() < 1e-9);
        assert!((sample_mean(&m, 9, 100_000) - 3.0).abs() < 0.05);
    }

    #[test]
    fn discrete_frequencies_track_weights() {
        let d = Discrete::new(&[1.0, 2.0, 7.0]);
        let mut rng = SimRng::from_seed(10);
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample_index(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.7).abs() < 0.01);
    }
}
