//! Deterministic per-component RNG streams.
//!
//! Every model component asks the simulation for a stream by label
//! (`sim.rng("blob.frontend")`). The stream seed is derived from the
//! simulation seed and the label, so adding a new component (or drawing a
//! different number of samples in one component) never perturbs any other
//! component's stream — the property that keeps calibration stable while
//! the simulator grows.
//!
//! The generator is a self-contained xoshiro256++ (the algorithm behind
//! `rand 0.8`'s 64-bit `SmallRng`), seeded through SplitMix64 and sampled
//! with the same widening-multiply rejection scheme as `rand`'s uniform
//! integer sampler. Keeping the bit stream identical to the previous
//! `rand`-backed implementation means every calibrated experiment result
//! is unchanged, while the crate now builds with no external
//! dependencies (offline / no-registry environments included).

/// FNV-1a over the label bytes: cheap, stable, good enough for stream
/// separation (streams are further mixed through SplitMix64).
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: turns correlated inputs into well-mixed seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ state (Blackman & Vigna). 64-bit output, 256-bit state;
/// tiny, fast, and more than adequate statistically for simulation.
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expand a 64-bit seed into the 256-bit state via a SplitMix64
    /// sequence (never all-zero).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut s = [0u64; 4];
        for slot in &mut s {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        Xoshiro256PlusPlus { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// `(hi, lo)` limbs of the 128-bit product `a * b`.
#[inline]
fn wmul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// A seeded random stream for one simulation component.
pub struct SimRng {
    rng: Xoshiro256PlusPlus,
}

impl SimRng {
    /// Derive the stream for `label` under base seed `seed`.
    pub fn for_stream(seed: u64, label: &str) -> Self {
        let derived = splitmix64(seed ^ splitmix64(fnv1a(label)));
        SimRng {
            rng: Xoshiro256PlusPlus::seed_from_u64(derived),
        }
    }

    /// Directly from a raw seed (tests, sub-streams).
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            rng: Xoshiro256PlusPlus::seed_from_u64(splitmix64(seed)),
        }
    }

    /// Fork a child stream; the child is independent of further draws from
    /// `self`.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let s = self.rng.next_u64();
        SimRng::for_stream(s, label)
    }

    /// Uniform in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        let scale = 1.0 / ((1u64 << 53) as f64);
        (self.rng.next_u64() >> 11) as f64 * scale
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, range)` by widening multiply with
    /// rejection of the biased zone (Lemire's method, as in `rand`).
    /// `range == 0` means "all 64 bits".
    #[inline]
    fn uniform_below(&mut self, range: u64) -> u64 {
        if range == 0 {
            return self.rng.next_u64();
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.rng.next_u64();
            let (hi, lo) = wmul(v, range);
            if lo <= zone {
                return hi;
            }
        }
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below(0)");
        self.uniform_below(bound)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_in: lo > hi");
        let range = hi.wrapping_sub(lo).wrapping_add(1);
        lo.wrapping_add(self.uniform_below(range))
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Raw 64 random bits.
    #[inline]
    pub fn bits(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_below(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize_below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::for_stream(42, "blob");
        let mut b = SimRng::for_stream(42, "blob");
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn different_labels_decorrelate() {
        let mut a = SimRng::for_stream(42, "blob");
        let mut b = SimRng::for_stream(42, "table");
        let same = (0..64).filter(|_| a.bits() == b.bits()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = SimRng::for_stream(1, "x");
        let mut b = SimRng::for_stream(2, "x");
        let same = (0..64).filter(|_| a.bits() == b.bits()).count();
        assert_eq!(same, 0);
    }

    /// Golden vector pinning the generator to the exact bit stream of the
    /// previous `rand::rngs::SmallRng` (xoshiro256++) implementation: any
    /// change to seeding or stepping shifts every calibrated result.
    #[test]
    fn bit_stream_matches_reference_smallrng() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0x5317_5d61_490b_23df,
                0x61da_6f3d_c380_d507,
                0x5c0f_df91_ec9a_7bfc,
                0x02ee_bf8c_3bbe_5e1a,
            ]
        );
    }

    #[test]
    fn uniform_f64_in_unit_interval_with_sane_mean() {
        let mut rng = SimRng::from_seed(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut rng = SimRng::from_seed(11);
        let hits = (0..50_000).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::from_seed(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent1 = SimRng::from_seed(9);
        let mut child1 = parent1.fork("c");
        let mut parent2 = SimRng::from_seed(9);
        let mut child2 = parent2.fork("c");
        for _ in 0..20 {
            assert_eq!(child1.bits(), child2.bits());
        }
        // Parent continues deterministically after fork too.
        for _ in 0..20 {
            assert_eq!(parent1.bits(), parent2.bits());
        }
    }

    #[test]
    fn u64_in_is_inclusive() {
        let mut rng = SimRng::from_seed(13);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = rng.u64_in(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn u64_in_full_range_does_not_hang() {
        let mut rng = SimRng::from_seed(17);
        let v = rng.u64_in(0, u64::MAX);
        let w = rng.u64_in(0, u64::MAX);
        // Two full-range draws are raw 64-bit outputs; just exercise them.
        assert_ne!(v, w);
    }

    #[test]
    fn u64_below_is_unbiased_on_small_bound() {
        let mut rng = SimRng::from_seed(19);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.u64_below(3) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts={counts:?}");
        }
    }
}
