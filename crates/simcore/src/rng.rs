//! Deterministic per-component RNG streams.
//!
//! Every model component asks the simulation for a stream by label
//! (`sim.rng("blob.frontend")`). The stream seed is derived from the
//! simulation seed and the label, so adding a new component (or drawing a
//! different number of samples in one component) never perturbs any other
//! component's stream — the property that keeps calibration stable while
//! the simulator grows.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// FNV-1a over the label bytes: cheap, stable, good enough for stream
/// separation (streams are further mixed through SplitMix64).
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: turns correlated inputs into well-mixed seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded random stream for one simulation component.
pub struct SimRng {
    rng: SmallRng,
}

impl SimRng {
    /// Derive the stream for `label` under base seed `seed`.
    pub fn for_stream(seed: u64, label: &str) -> Self {
        let derived = splitmix64(seed ^ splitmix64(fnv1a(label)));
        SimRng {
            rng: SmallRng::seed_from_u64(derived),
        }
    }

    /// Directly from a raw seed (tests, sub-streams).
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            rng: SmallRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// Fork a child stream; the child is independent of further draws from
    /// `self`.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let s = self.rng.gen::<u64>();
        SimRng::for_stream(s, label)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Raw 64 random bits.
    #[inline]
    pub fn bits(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_below(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize_below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::for_stream(42, "blob");
        let mut b = SimRng::for_stream(42, "blob");
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn different_labels_decorrelate() {
        let mut a = SimRng::for_stream(42, "blob");
        let mut b = SimRng::for_stream(42, "table");
        let same = (0..64).filter(|_| a.bits() == b.bits()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = SimRng::for_stream(1, "x");
        let mut b = SimRng::for_stream(2, "x");
        let same = (0..64).filter(|_| a.bits() == b.bits()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_f64_in_unit_interval_with_sane_mean() {
        let mut rng = SimRng::from_seed(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut rng = SimRng::from_seed(11);
        let hits = (0..50_000).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::from_seed(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent1 = SimRng::from_seed(9);
        let mut child1 = parent1.fork("c");
        let mut parent2 = SimRng::from_seed(9);
        let mut child2 = parent2.fork("c");
        for _ in 0..20 {
            assert_eq!(child1.bits(), child2.bits());
        }
        // Parent continues deterministically after fork too.
        for _ in 0..20 {
            assert_eq!(parent1.bits(), parent2.bits());
        }
    }

    #[test]
    fn u64_in_is_inclusive() {
        let mut rng = SimRng::from_seed(13);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = rng.u64_in(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }
}
