//! A minimal single-threaded task executor for simulation processes.
//!
//! Simulation processes are plain `async fn`s. They are **not** `Send`:
//! a whole simulation lives on one thread (parallelism in this project
//! happens *across* independent simulations, one per sweep point). The
//! only cross-thread-capable piece is the waker, because [`std::task::Waker`]
//! requires `Send + Sync`; we satisfy that with an `Arc`-backed ready queue
//! (a `std::sync::Mutex<VecDeque>` that is in practice uncontended).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Identifier of a spawned task (slot index in the task slab).
pub(crate) type TaskId = usize;

/// Queue of tasks that have been woken and must be polled before virtual
/// time advances.
pub(crate) struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn new() -> Arc<Self> {
        Arc::new(ReadyQueue {
            queue: Mutex::new(VecDeque::new()),
        })
    }

    pub(crate) fn push(&self, id: TaskId) {
        self.queue
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
    }

    fn pop(&self) -> Option<TaskId> {
        self.queue.lock().expect("ready queue poisoned").pop_front()
    }
}

/// Waker for one task: waking pushes the task id onto the ready queue.
struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// One slab slot. `Running` marks a task whose future has been taken out
/// for polling, so that re-entrant `spawn`/`wake` calls from inside the
/// poll cannot alias it.
enum Slot {
    Vacant { next_free: Option<TaskId> },
    Occupied { future: LocalFuture, waker: Waker },
    Running,
}

/// The task slab plus ready queue. Owned by the simulation, `!Send`.
pub(crate) struct Executor {
    slots: RefCell<Vec<Slot>>,
    free_head: RefCell<Option<TaskId>>,
    ready: Arc<ReadyQueue>,
    live: std::cell::Cell<usize>,
    spawned_total: std::cell::Cell<u64>,
}

impl Executor {
    pub(crate) fn new() -> Self {
        Executor {
            slots: RefCell::new(Vec::new()),
            free_head: RefCell::new(None),
            ready: ReadyQueue::new(),
            live: std::cell::Cell::new(0),
            spawned_total: std::cell::Cell::new(0),
        }
    }

    /// Number of tasks that have not yet completed.
    pub(crate) fn live_tasks(&self) -> usize {
        self.live.get()
    }

    /// Total tasks ever spawned (simulation statistic).
    pub(crate) fn spawned_total(&self) -> u64 {
        self.spawned_total.get()
    }

    /// Insert a task and mark it ready for its first poll.
    pub(crate) fn spawn(&self, future: LocalFuture) -> TaskId {
        let id = {
            let mut slots = self.slots.borrow_mut();
            let mut free = self.free_head.borrow_mut();
            match *free {
                Some(id) => {
                    let next = match slots[id] {
                        Slot::Vacant { next_free } => next_free,
                        _ => unreachable!("free list points at non-vacant slot"),
                    };
                    *free = next;
                    id
                }
                None => {
                    slots.push(Slot::Vacant { next_free: None });
                    slots.len() - 1
                }
            }
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.ready),
        }));
        self.slots.borrow_mut()[id] = Slot::Occupied { future, waker };
        self.live.set(self.live.get() + 1);
        self.spawned_total.set(self.spawned_total.get() + 1);
        self.ready.push(id);
        id
    }

    /// Poll every ready task until the ready queue drains. Returns the
    /// number of polls performed. Tasks spawned or woken during polling are
    /// processed in the same drain (still at the same virtual time).
    pub(crate) fn drain_ready(&self) -> u64 {
        let mut polls = 0;
        while let Some(id) = self.ready.pop() {
            // Take the future out so the slab is not borrowed across the
            // poll (the poll may spawn new tasks or wake this one).
            let taken = {
                let mut slots = self.slots.borrow_mut();
                match &mut slots[id] {
                    slot @ Slot::Occupied { .. } => {
                        let old = std::mem::replace(slot, Slot::Running);
                        match old {
                            Slot::Occupied { future, waker } => Some((future, waker)),
                            _ => unreachable!(),
                        }
                    }
                    // Stale wake for a finished/cancelled task: ignore.
                    Slot::Vacant { .. } => None,
                    // Duplicate wake while the task is mid-poll: the task
                    // will be re-queued by its own waker if still pending;
                    // a duplicate entry is harmless to drop here because
                    // the re-queue happened before we popped this one.
                    Slot::Running => None,
                }
            };
            let Some((mut future, waker)) = taken else {
                continue;
            };
            polls += 1;
            let mut cx = Context::from_waker(&waker);
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(()) => self.release(id),
                Poll::Pending => {
                    self.slots.borrow_mut()[id] = Slot::Occupied { future, waker };
                }
            }
        }
        polls
    }

    fn release(&self, id: TaskId) {
        let mut slots = self.slots.borrow_mut();
        let mut free = self.free_head.borrow_mut();
        slots[id] = Slot::Vacant { next_free: *free };
        *free = Some(id);
        self.live.set(self.live.get() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn spawn_and_complete_immediately_ready_task() {
        let ex = Executor::new();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        ex.spawn(Box::pin(async move {
            h.set(true);
        }));
        assert_eq!(ex.live_tasks(), 1);
        ex.drain_ready();
        assert!(hit.get());
        assert_eq!(ex.live_tasks(), 0);
    }

    #[test]
    fn slots_are_reused_after_completion() {
        let ex = Executor::new();
        let a = ex.spawn(Box::pin(async {}));
        ex.drain_ready();
        let b = ex.spawn(Box::pin(async {}));
        assert_eq!(a, b, "freed slot should be reused");
        ex.drain_ready();
        assert_eq!(ex.spawned_total(), 2);
    }

    #[test]
    fn task_spawned_during_drain_runs_in_same_drain() {
        struct YieldOnce(bool);
        impl Future for YieldOnce {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.0 {
                    Poll::Ready(())
                } else {
                    self.0 = true;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }

        let ex = Rc::new(Executor::new());
        let order = Rc::new(RefCell::new(Vec::new()));
        let (o1, o2) = (order.clone(), order.clone());
        let ex2 = Rc::clone(&ex);
        ex.spawn(Box::pin(async move {
            o1.borrow_mut().push("outer");
            ex2.spawn(Box::pin(async move {
                o2.borrow_mut().push("inner");
            }));
            YieldOnce(false).await;
        }));
        ex.drain_ready();
        assert_eq!(*order.borrow(), vec!["outer", "inner"]);
        assert_eq!(ex.live_tasks(), 0);
    }

    #[test]
    fn pending_task_stays_live_until_woken() {
        struct WaitForFlag(Rc<Cell<bool>>, Rc<RefCell<Option<Waker>>>);
        impl Future for WaitForFlag {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.0.get() {
                    Poll::Ready(())
                } else {
                    *self.1.borrow_mut() = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
        let ex = Executor::new();
        let flag = Rc::new(Cell::new(false));
        let waker_cell: Rc<RefCell<Option<Waker>>> = Rc::new(RefCell::new(None));
        ex.spawn(Box::pin(WaitForFlag(flag.clone(), waker_cell.clone())));
        ex.drain_ready();
        assert_eq!(ex.live_tasks(), 1);
        flag.set(true);
        waker_cell.borrow().as_ref().unwrap().wake_by_ref();
        ex.drain_ready();
        assert_eq!(ex.live_tasks(), 0);
    }
}
