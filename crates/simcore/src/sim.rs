//! The simulation driver: virtual clock, event heap, process spawning.
//!
//! A [`Sim`] is a cheaply-cloneable handle (internally `Rc`) to one
//! simulation world. Everything scheduled against it is totally ordered by
//! `(time, sequence-number)`, so a run is a pure function of the initial
//! seed — the basis of the determinism guarantees the higher layers
//! (and the reproduction experiments) rely on.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::Executor;
use crate::time::{SimDuration, SimTime};

/// What a fired event does.
enum Action {
    /// Wake a suspended task.
    Wake(Waker),
    /// Run an arbitrary callback against the simulation.
    Call(Box<dyn FnOnce(&Sim)>),
}

struct EventEntry {
    at: SimTime,
    seq: u64,
    cancelled: Rc<Cell<bool>>,
    action: Action,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
    // first. seq breaks ties FIFO, which makes runs reproducible.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Handle to a scheduled event that allows cancelling it before it fires.
///
/// Cancellation is lazy: the heap entry stays in place and is skipped when
/// popped. This is how in-flight network transfers get rescheduled when
/// fair-share rates change.
#[derive(Clone)]
pub struct EventHandle {
    cancelled: Rc<Cell<bool>>,
}

impl EventHandle {
    /// Cancel the event. Idempotent; harmless after the event fired.
    pub fn cancel(&self) {
        self.cancelled.set(true);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.get()
    }
}

/// Kernel-level happenings observable through [`Sim::add_kernel_hook`].
///
/// Hooks exist so external subsystems (the `simtrace` tracer, the
/// `simfault` injector) can watch executor activity without the kernel
/// depending on them. When no hook is installed the cost is a single
/// flag check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelEvent {
    /// A simulation process was spawned.
    TaskSpawned,
    /// A scheduled wake event fired (a suspended task resumes).
    WakeFired,
    /// A scheduled callback event fired.
    CallFired,
}

/// Shape of a kernel observation hook (see [`Sim::add_kernel_hook`]).
pub type KernelHook = Rc<dyn Fn(&Sim, KernelEvent)>;

/// Handle identifying one installed kernel hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelHookId(u64);

struct SimInner {
    now: Cell<SimTime>,
    seq: Cell<u64>,
    heap: RefCell<BinaryHeap<EventEntry>>,
    exec: Executor,
    events_fired: Cell<u64>,
    trace_hash: Cell<u64>,
    base_seed: u64,
    hooks: RefCell<Vec<(u64, KernelHook)>>,
    next_hook_id: Cell<u64>,
    has_hook: Cell<bool>,
}

/// A handle to one simulation world. Clone freely; all clones share state.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<SimInner>,
}

impl Sim {
    /// Create a simulation whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Rc::new(SimInner {
                now: Cell::new(SimTime::ZERO),
                seq: Cell::new(0),
                heap: RefCell::new(BinaryHeap::new()),
                exec: Executor::new(),
                events_fired: Cell::new(0),
                trace_hash: Cell::new(0xcbf2_9ce4_8422_2325),
                base_seed: seed,
                hooks: RefCell::new(Vec::new()),
                next_hook_id: Cell::new(0),
                has_hook: Cell::new(false),
            }),
        }
    }

    /// Install a kernel observation hook. Hooks fire on process spawn
    /// and on every event pop, in installation order; a hook must not
    /// re-enter the simulation. Several independent subsystems (tracer,
    /// fault injector) can each hold one; remove with
    /// [`remove_kernel_hook`](Self::remove_kernel_hook). With no hooks
    /// installed the emission cost is a single flag check.
    pub fn add_kernel_hook(&self, hook: KernelHook) -> KernelHookId {
        let id = self.inner.next_hook_id.get();
        self.inner.next_hook_id.set(id + 1);
        self.inner.hooks.borrow_mut().push((id, hook));
        self.inner.has_hook.set(true);
        KernelHookId(id)
    }

    /// Remove a previously installed kernel hook; unknown ids are a
    /// no-op (a guard may outlive a hook explicitly removed earlier).
    pub fn remove_kernel_hook(&self, id: KernelHookId) {
        let mut hooks = self.inner.hooks.borrow_mut();
        hooks.retain(|(h, _)| *h != id.0);
        self.inner.has_hook.set(!hooks.is_empty());
    }

    #[inline]
    fn emit_kernel(&self, ev: KernelEvent) {
        if self.inner.has_hook.get() {
            // Clone out so hooks can (un)install hooks while iterating.
            let hooks: Vec<KernelHook> = self
                .inner
                .hooks
                .borrow()
                .iter()
                .map(|(_, h)| Rc::clone(h))
                .collect();
            for h in hooks {
                h(self, ev);
            }
        }
    }

    /// The seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.inner.base_seed
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Derive a deterministic RNG stream for a named component.
    pub fn rng(&self, label: &str) -> crate::rng::SimRng {
        crate::rng::SimRng::for_stream(self.inner.base_seed, label)
    }

    fn next_seq(&self) -> u64 {
        let s = self.inner.seq.get();
        self.inner.seq.set(s + 1);
        s
    }

    fn push_event(&self, at: SimTime, action: Action) -> EventHandle {
        debug_assert!(
            at >= self.now(),
            "event scheduled in the past: {at:?} < {:?}",
            self.now()
        );
        let cancelled = Rc::new(Cell::new(false));
        self.inner.heap.borrow_mut().push(EventEntry {
            at,
            seq: self.next_seq(),
            cancelled: Rc::clone(&cancelled),
            action,
        });
        EventHandle { cancelled }
    }

    /// Schedule `f` to run at absolute time `at`.
    pub fn schedule_at(&self, at: SimTime, f: impl FnOnce(&Sim) + 'static) -> EventHandle {
        self.push_event(at, Action::Call(Box::new(f)))
    }

    /// Schedule `f` to run after `d` has elapsed.
    pub fn schedule_in(&self, d: SimDuration, f: impl FnOnce(&Sim) + 'static) -> EventHandle {
        self.schedule_at(self.now() + d, f)
    }

    /// Spawn a simulation process. The future runs on this simulation's
    /// executor; its `Output` is retrievable through the returned
    /// [`JoinHandle`].
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(JoinState {
            result: RefCell::new(None),
            waiters: RefCell::new(Vec::new()),
        });
        let st = Rc::clone(&state);
        self.inner.exec.spawn(Box::pin(async move {
            let out = future.await;
            *st.result.borrow_mut() = Some(out);
            for w in st.waiters.borrow_mut().drain(..) {
                w.wake();
            }
        }));
        self.emit_kernel(KernelEvent::TaskSpawned);
        JoinHandle { state }
    }

    /// Future that completes after `d` of virtual time.
    pub fn delay(&self, d: SimDuration) -> Delay {
        self.sleep_until(self.now() + d)
    }

    /// Future that completes at absolute virtual time `deadline` (or
    /// immediately if the deadline has passed).
    pub fn sleep_until(&self, deadline: SimTime) -> Delay {
        Delay {
            sim: self.clone(),
            deadline,
            event: None,
        }
    }

    /// Wake `waker` at absolute time `at`; returns a cancellation handle.
    /// Building block for cancellable waits (network transfer rescheduling).
    pub fn wake_at(&self, at: SimTime, waker: Waker) -> EventHandle {
        self.push_event(at, Action::Wake(waker))
    }

    fn fire_next(&self) -> bool {
        loop {
            let entry = match self.inner.heap.borrow_mut().pop() {
                Some(e) => e,
                None => return false,
            };
            if entry.cancelled.get() {
                continue;
            }
            debug_assert!(entry.at >= self.now());
            self.inner.now.set(entry.at);
            self.inner
                .events_fired
                .set(self.inner.events_fired.get() + 1);
            // Fold (time, seq) into the trace fingerprint (FNV-1a style);
            // two runs with the same seed must produce identical hashes.
            let mut h = self.inner.trace_hash.get();
            for word in [entry.at.as_nanos(), entry.seq] {
                h ^= word;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            self.inner.trace_hash.set(h);
            match entry.action {
                Action::Wake(w) => {
                    self.emit_kernel(KernelEvent::WakeFired);
                    w.wake();
                }
                Action::Call(f) => {
                    self.emit_kernel(KernelEvent::CallFired);
                    f(self);
                }
            }
            return true;
        }
    }

    /// Run until no ready tasks and no pending events remain.
    pub fn run(&self) {
        loop {
            self.inner.exec.drain_ready();
            if !self.fire_next() {
                break;
            }
        }
    }

    /// Run until virtual time would exceed `until`; the clock finishes at
    /// `min(until, time of last event)`. Events at exactly `until` fire.
    pub fn run_until(&self, until: SimTime) {
        loop {
            self.inner.exec.drain_ready();
            let next_at = match self.inner.heap.borrow().peek() {
                Some(e) => e.at,
                None => break,
            };
            if next_at > until {
                break;
            }
            self.fire_next();
        }
        if self.now() < until {
            self.inner.now.set(until);
        }
    }

    /// Run for `d` more virtual time.
    pub fn run_for(&self, d: SimDuration) {
        let until = self.now() + d;
        self.run_until(until);
    }

    /// Number of events fired so far (simulation statistic).
    pub fn events_fired(&self) -> u64 {
        self.inner.events_fired.get()
    }

    /// Total processes ever spawned.
    pub fn tasks_spawned(&self) -> u64 {
        self.inner.exec.spawned_total()
    }

    /// Processes that have not finished yet.
    pub fn live_tasks(&self) -> usize {
        self.inner.exec.live_tasks()
    }

    /// Order-sensitive fingerprint of every event fired so far. Equal
    /// fingerprints across two runs certify identical schedules.
    pub fn trace_fingerprint(&self) -> u64 {
        self.inner.trace_hash.get()
    }
}

/// Future returned by [`Sim::delay`] / [`Sim::sleep_until`].
///
/// Dropping an unfired `Delay` (e.g. losing a `select2` race) cancels
/// its scheduled wake event, so abandoned timeouts cannot hold the
/// simulation clock hostage.
pub struct Delay {
    sim: Sim,
    deadline: SimTime,
    event: Option<EventHandle>,
}

impl Future for Delay {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            self.event = None;
            return Poll::Ready(());
        }
        if self.event.is_none() {
            let deadline = self.deadline;
            let handle = self.sim.wake_at(deadline, cx.waker().clone());
            self.event = Some(handle);
        }
        Poll::Pending
    }
}

impl Drop for Delay {
    fn drop(&mut self) {
        if let Some(ev) = &self.event {
            ev.cancel();
        }
    }
}

struct JoinState<T> {
    result: RefCell<Option<T>>,
    waiters: RefCell<Vec<Waker>>,
}

/// Handle to a spawned process; awaiting it yields the process's output.
///
/// Panics if awaited after the value was already taken by another waiter.
pub struct JoinHandle<T> {
    state: Rc<JoinState<T>>,
}

impl<T> JoinHandle<T> {
    /// True once the process has finished (its result may still be pending
    /// pickup).
    pub fn is_finished(&self) -> bool {
        self.state.result.borrow().is_some()
    }

    /// Take the result without awaiting, if available.
    pub fn try_take(&self) -> Option<T> {
        self.state.result.borrow_mut().take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        if let Some(v) = self.state.result.borrow_mut().take() {
            return Poll::Ready(v);
        }
        self.state.waiters.borrow_mut().push(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration as D;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new(1);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn delay_advances_clock() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.delay(D::from_secs(5)).await;
            s.now()
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), SimTime::from_nanos(5_000_000_000));
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let (a, b, c, d) = (log.clone(), log.clone(), log.clone(), log.clone());
        sim.schedule_at(SimTime::from_nanos(20), move |_| a.borrow_mut().push("t20"));
        sim.schedule_at(SimTime::from_nanos(10), move |_| {
            b.borrow_mut().push("t10-first")
        });
        sim.schedule_at(SimTime::from_nanos(10), move |_| {
            c.borrow_mut().push("t10-second")
        });
        sim.schedule_at(SimTime::from_nanos(5), move |_| d.borrow_mut().push("t5"));
        sim.run();
        assert_eq!(*log.borrow(), vec!["t5", "t10-first", "t10-second", "t20"]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let l = log.clone();
        let h = sim.schedule_in(D::from_secs(1), move |_| l.borrow_mut().push(1));
        let l2 = log.clone();
        sim.schedule_in(D::from_secs(2), move |_| l2.borrow_mut().push(2));
        h.cancel();
        assert!(h.is_cancelled());
        sim.run();
        assert_eq!(*log.borrow(), vec![2]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.delay(D::from_millis(3)).await;
            42u32
        });
        let h2 = sim.spawn(async move { h.await * 2 });
        sim.run();
        assert_eq!(h2.try_take(), Some(84));
    }

    #[test]
    fn nested_spawns_and_delays_interleave_correctly() {
        let sim = Sim::new(1);
        let log: Rc<RefCell<Vec<(u64, &'static str)>>> = Rc::default();
        for (name, start, step) in [("a", 0u64, 10u64), ("b", 5, 10)] {
            let s = sim.clone();
            let l = log.clone();
            sim.spawn(async move {
                s.delay(D::from_nanos(start)).await;
                for _ in 0..3 {
                    l.borrow_mut().push((s.now().as_nanos(), name));
                    s.delay(D::from_nanos(step)).await;
                }
            });
        }
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![
                (0, "a"),
                (5, "b"),
                (10, "a"),
                (15, "b"),
                (20, "a"),
                (25, "b")
            ]
        );
    }

    #[test]
    fn run_until_stops_clock_at_bound() {
        let sim = Sim::new(1);
        let fired = Rc::new(Cell::new(0u32));
        let f = fired.clone();
        sim.schedule_at(SimTime::from_nanos(100), move |_| {
            f.set(f.get() + 1);
        });
        sim.run_until(SimTime::from_nanos(50));
        assert_eq!(fired.get(), 0);
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        sim.run_until(SimTime::from_nanos(100));
        assert_eq!(fired.get(), 1);
    }

    #[test]
    fn deterministic_fingerprint_across_runs() {
        fn build_and_run() -> u64 {
            let sim = Sim::new(99);
            for i in 0..50u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    let mut rng = s.rng("proc");
                    for _ in 0..5 {
                        let d = D::from_nanos(rng.u64_below(1000) + i);
                        s.delay(d).await;
                    }
                });
            }
            sim.run();
            sim.trace_fingerprint()
        }
        assert_eq!(build_and_run(), build_and_run());
    }

    #[test]
    fn counters_track_activity() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.spawn(async move {
            s.delay(D::from_secs(1)).await;
        });
        assert_eq!(sim.live_tasks(), 1);
        sim.run();
        assert_eq!(sim.live_tasks(), 0);
        assert_eq!(sim.tasks_spawned(), 1);
        assert!(sim.events_fired() >= 1);
    }
}
