//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation of the Windows Azure reproduction: a single-threaded,
//! fully deterministic discrete-event simulator whose processes are plain
//! `async fn`s. Model code awaits virtual-time primitives ([`Sim::delay`],
//! [`sync::Semaphore`], [`sync::channel`]) and the engine interleaves
//! processes in a total `(time, sequence)` order, so a run is a pure
//! function of its seed.
//!
//! ## Layout
//! * [`time`] — `SimTime` / `SimDuration` (u64 nanoseconds)
//! * [`sim`] — the engine: event heap, clock, spawning, cancellable events
//! * [`sync`] — FIFO semaphore, one-shot signal, unbounded MPMC channel
//! * [`combinators`] — `select2`, `join_all`, `timeout`
//! * [`rng`] — per-component deterministic RNG streams
//! * [`dist`] — distributions (normal, lognormal, Pareto, empirical, …)
//! * [`stats`] — Welford stats, exact percentiles, histograms, daily series
//! * [`report`] — ASCII tables and CSV for the regeneration binaries
//!
//! ## Example
//! ```
//! use simcore::prelude::*;
//!
//! let sim = Sim::new(42);
//! let server = Semaphore::new(2); // a 2-slot service station
//! for client in 0..8u32 {
//!     let (s, srv) = (sim.clone(), server.clone());
//!     sim.spawn(async move {
//!         let _slot = srv.acquire().await;
//!         s.delay(SimDuration::from_millis(10)).await; // service time
//!         drop(client);
//!     });
//! }
//! sim.run();
//! // 8 jobs through 2 slots at 10ms each => 40ms makespan.
//! assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(40));
//! ```

#![warn(missing_docs)]

pub mod combinators;
pub mod dist;
mod executor;
pub mod report;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod sync;
pub mod time;

pub use sim::{Delay, EventHandle, JoinHandle, KernelEvent, KernelHook, KernelHookId, Sim};
pub use time::{SimDuration, SimTime};

/// One-stop imports for model code.
pub mod prelude {
    pub use crate::combinators::{join_all, select2, timeout, Either};
    pub use crate::dist::{
        Constant, Dist, Empirical, Exp, LogNormal, Mixture, Normal, Pareto, TruncNormal, Uniform,
        Weibull,
    };
    pub use crate::rng::SimRng;
    pub use crate::sim::{JoinHandle, Sim};
    pub use crate::stats::{DailySeries, Histogram, OnlineStats, SampleSet};
    pub use crate::sync::{channel, Permit, Receiver, Semaphore, Sender, Signal};
    pub use crate::time::{SimDuration, SimTime};
}
