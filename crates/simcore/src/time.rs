//! Virtual time for the simulation.
//!
//! The clock is a `u64` count of nanoseconds since the start of the
//! simulation, giving ~584 years of range — comfortably more than the
//! seven-month ModisAzure campaign the reproduction needs. All clock
//! arithmetic is integer; floating point appears only at the edges
//! (converting model-level seconds into durations and back).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the simulation clock (nanoseconds since sim start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// sentinel for deadlines that should never fire.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// Raw nanoseconds since sim start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since sim start as a float (lossy for very large times).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future (callers comparing racing events rely on this).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    #[inline]
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * NANOS_PER_SEC)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * NANOS_PER_SEC)
    }

    /// Construct from whole days.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400 * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative and non-finite inputs
    /// clamp to zero: model code routinely feeds sampled values here and a
    /// pathological sample must not panic the simulation.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = s * NANOS_PER_SEC as f64;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Whole days, rounded down (used for daily telemetry buckets).
    #[inline]
    pub const fn as_days(self) -> u64 {
        self.0 / (86_400 * NANOS_PER_SEC)
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor, clamping at the representable range.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        self.saturating_mul(k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

/// Human-oriented rendering: picks the largest unit that keeps the value
/// readable (`532ns`, `1.500ms`, `12.250s`, `9m33s`, `2h05m`, `3d04h`).
fn format_nanos(n: u64) -> String {
    if n < 1_000 {
        format!("{n}ns")
    } else if n < 1_000_000 {
        format!("{:.3}us", n as f64 / 1.0e3)
    } else if n < NANOS_PER_SEC {
        format!("{:.3}ms", n as f64 / 1.0e6)
    } else if n < 60 * NANOS_PER_SEC {
        format!("{:.3}s", n as f64 / NANOS_PER_SEC as f64)
    } else if n < 3_600 * NANOS_PER_SEC {
        let s = n / NANOS_PER_SEC;
        format!("{}m{:02}s", s / 60, s % 60)
    } else if n < 86_400 * NANOS_PER_SEC {
        let m = n / (60 * NANOS_PER_SEC);
        format!("{}h{:02}m", m / 60, m % 60)
    } else {
        let h = n / (3_600 * NANOS_PER_SEC);
        format!("{}d{:02}h", h / 24, h % 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_mins(2).as_nanos(), 120 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn float_construction_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late - early, SimDuration::from_nanos(20));
        // `since` saturates rather than panicking when arguments are swapped.
        assert_eq!(early - late, SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2_500));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
    }

    #[test]
    fn day_bucketing() {
        let d = SimDuration::from_hours(49);
        assert_eq!(d.as_days(), 2);
        assert_eq!(SimDuration::from_hours(23).as_days(), 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_millis(1).to_string(), "1.000ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1m30s");
        assert_eq!(SimDuration::from_hours(25).to_string(), "1d01h");
    }

    #[test]
    fn checked_sub() {
        let t = SimTime::from_nanos(100);
        assert_eq!(
            t.checked_sub(SimDuration::from_nanos(40)),
            Some(SimTime::from_nanos(60))
        );
        assert_eq!(t.checked_sub(SimDuration::from_nanos(101)), None);
    }
}
