//! Vendored minimal property-testing fallback.
//!
//! This crate implements exactly the subset of the `proptest` API that the
//! workspace's property tests use — the `proptest!` macro, a [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, numeric range and simple
//! `[class]{m,n}` string strategies, `prop::collection::{vec, btree_set}`,
//! `prop::bool::ANY`, `prop::option::of`, `Just`, `prop_oneof!`, and the
//! `prop_assert*`/`prop_assume!` macros — with no external dependencies,
//! so `cargo test` works in offline / no-registry environments.
//!
//! Differences from real proptest, deliberate for this workspace:
//!
//! - **No shrinking.** A failing case panics with the assertion message;
//!   inputs are small enough here that raw failures are readable.
//! - **Deterministic generation.** Case values derive from a fixed
//!   per-test seed (FNV-1a of the test name), so a failure reproduces on
//!   every run and on every machine.
//! - `prop_assume!` skips the current case (it must be used at the top
//!   level of a test body, which is how this workspace uses it).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only the piece this workspace touches.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator used to produce case values (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream seeded from the test name: stable across runs and machines.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Scaled multiply: negligible bias, no rejection loop (test-data
        // generation does not need cryptographic uniformity).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i32 => u32, i64 => u64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

/// Strategy for string patterns restricted to the subset this workspace
/// uses: sequences of literal characters and `[a-z0-9]`-style classes,
/// each optionally followed by `{n}` or `{m,n}`.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Atom: character class or literal.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut cls = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (a, b) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in a..=b {
                        cls.push(char::from_u32(c).unwrap());
                    }
                    j += 3;
                } else {
                    cls.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            cls
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Quantifier: {n} or {m,n}; default exactly one.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
}

/// Box a strategy for use in heterogeneous-arm combinators.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// The `prop::` namespace mirrored from real proptest.
pub mod prop {
    use super::{Strategy, TestRng};

    /// Collection strategies.
    pub mod collection {
        use super::{Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::{Range, RangeInclusive};

        /// Accepted size specifications for collection strategies.
        pub trait SizeRange {
            /// Inclusive `(min, max)` element counts.
            fn bounds(&self) -> (usize, usize);
        }

        impl SizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        impl SizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        /// `Vec` of values from `element`, length drawn from `size`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let (lo, hi) = self.size.bounds();
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for a `Vec` with the given element strategy and size.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        /// `BTreeSet` of distinct values from `element`.
        pub struct BTreeSetStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for BTreeSetStrategy<S, R>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let (lo, hi) = self.size.bounds();
                let target = lo + rng.below((hi - lo + 1) as u64) as usize;
                let mut set = BTreeSet::new();
                // Distinctness can make the target unreachable for tiny
                // domains; bail out after a generous number of attempts
                // (the min bound is always reachable in practice).
                let mut attempts = 0usize;
                while set.len() < target && attempts < 100 * (target + 1) {
                    set.insert(self.element.generate(rng));
                    attempts += 1;
                }
                set
            }
        }

        /// Strategy for a `BTreeSet` with the given element strategy and size.
        pub fn btree_set<S: Strategy, R: SizeRange>(element: S, size: R) -> BTreeSetStrategy<S, R> {
            BTreeSetStrategy { element, size }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::{Strategy, TestRng};

        /// Fair coin.
        pub struct Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// Uniformly random `bool`.
        pub const ANY: Any = Any;
    }

    /// Option strategies.
    pub mod option {
        use super::{Strategy, TestRng};

        /// `Option` of the inner strategy (50% `Some`).
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 1 {
                    Some(self.0.generate(rng))
                } else {
                    None
                }
            }
        }

        /// Strategy yielding `None` or a value of `inner`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }
}

/// Error type kept for signature compatibility in diagnostics.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Define property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u64..100, ys in prop::collection::vec(0u8..6, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                let ($($arg,)+) = ({
                    use $crate::Strategy as _;
                    ($(($strat).generate(&mut __rng),)+)
                });
                $body
            }
        }
    )*};
}

/// Assert inside a property test (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when a precondition fails. Must appear at the
/// top level of the test body (it `continue`s the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategy alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_respects_class_and_len() {
        let mut rng = crate::TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z0-9]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn determinism_same_test_name_same_values() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_strategies(
            x in 0u64..100,
            ys in prop::collection::vec(0u8..6, 1..10),
            s in "[a-z]{1,4}",
            opt in prop::option::of(1.0f64..2.0),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(x < 100);
            prop_assert!(!ys.is_empty() && ys.len() < 10);
            prop_assert!(ys.iter().all(|&y| y < 6));
            prop_assert!((1..=4).contains(&s.len()));
            if let Some(v) = opt {
                prop_assert!((1.0..2.0).contains(&v));
            }
            let _ = flag;
        }

        #[test]
        fn oneof_and_flat_map(v in prop_oneof![Just(1u32), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn sets_are_distinct(keys in prop::collection::btree_set(0usize..50, 1..=8)) {
            prop_assert!(!keys.is_empty() && keys.len() <= 8);
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n > 0);
            prop_assert!(n > 0);
        }
    }
}
