//! Scaling policies: pure, RNG-free functions from observed signals to
//! a desired instance count.
//!
//! Every policy implements [`Scaler`] and is deliberately deterministic
//! — no randomness, no wall-clock, no hidden I/O — so a control run is
//! a pure function of the seed and the rendered decision log can be
//! compared byte-for-byte across runs and shard counts.
//!
//! The four shipped policies bracket the design space the paper's
//! Table 1 makes interesting. Scaling out costs ~10 minutes of lead
//! time (≈476 s to the first added instance for a small worker, then
//! ≈183 s per further instance), so *when* a controller asks matters
//! more than *how much*:
//!
//! * [`Fixed`] — provision for planned peak and never move: the
//!   baseline every elasticity claim is measured against;
//! * [`QueueDepth`] — reactive on backlog: scale when in-flight work
//!   per committed instance crosses a threshold (the signal reacts
//!   only *after* demand has already outrun capacity);
//! * [`UtilHysteresis`] — reactive on utilization with an up/down
//!   dead band to suppress flapping;
//! * [`PredictiveHolt`] — Holt double-exponential smoothing over the
//!   arrival-rate windows, ordering capacity a full scale-out lead
//!   ahead of the forecast demand.

/// Signals sampled at one control tick — everything a policy may see.
#[derive(Debug, Clone)]
pub struct Signals {
    /// Simulation clock, seconds.
    pub now_s: f64,
    /// Arrival rate of the most recent fully elapsed observation
    /// window (ops/s); `0.0` before the first window completes.
    pub rate_ops_s: f64,
    /// Rates of observation windows newly completed since the previous
    /// tick, oldest first (the forecaster's input stream).
    pub new_rates: Vec<f64>,
    /// Operations issued but not yet finished — the fleet's backlog.
    pub in_flight: u64,
    /// Shed (`ServerBusy`) responses since the previous tick.
    pub shed_delta: u64,
    /// Instances currently Ready (serving).
    pub ready: usize,
    /// Instances committed: Ready plus still-provisioning adds — the
    /// count a new decision should build on, so an in-flight add is
    /// not re-ordered every tick while it boots.
    pub committed: usize,
    /// Calibrated per-instance service rate μᵢ (ops/s).
    pub per_instance_ops_s: f64,
}

/// A scaling policy: signals in, desired committed instance count out.
///
/// Implementations must be deterministic and RNG-free; `&mut self` is
/// for internal estimator state (e.g. smoothing), updated only from
/// the signals handed in.
pub trait Scaler {
    /// Stable short name (CSV column values, decision-log headers).
    fn name(&self) -> &'static str;
    /// Desired committed instance count. The harness clamps to bounds
    /// and applies cooldowns; policies return their raw preference.
    fn desired(&mut self, sig: &Signals) -> usize;
}

/// Static provisioning for planned peak — the non-elastic baseline.
#[derive(Debug, Clone, Copy)]
pub struct Fixed {
    /// The instance count to hold.
    pub instances: usize,
}

impl Scaler for Fixed {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn desired(&mut self, _sig: &Signals) -> usize {
        self.instances
    }
}

/// Reactive backlog threshold: scale out when in-flight work per
/// committed instance exceeds `high_per_instance`, sizing the target so
/// the backlog would spread back down to the threshold; scale in one
/// instance at a time when the backlog falls below `low_per_instance`.
#[derive(Debug, Clone, Copy)]
pub struct QueueDepth {
    /// Backlog per committed instance that triggers scale-out
    /// (naturally ≈ μᵢ × deadline: one SLO's worth of work each).
    pub high_per_instance: f64,
    /// Backlog per committed instance below which one instance is
    /// released.
    pub low_per_instance: f64,
}

impl Scaler for QueueDepth {
    fn name(&self) -> &'static str {
        "queue_depth"
    }

    fn desired(&mut self, sig: &Signals) -> usize {
        let committed = sig.committed.max(1);
        let per = sig.in_flight as f64 / committed as f64;
        if per > self.high_per_instance {
            let target = (sig.in_flight as f64 / self.high_per_instance).ceil() as usize;
            target.max(committed + 1)
        } else if per < self.low_per_instance {
            // A healthy backlog is *small* — never shrink below what
            // the currently observed rate needs at a sane utilization
            // (85 %), or a well-served fleet reads as idle and
            // collapses into overload.
            let demand_floor = (sig.rate_ops_s / (0.85 * sig.per_instance_ops_s)).ceil() as usize;
            (committed - 1).max(demand_floor.min(committed))
        } else {
            committed
        }
    }
}

/// Reactive utilization target with hysteresis: when the observed
/// arrival rate pushes utilization (rate / committed capacity) outside
/// the `[down, up]` dead band, re-size so utilization returns to
/// `target`. The dead band is what keeps a noisy rate from flapping
/// the fleet.
#[derive(Debug, Clone, Copy)]
pub struct UtilHysteresis {
    /// Scale out above this utilization.
    pub up: f64,
    /// Scale in below this utilization.
    pub down: f64,
    /// Utilization to re-size to when acting.
    pub target: f64,
}

impl Scaler for UtilHysteresis {
    fn name(&self) -> &'static str {
        "util_hyst"
    }

    fn desired(&mut self, sig: &Signals) -> usize {
        let committed = sig.committed.max(1);
        let capacity = committed as f64 * sig.per_instance_ops_s;
        let util = sig.rate_ops_s / capacity;
        if util > self.up || util < self.down {
            let n = (sig.rate_ops_s / (self.target * sig.per_instance_ops_s)).ceil() as usize;
            n.max(1)
        } else {
            committed
        }
    }
}

/// Damped-Holt double-exponential smoothing (level + trend, with the
/// trend's contribution geometrically damped over the forecast
/// horizon) over the arrival-rate windows, sized for the demand
/// forecast one full scale-out lead ahead.
///
/// This is the policy that can actually beat the 10-minute VM tax: by
/// the time a reactive controller *sees* the diurnal ramp in its
/// backlog, the capacity it orders is ≈[`scale_out_lead_s`] away; the
/// forecaster orders at `t` for the demand at `t + lead`, so the boot
/// completes as the demand arrives.
///
/// [`scale_out_lead_s`]: fabric::calib::scale_out_lead_s
#[derive(Debug, Clone, Copy)]
pub struct PredictiveHolt {
    /// Level smoothing factor.
    pub alpha: f64,
    /// Trend smoothing factor.
    pub beta: f64,
    /// Trend damping factor φ: the forecast adds `trend · Σφⁱ` instead
    /// of `trend · h`, which stops a lagging trend estimate from
    /// over-buying right past a demand peak (Gardner's damped trend).
    pub phi: f64,
    /// Multiplicative capacity headroom over the forecast.
    pub headroom: f64,
    /// Planned-peak demand (ops/s): sizing never exceeds
    /// `ceil(peak / μ)`. The operator already knows the planned peak —
    /// it is what the fixed baseline provisions for — so the forecast
    /// is not allowed to buy past it when a lagging trend estimate
    /// projects demand beyond the top of the cycle.
    pub peak_ops_s: f64,
    /// How far ahead to forecast, seconds (scale-out lead + one tick).
    pub lead_s: f64,
    /// Observation window length the rates are measured over, seconds.
    pub window_s: f64,
    /// Smoothed level (ops/s); `None` until the first window.
    level: Option<f64>,
    /// Smoothed trend (ops/s per window).
    trend: f64,
}

impl PredictiveHolt {
    /// New forecaster with empty state.
    pub fn new(
        alpha: f64,
        beta: f64,
        phi: f64,
        headroom: f64,
        peak_ops_s: f64,
        lead_s: f64,
        window_s: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && (0.0..=1.0).contains(&beta));
        assert!((0.0..=1.0).contains(&phi));
        assert!(headroom >= 1.0 && lead_s >= 0.0 && window_s > 0.0);
        assert!(peak_ops_s > 0.0);
        PredictiveHolt {
            alpha,
            beta,
            phi,
            headroom,
            peak_ops_s,
            lead_s,
            window_s,
            level: None,
            trend: 0.0,
        }
    }

    /// Fold one completed window's rate into the level/trend state.
    fn observe(&mut self, rate: f64) {
        match self.level {
            None => {
                self.level = Some(rate);
                self.trend = 0.0;
            }
            Some(level) => {
                let next = self.alpha * rate + (1.0 - self.alpha) * (level + self.trend);
                self.trend = self.beta * (next - level) + (1.0 - self.beta) * self.trend;
                self.level = Some(next);
            }
        }
    }

    /// The current demand forecast `lead_s` ahead (ops/s), floored at
    /// zero; `None` before any window completed.
    pub fn forecast(&self) -> Option<f64> {
        // Damped horizon: Σ_{i=1..h} φⁱ, with h the lead in windows.
        let h = self.lead_s / self.window_s;
        let horizon = if self.phi >= 1.0 {
            h
        } else {
            self.phi * (1.0 - self.phi.powf(h)) / (1.0 - self.phi)
        };
        self.level.map(|l| (l + self.trend * horizon).max(0.0))
    }
}

impl Scaler for PredictiveHolt {
    fn name(&self) -> &'static str {
        "predictive"
    }

    fn desired(&mut self, sig: &Signals) -> usize {
        for &r in &sig.new_rates {
            self.observe(r);
        }
        let Some(forecast) = self.forecast() else {
            return sig.committed.max(1);
        };
        // Never size below current demand: a falling forecast must not
        // drop capacity out from under load that is still arriving.
        let demand = forecast.max(sig.rate_ops_s);
        let n = (demand * self.headroom / sig.per_instance_ops_s).ceil() as usize;
        // ...but never above the planned-peak provision: headroom buys
        // ramp earliness, not extra top-of-cycle capacity.
        let cap = (self.peak_ops_s / sig.per_instance_ops_s).ceil() as usize;
        n.min(cap).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(rate: f64, in_flight: u64, committed: usize) -> Signals {
        Signals {
            now_s: 0.0,
            rate_ops_s: rate,
            new_rates: vec![rate],
            in_flight,
            shed_delta: 0,
            ready: committed,
            committed,
            per_instance_ops_s: 10.0,
        }
    }

    #[test]
    fn fixed_never_moves() {
        let mut p = Fixed { instances: 9 };
        assert_eq!(p.desired(&sig(0.0, 0, 3)), 9);
        assert_eq!(p.desired(&sig(500.0, 9999, 12)), 9);
    }

    #[test]
    fn queue_depth_targets_the_threshold() {
        let mut p = QueueDepth {
            high_per_instance: 20.0,
            low_per_instance: 2.0,
        };
        // 4 committed, 100 in flight: 25 each > 20 → need ceil(100/20)=5.
        assert_eq!(p.desired(&sig(0.0, 100, 4)), 5);
        // In the band: hold.
        assert_eq!(p.desired(&sig(0.0, 40, 4)), 4);
        // Nearly idle: release one.
        assert_eq!(p.desired(&sig(0.0, 2, 4)), 3);
    }

    #[test]
    fn util_hysteresis_holds_inside_the_band() {
        let mut p = UtilHysteresis {
            up: 0.85,
            down: 0.5,
            target: 0.7,
        };
        // 4 committed × 10 ops/s; 30 ops/s is util 0.75 → hold.
        assert_eq!(p.desired(&sig(30.0, 0, 4)), 4);
        // 36 ops/s is util 0.9 → resize to ceil(36/7) = 6.
        assert_eq!(p.desired(&sig(36.0, 0, 4)), 6);
        // 16 ops/s is util 0.4 → shrink to ceil(16/7) = 3.
        assert_eq!(p.desired(&sig(16.0, 0, 4)), 3);
    }

    #[test]
    fn predictive_extrapolates_a_ramp() {
        let mut p = PredictiveHolt::new(0.5, 0.3, 1.0, 1.0, 1e9, 300.0, 60.0);
        // Feed a steady ramp: 10, 20, 30, 40 ops/s per window.
        let mut last = 0;
        for (k, r) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            let mut s = sig(*r, 0, last.max(1));
            s.new_rates = vec![*r];
            last = p.desired(&s);
            if k == 0 {
                // First window: no trend yet, sizes to the level.
                assert_eq!(last, 1);
            }
        }
        // Rate is 40 and rising ~10/window; 5 windows ahead the
        // forecast is well above 40 → more than ceil(40/10) instances.
        assert!(last > 4, "predictive sized {last} for a rising ramp");
        assert!(p.forecast().unwrap() > 40.0);
    }

    #[test]
    fn predictive_tracks_but_never_undershoots_current_rate() {
        let mut p = PredictiveHolt::new(0.4, 0.2, 1.0, 1.0, 1e9, 300.0, 60.0);
        // A falling series forecasts below the last rate...
        for r in [100.0, 80.0, 60.0, 40.0] {
            let mut s = sig(r, 0, 8);
            s.new_rates = vec![r];
            p.desired(&s);
        }
        assert!(p.forecast().unwrap() < 40.0);
        // ...but sizing still covers the currently observed 40 ops/s.
        let mut s = sig(40.0, 0, 8);
        s.new_rates = vec![];
        assert!(p.desired(&s) >= 4);
    }
}
