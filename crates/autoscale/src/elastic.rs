//! The elastic cell runner: one autoscaling experiment, end to end.
//!
//! A cell closes the loop the rest of the workspace leaves open:
//! `simload` fires an open-loop arrival schedule at an `azstore`
//! stamp whose serving capacity is a dial
//! ([`CapacityScale`]), and a control loop turns the dial by running
//! *real* `fabric` deployments — every instance bought pays the full
//! Table 1 lifecycle (≈10 minutes to first capacity on scale-out,
//! ≈183 s staggers for the rest, 2.6 % startup failures), every
//! instance held accrues instance-hours. The output is one point on
//! the SLO-violations-vs-cost frontier.
//!
//! ## Timeline
//!
//! ```text
//! t=0        create + boot the initial deployment (run_with_retry)
//! t≈1100     initial fleet Ready; supervisor ticks begin
//! t=setup_s  arrivals start; observation windows and billing open
//! t=setup_s+horizon_s   window closes; in-flight work drains
//! ```
//!
//! The arrival schedule is drawn from the dedicated `"load.arrivals"`
//! stream before any fabric randomness is consumed, so for a given
//! seed **every policy faces the byte-identical demand** — the
//! frontier compares controllers, not luck.
//!
//! ## Capacity model
//!
//! `r = ready / REF` where `REF` is the notional front-end fleet the
//! calibrated stamp constants correspond to (the Fig 2/3 saturation
//! throughputs attributed to per-instance rates μᵢ). Ready instances
//! serve; provisioning instances bill but do not serve — exactly the
//! 10-minute tax the paper's Table 1 measures.

use std::cell::RefCell;
use std::rc::Rc;

use azstore::{AdmissionConfig, CapacityScale, StampConfig, StorageAccountClient, StorageStamp};
use fabric::{DeploymentSpec, FabricConfig, FabricController, HostPoolConfig, RoleType, VmSize};
use simcore::prelude::*;
use simload::{seed_workload, spawn_arrivals, ArrivalProcess, LoadObserver, SloTracker, Workload};

use crate::actuator::Actuator;
use crate::harness::{Decision, Harness};
use crate::policy::{self, Scaler, Signals};

/// Notional reference front-end fleet behind the calibrated queue
/// constants: the simulated Fig 3 Add saturation (~585 ops/s) read as
/// 64 instances of μᵢ ≈ 9.14 ops/s each.
pub const QUEUE_REF_INSTANCES: f64 = 64.0;
/// Simulated queue Add saturation throughput at reference capacity.
pub const QUEUE_NOMINAL_OPS_S: f64 = 585.0;
/// Notional reference fleet behind the calibrated table constants:
/// the simulated Fig 2 Query saturation (~3900 ops/s) read as 400
/// instances of μᵢ = 9.75 ops/s each.
pub const TABLE_REF_INSTANCES: f64 = 400.0;
/// Simulated table Query saturation throughput at reference capacity.
pub const TABLE_NOMINAL_OPS_S: f64 = 3900.0;

/// Minimum seconds between scale-out orders.
pub const COOLDOWN_OUT_S: f64 = 60.0;
/// Minimum seconds between scale-ins (and after the last scale-out).
pub const COOLDOWN_IN_S: f64 = 60.0;
/// Holt level smoothing factor.
pub const HOLT_ALPHA: f64 = 0.4;
/// Holt trend smoothing factor.
pub const HOLT_BETA: f64 = 0.3;
/// Holt trend damping factor (forecast-horizon damping).
pub const HOLT_PHI: f64 = 1.0;
/// Multiplicative capacity headroom the predictive policy buys over
/// its forecast (ramp earliness; the planned-peak cap keeps it from
/// inflating top-of-cycle capacity).
pub const PREDICTIVE_HEADROOM: f64 = 1.05;
/// Utilization above which the hysteresis policy scales out.
pub const UTIL_UP: f64 = 0.85;
/// Utilization below which the hysteresis policy scales in.
pub const UTIL_DOWN: f64 = 0.50;
/// Utilization the hysteresis policy re-sizes to when acting.
pub const UTIL_TARGET: f64 = 0.80;

/// Which storage service the elastic fleet serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// Queue Add (latch-bound: capacity lives in replica-sync holds).
    Queue,
    /// Table point Query (station-bound: capacity lives in load terms).
    Table,
}

impl Service {
    /// Stable short name (CSV column values).
    pub fn name(self) -> &'static str {
        match self {
            Service::Queue => "queue",
            Service::Table => "table",
        }
    }

    /// Calibrated per-instance service rate μᵢ (ops/s).
    pub fn per_instance_ops_s(self) -> f64 {
        match self {
            Service::Queue => QUEUE_NOMINAL_OPS_S / QUEUE_REF_INSTANCES,
            Service::Table => TABLE_NOMINAL_OPS_S / TABLE_REF_INSTANCES,
        }
    }

    /// The notional reference fleet size `REF` (capacity dial is
    /// `ready / REF`).
    pub fn reference_instances(self) -> f64 {
        match self {
            Service::Queue => QUEUE_REF_INSTANCES,
            Service::Table => TABLE_REF_INSTANCES,
        }
    }

    /// Latency SLO for this service's op, seconds from the scheduled
    /// arrival instant.
    pub fn deadline_s(self) -> f64 {
        match self {
            Service::Queue => 2.0,
            Service::Table => 1.0,
        }
    }

    /// The workload fired per arrival.
    pub fn workload(self) -> Workload {
        match self {
            Service::Queue => Workload::QueueAdd {
                message_bytes: 512.0,
            },
            Service::Table => Workload::TableQuery {
                entities: 512,
                entity_kb: 1,
            },
        }
    }
}

/// Which controller drives the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Static provisioning for planned peak.
    Fixed,
    /// Reactive backlog threshold.
    QueueDepth,
    /// Reactive utilization target with hysteresis.
    UtilHysteresis,
    /// Holt forecast ordering a full scale-out lead ahead.
    PredictiveHolt,
}

impl PolicyKind {
    /// All four policies, frontier order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Fixed,
        PolicyKind::QueueDepth,
        PolicyKind::UtilHysteresis,
        PolicyKind::PredictiveHolt,
    ];

    /// Stable short name (CSV column values).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fixed => "fixed",
            PolicyKind::QueueDepth => "queue_depth",
            PolicyKind::UtilHysteresis => "util_hyst",
            PolicyKind::PredictiveHolt => "predictive",
        }
    }

    /// Initial fleet size: every policy boots the planned-peak
    /// provision an operator would deploy, so cells differ only in
    /// what the controller does *after* t=0 (elastic ones release the
    /// trough and re-buy ahead of the next peak).
    pub fn initial_instances(self, cfg: &ElasticConfig) -> usize {
        let _ = self;
        cfg.fixed_instances()
    }

    /// Instantiate the policy for this cell.
    fn build(self, cfg: &ElasticConfig, mu: f64, deadline_s: f64) -> Box<dyn Scaler> {
        match self {
            PolicyKind::Fixed => Box::new(policy::Fixed {
                instances: cfg.fixed_instances(),
            }),
            PolicyKind::QueueDepth => Box::new(policy::QueueDepth {
                // One SLO's worth of backlog per instance triggers
                // growth; an eighth of that releases capacity.
                high_per_instance: mu * deadline_s,
                low_per_instance: mu * deadline_s / 8.0,
            }),
            PolicyKind::UtilHysteresis => Box::new(policy::UtilHysteresis {
                up: UTIL_UP,
                down: UTIL_DOWN,
                target: UTIL_TARGET,
            }),
            PolicyKind::PredictiveHolt => Box::new(policy::PredictiveHolt::new(
                HOLT_ALPHA,
                HOLT_BETA,
                HOLT_PHI,
                PREDICTIVE_HEADROOM,
                // The same planning knowledge the fixed baseline uses.
                cfg.peak_units * mu,
                // Forecast one real scale-out lead (add boot + first
                // stagger) ahead, plus a control tick and one
                // observation window: the rate the forecaster acts on
                // is already up to a window old when it arrives.
                fabric::calib::scale_out_lead_s(RoleType::Worker, VmSize::Small)
                    .expect("small worker adds are calibrated")
                    + cfg.tick_s
                    + cfg.obs_window_s,
                cfg.obs_window_s,
            )),
        }
    }
}

/// One elastic cell: service × arrival pattern × policy.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Which storage service the fleet serves.
    pub service: Service,
    /// Arrival process shaping the demand curve.
    pub pattern: ArrivalProcess,
    /// The controller under test.
    pub policy: PolicyKind,
    /// Mean demand, in per-instance capacity units (multiples of μᵢ).
    pub demand_units: f64,
    /// Planned peak demand in the same units (what [`PolicyKind::Fixed`]
    /// provisions for: `floor(peak_units)` instances).
    pub peak_units: f64,
    /// Setup budget before arrivals start (the initial deployment must
    /// boot inside it), seconds.
    pub setup_s: f64,
    /// Measurement horizon (arrivals, billing, observation), seconds.
    pub horizon_s: f64,
    /// Supervisor control tick, seconds.
    pub tick_s: f64,
    /// Arrival-rate observation window, seconds.
    pub obs_window_s: f64,
    /// Lower bound on committed instances.
    pub min_instances: usize,
    /// Upper bound on committed instances (≤ the 20-core quota).
    pub max_instances: usize,
    /// Client VMs the arrivals round-robin over.
    pub fleet: usize,
    /// Physical hosts behind the elastic fleet (small pools make
    /// simfault host-crash episodes bite).
    pub hosts: usize,
}

impl ElasticConfig {
    /// What the fixed baseline provisions: `floor(peak_units)` — the
    /// honest capacity-planning answer that is still fractionally
    /// under true peak, exactly the regime the paper's 10-minute
    /// scale-out tax makes dangerous.
    pub fn fixed_instances(&self) -> usize {
        (self.peak_units.floor() as usize).clamp(self.min_instances, self.max_instances)
    }

    /// What adaptive policies boot with: mean demand, rounded up.
    pub fn mean_instances(&self) -> usize {
        (self.demand_units.ceil() as usize).clamp(self.min_instances, self.max_instances)
    }
}

/// Everything one elastic cell reports.
#[derive(Debug, Clone)]
pub struct ElasticResult {
    /// Policy short name.
    pub policy: &'static str,
    /// SLO accounting over every scheduled arrival (mergeable).
    pub slo: SloTracker,
    /// Committed instance-hours accrued inside the measurement window
    /// (Ready and provisioning both bill — you pay from the order).
    pub instance_hours: f64,
    /// Fleet size the cell booted with.
    pub initial_instances: usize,
    /// Largest committed fleet observed.
    pub max_committed: usize,
    /// Scale-out orders issued.
    pub scale_outs: u64,
    /// Scale-in operations issued.
    pub scale_ins: u64,
    /// Add batches lost to startup failures / quota.
    pub adds_failed: u64,
    /// Instances reaped off crashed hosts.
    pub reaped: u64,
    /// Mean order-to-first-ready lead over add batches, seconds.
    pub first_ready_lead_s: Option<f64>,
    /// Mean within-batch readiness stagger, seconds.
    pub add_stagger_mean_s: Option<f64>,
    /// Number of within-batch staggers observed.
    pub stagger_count: usize,
    /// Initial boot's observed stagger spread over its Table 1
    /// expectation (≈1.0 when the lifecycle is calibrated).
    pub initial_ramp_ratio: f64,
    /// When the initial fleet was fully Ready (sim seconds).
    pub initial_ready_s: f64,
    /// Front-door sheds over the whole run.
    pub admit_shed: u64,
    /// The harness's rendered decision log (byte-reproducible).
    pub decision_log: String,
    /// The actuator's scale-event log.
    pub events: String,
}

impl ElasticResult {
    /// Scheduled arrivals that missed the SLO (failed, late, or never
    /// completed).
    pub fn violations(&self) -> u64 {
        self.slo.scheduled - self.slo.good().min(self.slo.scheduled)
    }
}

/// What the supervisor task hands back when the window closes.
struct SupervisorOut {
    act: Rc<Actuator>,
    decision_log: String,
    instance_hours: f64,
    max_committed: usize,
    initial_ramp_ratio: f64,
    initial_ready_s: f64,
}

/// Run one elastic cell to completion on `sim` (drives `sim.run()`).
pub fn run_elastic(sim: &Sim, cfg: &ElasticConfig) -> ElasticResult {
    assert!(cfg.fleet > 0 && cfg.hosts > 0);
    assert!(cfg.horizon_s > 0.0 && cfg.setup_s > 0.0 && cfg.tick_s > 0.0);
    let mu = cfg.service.per_instance_ops_s();
    let deadline_s = cfg.service.deadline_s();
    let rate = cfg.demand_units * mu;
    let peak_rate = cfg.peak_units * mu;

    // The stamp's capacity dial starts at "nothing serving": until the
    // first instances are Ready the service has no front-ends. The
    // admission bound is one planned-peak SLO's worth of backlog —
    // work beyond that would violate anyway, so it sheds fast instead
    // of rotting in the queues.
    let capacity = CapacityScale::unit();
    capacity.set(1e-3);
    let admit_limit = ((peak_rate * deadline_s).ceil() as usize).max(64);
    let stamp = StorageStamp::standalone(
        sim,
        StampConfig {
            admission: AdmissionConfig::QueueBound { limit: admit_limit },
            capacity: capacity.clone(),
            ..StampConfig::default()
        },
    );
    let workload = cfg.service.workload();
    seed_workload(&stamp, workload);
    let clients: Vec<Rc<StorageAccountClient>> = stamp
        .attach_small_fleet(cfg.fleet)
        .into_iter()
        .map(Rc::new)
        .collect();

    // Demand first: the schedule must not depend on anything the
    // policy does, so it is drawn before any fabric randomness.
    let mut arr_rng = sim.rng("load.arrivals");
    let instants = cfg.pattern.instants(&mut arr_rng, rate, cfg.horizon_s);
    let windows =
        simload::WindowedArrivals::new(&instants, cfg.setup_s, cfg.obs_window_s, cfg.horizon_s);

    let tracker = Rc::new(RefCell::new(SloTracker::new(deadline_s)));
    let observer = Rc::new(LoadObserver::default());
    spawn_arrivals(
        sim,
        &clients,
        workload,
        &instants,
        cfg.setup_s,
        deadline_s,
        &tracker,
        &observer,
    );

    let fc = FabricController::new(
        sim,
        FabricConfig {
            hosts: HostPoolConfig {
                hosts: cfg.hosts,
                ..HostPoolConfig::default()
            },
            ..FabricConfig::default()
        },
    );

    let initial = cfg.policy.initial_instances(cfg);
    let mut harness = Harness::new(
        cfg.policy.build(cfg, mu, deadline_s),
        cfg.min_instances,
        cfg.max_instances,
        COOLDOWN_OUT_S,
        COOLDOWN_IN_S,
    );

    let s = sim.clone();
    let observer_sup = Rc::clone(&observer);
    let cfg_sup = cfg.clone();
    let sup = sim.spawn(async move {
        let cfg = cfg_sup;
        let dep = fc
            .create_deployment(DeploymentSpec {
                role: RoleType::Worker,
                size: VmSize::Small,
                instances: initial,
                package_mb: fabric::calib::REFERENCE_PACKAGE_MB,
            })
            .await
            .expect("initial fleet within quota");
        // Startup failures (2.6 %) retry the whole boot 30 s later —
        // the paper's own "developer must retry" remedy.
        let boot = dep
            .run_with_retry(&simfault::RetryPolicy::fixed(30.0, simfault::FOREVER))
            .await
            .expect("retried boot eventually succeeds");
        let offs = &boot.instance_ready_offsets;
        let initial_ramp_ratio = if offs.len() >= 2 {
            (offs[offs.len() - 1].as_secs_f64() - offs[0].as_secs_f64())
                / ((offs.len() - 1) as f64 * fabric::calib::RUN_STAGGER_MEAN_S)
        } else {
            1.0
        };
        let initial_ready_s = s.now().as_secs_f64();
        let ref_n = cfg.service.reference_instances();
        let act = Actuator::new(&s, dep);
        capacity.set(act.deployment().ready_count() as f64 / ref_n);

        let end_s = cfg.setup_s + cfg.horizon_s;
        let mut consumed = 0usize;
        let mut last_shed = 0u64;
        let mut hours = 0.0;
        let mut max_committed = act.deployment().instance_count();
        loop {
            let seg_start = s.now().as_secs_f64();
            if seg_start >= end_s {
                break;
            }
            let billed = act.deployment().instance_count();
            s.delay(SimDuration::from_secs_f64(cfg.tick_s)).await;
            let now = s.now().as_secs_f64();
            let (a, b) = (seg_start.max(cfg.setup_s), now.min(end_s));
            if b > a {
                hours += billed as f64 * (b - a) / 3600.0;
            }

            act.reap();
            let ready = act.deployment().ready_count();
            capacity.set(ready as f64 / ref_n);
            let committed = act.deployment().instance_count();
            max_committed = max_committed.max(committed);

            let done = windows.completed_windows(now);
            let new_rates: Vec<f64> = (consumed..done).map(|k| windows.rate(k)).collect();
            consumed = done;
            let shed_total = observer_sup.shed.get();
            let shed_delta = shed_total - last_shed;
            last_shed = shed_total;

            if done > 0 && now < end_s {
                let sig = Signals {
                    now_s: now,
                    rate_ops_s: windows.rate(done - 1),
                    new_rates,
                    in_flight: observer_sup.in_flight(),
                    shed_delta,
                    ready,
                    committed,
                    per_instance_ops_s: mu,
                };
                match harness.decide(&sig) {
                    Decision::ScaleOut(n) => act.scale_out(n),
                    Decision::ScaleIn(n) => {
                        act.scale_in(n);
                    }
                    Decision::Hold => {}
                }
            }
        }
        SupervisorOut {
            act,
            decision_log: harness.into_log(),
            instance_hours: hours,
            max_committed,
            initial_ramp_ratio,
            initial_ready_s,
        }
    });

    sim.run();

    let out = sup.try_take().expect("supervisor ran to completion");
    let slo = Rc::try_unwrap(tracker)
        .expect("all arrival tasks finished")
        .into_inner();
    let (_, admit_shed) = stamp.admission_stats();
    ElasticResult {
        policy: cfg.policy.name(),
        slo,
        instance_hours: out.instance_hours,
        initial_instances: initial,
        max_committed: out.max_committed,
        scale_outs: out.act.scale_outs.get(),
        scale_ins: out.act.scale_ins.get(),
        adds_failed: out.act.adds_failed.get(),
        reaped: out.act.reaped.get(),
        first_ready_lead_s: out.act.first_ready_lead_s(),
        add_stagger_mean_s: out.act.add_stagger_mean_s(),
        stagger_count: out.act.stagger_count(),
        initial_ramp_ratio: out.initial_ramp_ratio,
        initial_ready_s: out.initial_ready_s,
        admit_shed,
        decision_log: out.decision_log,
        events: out.act.events(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: PolicyKind, seed: u64) -> ElasticResult {
        let sim = Sim::new(seed);
        run_elastic(
            &sim,
            &ElasticConfig {
                service: Service::Queue,
                pattern: ArrivalProcess::Diurnal {
                    period_s: 900.0,
                    amplitude: 0.8,
                    phase: 0.0,
                },
                policy,
                demand_units: 2.0,
                peak_units: 3.6,
                setup_s: 1500.0,
                horizon_s: 900.0,
                tick_s: 10.0,
                obs_window_s: 60.0,
                min_instances: 1,
                max_instances: 16,
                fleet: 8,
                hosts: 8,
            },
        )
    }

    #[test]
    fn cell_runs_and_accounts() {
        let r = tiny(PolicyKind::PredictiveHolt, 5);
        assert!(r.slo.scheduled > 5_000, "scheduled {}", r.slo.scheduled);
        assert_eq!(
            r.slo.scheduled,
            r.slo.completed + r.slo.failed,
            "every arrival resolves"
        );
        assert!(r.instance_hours > 0.1, "hours {}", r.instance_hours);
        assert!(!r.decision_log.is_empty());
        assert!(r.initial_ready_s < 1500.0, "boot {}", r.initial_ready_s);
    }

    #[test]
    fn same_seed_reproduces_the_decision_log_byte_for_byte() {
        let (a, b) = (
            tiny(PolicyKind::QueueDepth, 9),
            tiny(PolicyKind::QueueDepth, 9),
        );
        assert_eq!(a.decision_log, b.decision_log);
        assert_eq!(a.events, b.events);
        assert_eq!(a.instance_hours.to_bits(), b.instance_hours.to_bits());
        assert_eq!(a.slo.latency.hist, b.slo.latency.hist);
    }

    #[test]
    fn fixed_baseline_holds_its_provision() {
        let r = tiny(PolicyKind::Fixed, 5);
        assert_eq!(r.initial_instances, 3); // floor(3.6)
        assert_eq!(r.scale_ins, 0);
        // Fixed only re-buys after failures; clean cell → no orders.
        assert_eq!(r.scale_outs, 0);
        let expected = 3.0 * 900.0 / 3600.0;
        assert!(
            (r.instance_hours - expected).abs() < 0.02,
            "hours {} vs {expected}",
            r.instance_hours
        );
    }
}
