//! The capacity actuator: turns harness decisions into real fabric
//! lifecycle operations, so scale-out latency is *emergent*, not
//! modelled.
//!
//! A [`Decision::ScaleOut`](crate::Decision::ScaleOut) becomes a
//! detached [`Deployment::add_instances_n`] task running the stochastic
//! Table 1 "Add" lifecycle — first new instance after the add-boot
//! delay (≈293 s for a small worker), each subsequent one an
//! exponential stagger (mean ≈183 s) later, 2.6 % chance the whole
//! batch rolls back with a startup failure. The controller pays those
//! prices in full: between order and readiness the capacity dial does
//! not move, and a failed add is simply re-ordered at a later tick.
//! Add batches run concurrently — a controller chasing a ramp is not
//! blocked behind its own previous order (each batch rolls back by
//! instance id, so overlapping failures stay independent).
//!
//! Scale-in and reaping are immediate by contrast (stopping a VM costs
//! nothing like booting one — the Table 1 asymmetry that makes
//! elasticity a forecasting problem in the first place).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fabric::Deployment;
use simcore::prelude::*;

/// Drives one deployment's capacity on behalf of a control loop.
pub struct Actuator {
    sim: Sim,
    dep: Rc<Deployment>,
    pending_adds: Cell<usize>,
    /// Scale-out orders issued (batches, not instances).
    pub scale_outs: Cell<u64>,
    /// Scale-in operations issued.
    pub scale_ins: Cell<u64>,
    /// Add batches that failed (startup failure or quota) and rolled
    /// back.
    pub adds_failed: Cell<u64>,
    /// Instances reaped off crashed hosts.
    pub reaped: Cell<u64>,
    /// Ready offsets of the *first* instance of each successful add
    /// batch, seconds from the order (the Table 1 scale-out lead as
    /// actually experienced).
    first_ready_offsets: RefCell<Vec<f64>>,
    /// Gaps between successive instance readiness within add batches.
    staggers: RefCell<Vec<f64>>,
    events: RefCell<String>,
}

impl Actuator {
    /// Wrap a running deployment.
    pub fn new(sim: &Sim, dep: Rc<Deployment>) -> Rc<Self> {
        Rc::new(Actuator {
            sim: sim.clone(),
            dep,
            pending_adds: Cell::new(0),
            scale_outs: Cell::new(0),
            scale_ins: Cell::new(0),
            adds_failed: Cell::new(0),
            reaped: Cell::new(0),
            first_ready_offsets: RefCell::new(Vec::new()),
            staggers: RefCell::new(Vec::new()),
            events: RefCell::new(String::new()),
        })
    }

    /// The deployment being actuated.
    pub fn deployment(&self) -> &Rc<Deployment> {
        &self.dep
    }

    /// Add batches currently booting.
    pub fn pending_adds(&self) -> usize {
        self.pending_adds.get()
    }

    fn event(&self, line: String) {
        let mut ev = self.events.borrow_mut();
        ev.push_str(&line);
        ev.push('\n');
    }

    /// Order `n` more instances; the boot runs as a detached task and
    /// readiness arrives one Table 1 stagger at a time. Batches may
    /// overlap.
    pub fn scale_out(self: &Rc<Self>, n: usize) {
        assert!(n > 0);
        self.pending_adds.set(self.pending_adds.get() + 1);
        self.scale_outs.set(self.scale_outs.get() + 1);
        simtrace::counter("autoscale.scale_out", n as i64);
        let me = Rc::clone(self);
        let ordered_s = self.sim.now().as_secs_f64();
        self.sim.spawn(async move {
            match me.dep.add_instances_n(n).await {
                Ok(report) => {
                    let offs: Vec<f64> = report
                        .instance_ready_offsets
                        .iter()
                        .map(|d| d.as_secs_f64())
                        .collect();
                    if let Some(&first) = offs.first() {
                        me.first_ready_offsets.borrow_mut().push(first);
                    }
                    me.staggers
                        .borrow_mut()
                        .extend(offs.windows(2).map(|w| w[1] - w[0]));
                    me.event(format!(
                        "t={:09.1} add+{n} ok ordered_t={ordered_s:.1} first_ready_off={:.1}",
                        me.sim.now().as_secs_f64(),
                        offs.first().copied().unwrap_or(0.0),
                    ));
                }
                Err(e) => {
                    me.adds_failed.set(me.adds_failed.get() + 1);
                    simtrace::counter("autoscale.add_failed", 1);
                    me.event(format!(
                        "t={:09.1} add+{n} failed ordered_t={ordered_s:.1} err={e}",
                        me.sim.now().as_secs_f64(),
                    ));
                }
            }
            me.pending_adds.set(me.pending_adds.get() - 1);
        });
    }

    /// Release up to `n` Ready instances (newest first); immediate.
    pub fn scale_in(&self, n: usize) -> usize {
        let removed = self.dep.remove_instances(n);
        if removed > 0 {
            self.scale_ins.set(self.scale_ins.get() + 1);
            simtrace::counter("autoscale.scale_in", removed as i64);
            self.event(format!(
                "t={:09.1} remove-{removed}",
                self.sim.now().as_secs_f64(),
            ));
        }
        removed
    }

    /// Remove instances sitting on crashed hosts, releasing their
    /// quota so replacement capacity can be ordered.
    pub fn reap(&self) -> usize {
        let reaped = self.dep.reap_dead();
        if reaped > 0 {
            self.reaped.set(self.reaped.get() + reaped as u64);
            simtrace::counter("autoscale.reaped", reaped as i64);
            self.event(format!(
                "t={:09.1} reap-{reaped}",
                self.sim.now().as_secs_f64(),
            ));
        }
        reaped
    }

    /// Mean observed order-to-first-ready lead across successful add
    /// batches (seconds); `None` if no add completed.
    pub fn first_ready_lead_s(&self) -> Option<f64> {
        let offs = self.first_ready_offsets.borrow();
        if offs.is_empty() {
            None
        } else {
            Some(offs.iter().sum::<f64>() / offs.len() as f64)
        }
    }

    /// Mean readiness stagger between successive instances within add
    /// batches (seconds); `None` without a multi-instance batch.
    pub fn add_stagger_mean_s(&self) -> Option<f64> {
        let st = self.staggers.borrow();
        if st.is_empty() {
            None
        } else {
            Some(st.iter().sum::<f64>() / st.len() as f64)
        }
    }

    /// Number of within-batch staggers observed.
    pub fn stagger_count(&self) -> usize {
        self.staggers.borrow().len()
    }

    /// The scale-event log (adds, removes, reaps, one line each).
    pub fn events(&self) -> String {
        self.events.borrow().clone()
    }
}

impl std::fmt::Debug for Actuator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Actuator")
            .field("pending_adds", &self.pending_adds.get())
            .field("scale_outs", &self.scale_outs.get())
            .field("scale_ins", &self.scale_ins.get())
            .field("adds_failed", &self.adds_failed.get())
            .field("reaped", &self.reaped.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{DeploymentSpec, FabricConfig, FabricController, RoleType, VmSize};

    fn boot(sim: &Sim, instances: usize, failure_p: f64) -> Rc<Deployment> {
        let fc = FabricController::new(
            sim,
            FabricConfig {
                startup_failure_p: failure_p,
                ..FabricConfig::default()
            },
        );
        let h = sim.spawn(async move {
            let dep = fc
                .create_deployment(DeploymentSpec {
                    role: RoleType::Worker,
                    size: VmSize::Small,
                    instances,
                    package_mb: 5.0,
                })
                .await
                .unwrap();
            dep.run().await.unwrap();
            dep
        });
        sim.run();
        h.try_take().unwrap()
    }

    #[test]
    fn scale_out_records_table1_lead_and_staggers() {
        let sim = Sim::new(21);
        let dep = boot(&sim, 2, 0.0);
        let act = Actuator::new(&sim, dep);
        act.scale_out(3);
        assert_eq!(act.pending_adds(), 1);
        sim.run();
        assert_eq!(act.pending_adds(), 0);
        assert_eq!(act.deployment().ready_count(), 5);
        // First capacity arrives one add-boot plus one stagger out
        // (≈476 s mean); staggers are exponential with mean ≈183 s.
        let lead = act.first_ready_lead_s().unwrap();
        assert!((150.0..1500.0).contains(&lead), "lead {lead}");
        assert_eq!(act.stagger_count(), 2);
        assert!(act.events().contains("add+3 ok"));
    }

    #[test]
    fn failed_add_is_counted_and_leaves_capacity_unchanged() {
        let sim = Sim::new(23);
        let dep = boot(&sim, 2, 0.0);
        // An impossible add via quota exhaustion (20-core quota, 2
        // used, ask for 19): fails immediately, capacity unchanged.
        let act = Actuator::new(&sim, dep);
        act.scale_out(19);
        sim.run();
        assert_eq!(act.adds_failed.get(), 1);
        assert_eq!(act.deployment().ready_count(), 2);
        assert!(act.events().contains("add+19 failed"));
        assert!(act.first_ready_lead_s().is_none());
    }

    #[test]
    fn scale_in_is_immediate() {
        let sim = Sim::new(24);
        let dep = boot(&sim, 4, 0.0);
        let act = Actuator::new(&sim, dep);
        let t0 = sim.now();
        assert_eq!(act.scale_in(2), 2);
        assert_eq!(sim.now(), t0);
        assert_eq!(act.deployment().ready_count(), 2);
        assert_eq!(act.scale_ins.get(), 1);
    }
}
