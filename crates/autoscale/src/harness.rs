//! The control harness around a policy: bounds, cooldowns, and a
//! byte-reproducible decision log.
//!
//! Policies ([`Scaler`]) return raw preferences; the harness is the
//! part every policy shares — clamp to `[min, max]` and rate-limit
//! direction changes with separate scale-out and scale-in cooldowns —
//! and it renders every tick into a fixed-format log line. The log is
//! the determinism witness: same seed and schedule must reproduce it
//! byte for byte, across shard counts.

use crate::policy::{Scaler, Signals};

/// What the harness tells the actuator to do this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// No change (in the band or cooling down).
    Hold,
    /// Order this many additional instances.
    ScaleOut(usize),
    /// Release this many instances.
    ScaleIn(usize),
}

/// Bounds and cooldowns wrapped around one policy.
pub struct Harness {
    policy: Box<dyn Scaler>,
    /// Never go below this many committed instances.
    pub min_instances: usize,
    /// Never go above this many committed instances.
    pub max_instances: usize,
    /// Minimum seconds between scale-out orders.
    pub cooldown_out_s: f64,
    /// Minimum seconds between scale-ins, and after the latest
    /// scale-out (capacity just bought gets a chance to serve before
    /// being released).
    pub cooldown_in_s: f64,
    last_out_s: f64,
    last_in_s: f64,
    log: String,
}

impl Harness {
    /// Wrap `policy` with bounds and cooldowns.
    pub fn new(
        policy: Box<dyn Scaler>,
        min_instances: usize,
        max_instances: usize,
        cooldown_out_s: f64,
        cooldown_in_s: f64,
    ) -> Self {
        assert!(min_instances >= 1 && min_instances <= max_instances);
        Harness {
            policy,
            min_instances,
            max_instances,
            cooldown_out_s,
            cooldown_in_s,
            last_out_s: f64::NEG_INFINITY,
            last_in_s: f64::NEG_INFINITY,
            log: String::new(),
        }
    }

    /// The wrapped policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Decide one tick and append its log line.
    pub fn decide(&mut self, sig: &Signals) -> Decision {
        let raw = self.policy.desired(sig);
        let desired = raw.clamp(self.min_instances, self.max_instances);
        let committed = sig.committed;
        let (decision, verdict) = if desired > committed {
            if sig.now_s - self.last_out_s >= self.cooldown_out_s {
                self.last_out_s = sig.now_s;
                (Decision::ScaleOut(desired - committed), "out")
            } else {
                (Decision::Hold, "cool")
            }
        } else if desired < committed {
            if sig.now_s - self.last_in_s >= self.cooldown_in_s
                && sig.now_s - self.last_out_s >= self.cooldown_in_s
            {
                self.last_in_s = sig.now_s;
                (Decision::ScaleIn(committed - desired), "in")
            } else {
                (Decision::Hold, "cool")
            }
        } else {
            (Decision::Hold, "hold")
        };
        // Fixed-format rendering: the byte-identity contract.
        self.log.push_str(&format!(
            "t={:09.1} rate={:09.3} inflight={:06} shed={:05} ready={:03} committed={:03} desired={:03} {}{}\n",
            sig.now_s,
            sig.rate_ops_s,
            sig.in_flight,
            sig.shed_delta,
            sig.ready,
            committed,
            desired,
            verdict,
            match decision {
                Decision::ScaleOut(n) => format!("+{n}"),
                Decision::ScaleIn(n) => format!("-{n}"),
                Decision::Hold => String::new(),
            }
        ));
        decision
    }

    /// The rendered decision log so far (one line per tick).
    pub fn decision_log(&self) -> &str {
        &self.log
    }

    /// Consume the harness, returning the rendered decision log.
    pub fn into_log(self) -> String {
        self.log
    }
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("policy", &self.policy.name())
            .field("min_instances", &self.min_instances)
            .field("max_instances", &self.max_instances)
            .field("ticks", &self.log.lines().count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fixed, QueueDepth};

    fn sig(now_s: f64, in_flight: u64, committed: usize) -> Signals {
        Signals {
            now_s,
            rate_ops_s: 0.0,
            new_rates: Vec::new(),
            in_flight,
            shed_delta: 0,
            ready: committed,
            committed,
            per_instance_ops_s: 10.0,
        }
    }

    #[test]
    fn clamps_to_bounds() {
        let mut h = Harness::new(Box::new(Fixed { instances: 99 }), 1, 8, 0.0, 0.0);
        assert_eq!(h.decide(&sig(0.0, 0, 4)), Decision::ScaleOut(4));
        let mut h = Harness::new(Box::new(Fixed { instances: 0 }), 2, 8, 0.0, 0.0);
        assert_eq!(h.decide(&sig(0.0, 0, 4)), Decision::ScaleIn(2));
    }

    #[test]
    fn cooldowns_rate_limit_direction_changes() {
        let mut h = Harness::new(
            Box::new(QueueDepth {
                high_per_instance: 10.0,
                low_per_instance: 1.0,
            }),
            1,
            16,
            60.0,
            300.0,
        );
        // Overloaded: first out fires, second is cooling.
        assert!(matches!(h.decide(&sig(0.0, 200, 4)), Decision::ScaleOut(_)));
        assert_eq!(h.decide(&sig(10.0, 200, 4)), Decision::Hold);
        assert!(matches!(
            h.decide(&sig(61.0, 200, 4)),
            Decision::ScaleOut(_)
        ));
        // Idle right after an out: scale-in blocked for cooldown_in.
        assert_eq!(h.decide(&sig(70.0, 0, 8)), Decision::Hold);
        assert!(matches!(h.decide(&sig(362.0, 0, 8)), Decision::ScaleIn(1)));
    }

    #[test]
    fn log_is_one_fixed_format_line_per_tick() {
        let mut h = Harness::new(Box::new(Fixed { instances: 4 }), 1, 16, 0.0, 0.0);
        h.decide(&sig(0.0, 7, 4));
        h.decide(&sig(10.0, 7, 4));
        let log = h.decision_log();
        assert_eq!(log.lines().count(), 2);
        assert!(log.starts_with("t=0000000.0 rate=00000.000 inflight=000007"));
        assert!(log.lines().all(|l| l.ends_with("hold")));
    }
}
