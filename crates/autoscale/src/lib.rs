//! # autoscale — elasticity under the 10-minute VM tax
//!
//! The paper's Table 1 prices Azure's elasticity promise: a small
//! worker deployment takes ~10 minutes from request to first running
//! instance, added instances arrive one ≈3-minute exponential stagger
//! at a time, and 2.6 % of starts fail outright. This crate closes the
//! control loop over those prices: policies observe an open-loop
//! `simload` workload hitting an `azstore` stamp and buy or release
//! *real* `fabric` capacity — the scale-out latency a controller pays
//! is emergent from the same stochastic lifecycle the Table 1
//! reproduction measures, not a modelled constant.
//!
//! * [`policy`] — the [`Scaler`] trait and four deterministic
//!   policies: [`Fixed`], [`QueueDepth`], [`UtilHysteresis`],
//!   [`PredictiveHolt`];
//! * [`harness`] — bounds, cooldowns, and the byte-reproducible
//!   decision log;
//! * [`actuator`] — decisions → fabric lifecycle operations
//!   (`add_instances_n` / `remove_instances` / `reap_dead`), with
//!   per-batch lead and stagger accounting;
//! * [`elastic`] — the cell runner behind `azlab run elastic`:
//!   SLO violations vs committed instance-hours, per policy ×
//!   arrival pattern × service, clean or under host-crash faults.
//!
//! Everything is deterministic and shard-invariant: arrival schedules
//! come from a dedicated RNG stream drawn before any fabric
//! randomness, policies are RNG-free, and the decision log is the
//! byte-identity witness.

#![warn(missing_docs)]

pub mod actuator;
pub mod elastic;
pub mod harness;
pub mod policy;

pub use actuator::Actuator;
pub use elastic::{run_elastic, ElasticConfig, ElasticResult, PolicyKind, Service};
pub use harness::{Decision, Harness};
pub use policy::{Fixed, PredictiveHolt, QueueDepth, Scaler, Signals, UtilHysteresis};
