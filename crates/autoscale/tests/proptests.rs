//! Property-based tests for the elastic control loop: byte-identical
//! replay, policy divergence under a step, and bound enforcement over
//! arbitrary seeds.

use autoscale::{run_elastic, ElasticConfig, ElasticResult, PolicyKind, Service};
use proptest::prelude::*;
use simcore::prelude::*;
use simload::ArrivalProcess;

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Fixed),
        Just(PolicyKind::QueueDepth),
        Just(PolicyKind::UtilHysteresis),
        Just(PolicyKind::PredictiveHolt),
    ]
}

/// A small step-load cell: half-rate then 1.5x across a 900 s window,
/// sized so the post-step demand saturates the planned-peak fleet.
fn step_cell(policy: PolicyKind, seed: u64, max_instances: usize) -> ElasticResult {
    let sim = Sim::new(seed);
    run_elastic(
        &sim,
        &ElasticConfig {
            service: Service::Queue,
            pattern: ArrivalProcess::step_default(),
            policy,
            demand_units: 2.0,
            peak_units: 3.6,
            setup_s: 1500.0,
            horizon_s: 900.0,
            tick_s: 10.0,
            obs_window_s: 60.0,
            min_instances: 1,
            max_instances,
            fleet: 8,
            hosts: 8,
        },
    )
}

/// Every `desired=NNN` field of a decision log.
fn desired_column(log: &str) -> Vec<usize> {
    log.lines()
        .map(|l| {
            let at = l.find("desired=").expect("fixed-format line") + "desired=".len();
            l[at..at + 3].parse().expect("three-digit desired field")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same schedule, same policy: the decision log, the
    /// scale-event log and the billed hours must reproduce byte for
    /// byte — the determinism witness behind the sharded campaign.
    #[test]
    fn same_seed_reproduces_the_run(seed in 0u64..1_000, policy in any_policy()) {
        let a = step_cell(policy, seed, 16);
        let b = step_cell(policy, seed, 16);
        prop_assert_eq!(&a.decision_log, &b.decision_log);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert_eq!(a.instance_hours.to_bits(), b.instance_hours.to_bits());
        prop_assert_eq!(a.violations(), b.violations());
    }

    /// A step is the canonical controller probe: against the identical
    /// arrival schedule, every adaptive policy must decide differently
    /// from the fixed baseline (they all release the half-rate phase),
    /// and the adaptive policies must not all coincide with each
    /// other. (Full pairwise separation is not guaranteed on a short
    /// window — two well-tuned controllers may track the same fleet —
    /// so that stronger claim is pinned at a known seed below.)
    #[test]
    fn distinct_policies_diverge_under_step_load(seed in 0u64..1_000) {
        let logs: Vec<String> = PolicyKind::ALL
            .iter()
            .map(|&p| step_cell(p, seed, 16).decision_log)
            .collect();
        for (i, log) in logs.iter().enumerate().skip(1) {
            prop_assert_ne!(
                &logs[0], log,
                "{} matched the fixed baseline",
                PolicyKind::ALL[i].name()
            );
        }
        prop_assert!(
            logs[1] != logs[2] || logs[2] != logs[3],
            "all three adaptive policies made identical decisions"
        );
    }

    /// The harness bound is inviolable: however hard the post-step
    /// overload pushes the predictive policy, neither the desired
    /// column of its log nor the committed fleet ever exceeds
    /// `max_instances`.
    #[test]
    fn predictive_never_exceeds_max_instances(seed in 0u64..1_000, max in 2usize..=5) {
        let r = step_cell(PolicyKind::PredictiveHolt, seed, max);
        prop_assert!(
            r.max_committed <= max,
            "committed {} over bound {max}",
            r.max_committed
        );
        let desired = desired_column(&r.decision_log);
        prop_assert!(!desired.is_empty());
        prop_assert!(
            desired.iter().all(|&d| d <= max),
            "desired exceeded bound {max}: {:?}",
            desired.iter().max()
        );
    }
}

/// At a representative seed the separation is total: all four policies
/// produce pairwise-distinct decision logs on the same step schedule.
#[test]
fn step_probe_separates_all_four_policies_at_seed_7() {
    let logs: Vec<String> = PolicyKind::ALL
        .iter()
        .map(|&p| step_cell(p, 7, 16).decision_log)
        .collect();
    for i in 0..logs.len() {
        for j in i + 1..logs.len() {
            assert_ne!(
                logs[i],
                logs[j],
                "{} and {} made identical decisions",
                PolicyKind::ALL[i].name(),
                PolicyKind::ALL[j].name()
            );
        }
    }
}
