//! Arrival-process determinism: every process is a pure function of
//! the seed. Same seed → bit-identical event stream; different seed →
//! diverging stream (for the stochastic processes). Replay is the
//! deliberate exception: it must ignore the seed entirely.

use proptest::prelude::*;
use simcore::rng::SimRng;
use simload::ArrivalProcess;

fn stream(p: &ArrivalProcess, seed: u64, rate: f64, horizon: f64) -> Vec<u64> {
    let mut rng = SimRng::for_stream(seed, "load.arrivals");
    p.instants(&mut rng, rate, horizon)
        .into_iter()
        .map(f64::to_bits)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed → bit-identical instants, for every stochastic process.
    #[test]
    fn same_seed_same_stream(
        seed in 0u64..1_000_000,
        rate in 1.0f64..200.0,
        which in 0usize..7,
    ) {
        let p = &ArrivalProcess::stochastic_presets()[which];
        prop_assert_eq!(
            stream(p, seed, rate, 60.0),
            stream(p, seed, rate, 60.0),
            "{} not reproducible", p.name()
        );
    }

    /// Different seeds → diverging instants, for every stochastic
    /// process (constant rate diverges through its phase offset).
    #[test]
    fn different_seeds_diverge(
        seed in 0u64..1_000_000,
        rate in 1.0f64..200.0,
        which in 0usize..7,
    ) {
        let p = &ArrivalProcess::stochastic_presets()[which];
        prop_assert_ne!(
            stream(p, seed, rate, 60.0),
            stream(p, seed ^ 0x9e3779b97f4a7c15, rate, 60.0),
            "{} ignores the seed", p.name()
        );
    }

    /// Replay is seed- and rate-invariant by design: the recorded
    /// instants come back verbatim regardless of the RNG stream.
    #[test]
    fn replay_ignores_seed_and_rate(
        seed in 0u64..1_000_000,
        rate in 1.0f64..200.0,
    ) {
        let rec = ArrivalProcess::Poisson
            .instants(&mut SimRng::for_stream(42, "load.arrivals"), 25.0, 30.0);
        let p = ArrivalProcess::Replay(rec.clone());
        let a = stream(&p, seed, rate, 30.0);
        let b: Vec<u64> = rec.iter().map(|t| t.to_bits()).collect();
        prop_assert_eq!(a, b);
    }
}
