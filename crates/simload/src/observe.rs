//! Windowed arrival-rate observation for feedback controllers.
//!
//! An autoscaler needs the *demand* signal — how fast work is arriving
//! — separately from the *service* signal (queue depth, shed rate).
//! Because simload schedules are drawn up-front ([`crate::ArrivalProcess`]),
//! the per-window arrival counts can be precomputed once per cell; a
//! controller then reads only windows that have **fully elapsed**, so
//! no lookahead leaks into its decisions and the observation sequence
//! is a pure function of the seed (shard-invariant by construction).

/// Per-window arrival counts over a schedule, indexed by wall-clock
/// simulation time.
///
/// Window `k` covers `[offset + k·w, offset + (k+1)·w)` where `offset`
/// is the instant the schedule starts firing (arrival instants are
/// relative to it) and `w` is the window length.
#[derive(Debug, Clone)]
pub struct WindowedArrivals {
    offset_s: f64,
    window_s: f64,
    counts: Vec<u64>,
}

impl WindowedArrivals {
    /// Bucket a schedule of arrival instants (seconds relative to
    /// `offset_s`, ascending, within `[0, horizon_s)`) into windows of
    /// `window_s` seconds.
    pub fn new(instants: &[f64], offset_s: f64, window_s: f64, horizon_s: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        assert!(horizon_s > 0.0, "horizon must be positive");
        let n = (horizon_s / window_s).ceil() as usize;
        let mut counts = vec![0u64; n.max(1)];
        for &t in instants {
            let k = ((t / window_s) as usize).min(counts.len() - 1);
            counts[k] += 1;
        }
        WindowedArrivals {
            offset_s,
            window_s,
            counts,
        }
    }

    /// The window length in seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Total number of windows covering the horizon.
    pub fn windows(&self) -> usize {
        self.counts.len()
    }

    /// How many windows have fully elapsed by wall-clock time `now_s`
    /// (capped at the horizon). Window `k` is observable once
    /// `now_s >= offset + (k+1)·w`.
    pub fn completed_windows(&self, now_s: f64) -> usize {
        let k = (now_s - self.offset_s) / self.window_s;
        if k <= 0.0 {
            0
        } else {
            (k as usize).min(self.counts.len())
        }
    }

    /// Observed arrival rate (ops/s) in window `k`.
    pub fn rate(&self, k: usize) -> f64 {
        self.counts[k] as f64 / self.window_s
    }

    /// The arrival rate of the most recent fully-elapsed window, or
    /// `None` before the first window completes.
    pub fn last_rate(&self, now_s: f64) -> Option<f64> {
        let done = self.completed_windows(now_s);
        if done == 0 {
            None
        } else {
            Some(self.rate(done - 1))
        }
    }

    /// Rates of every window that has fully elapsed by `now_s`, oldest
    /// first — the input sequence for a forecasting controller.
    pub fn completed_rates(&self, now_s: f64) -> impl Iterator<Item = f64> + '_ {
        (0..self.completed_windows(now_s)).map(|k| self.rate(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_caps_at_the_horizon() {
        let w = WindowedArrivals::new(&[0.1, 0.2, 5.0, 29.9], 100.0, 10.0, 30.0);
        assert_eq!(w.windows(), 3);
        assert_eq!(w.rate(0), 0.3);
        assert_eq!(w.rate(1), 0.0);
        assert_eq!(w.rate(2), 0.1);
        // Before the offset and during window 0, nothing is observable.
        assert_eq!(w.completed_windows(50.0), 0);
        assert_eq!(w.completed_windows(109.9), 0);
        assert_eq!(w.last_rate(109.9), None);
        // Window 0 completes at offset + 10.
        assert_eq!(w.completed_windows(110.0), 1);
        assert_eq!(w.last_rate(110.0), Some(0.3));
        // Past the horizon the count saturates.
        assert_eq!(w.completed_windows(1e9), 3);
        let rates: Vec<f64> = w.completed_rates(1e9).collect();
        assert_eq!(rates, vec![0.3, 0.0, 0.1]);
    }

    #[test]
    fn instants_at_the_horizon_edge_land_in_the_last_window() {
        // horizon not a multiple of window: ceil covers the tail.
        let w = WindowedArrivals::new(&[24.9], 0.0, 10.0, 25.0);
        assert_eq!(w.windows(), 3);
        assert_eq!(w.rate(2), 0.1);
    }
}
