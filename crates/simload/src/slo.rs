//! SLO accounting over coordinated-omission-free latencies.
//!
//! The tracker rides on `simlab`'s mergeable statistics
//! ([`StreamSummary`] = exact Welford moments + log₂ histogram), so
//! per-shard trackers merge into byte-identical aggregates no matter
//! how cells were grouped. Latencies are measured from the *scheduled*
//! arrival instant, not from when the client got around to issuing the
//! op — an op that queues behind a saturated service is charged its
//! full wait, which is what makes the open-loop frontier honest about
//! overload (no coordinated omission).

use simlab::StreamSummary;

/// Mergeable SLO accounting for one measurement window.
#[derive(Debug, Clone)]
pub struct SloTracker {
    /// The latency SLO (seconds, measured from the scheduled instant).
    pub deadline_s: f64,
    /// Latency of successful operations, seconds from scheduled instant.
    pub latency: StreamSummary,
    /// Arrivals scheduled inside the measurement window.
    pub scheduled: u64,
    /// Operations that completed successfully.
    pub completed: u64,
    /// Operations that failed (timeout, busy, error).
    pub failed: u64,
    /// Successful operations that finished after the deadline.
    pub late: u64,
    /// Latest completion instant seen (seconds on the sim clock).
    pub last_completion_s: f64,
}

impl SloTracker {
    /// Empty tracker for the given deadline.
    pub fn new(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "SLO deadline must be positive");
        SloTracker {
            deadline_s,
            latency: StreamSummary::new(),
            scheduled: 0,
            completed: 0,
            failed: 0,
            late: 0,
            last_completion_s: 0.0,
        }
    }

    /// Note one scheduled arrival inside the window.
    pub fn note_scheduled(&mut self) {
        self.scheduled += 1;
    }

    /// Record a successful operation: latency from the scheduled
    /// instant and the absolute completion instant.
    pub fn record_ok(&mut self, latency_s: f64, completion_s: f64) {
        self.completed += 1;
        self.latency.push(latency_s);
        if latency_s > self.deadline_s {
            self.late += 1;
        }
        if completion_s > self.last_completion_s {
            self.last_completion_s = completion_s;
        }
    }

    /// Record a failed operation (its latency does not enter the
    /// success distribution; it still counts against the SLO).
    pub fn record_fail(&mut self) {
        self.failed += 1;
    }

    /// Successful completions within the deadline.
    pub fn good(&self) -> u64 {
        self.completed - self.late
    }

    /// Fraction of scheduled arrivals that missed the SLO (failed, still
    /// outstanding at window end, or completed late). `0.0` when nothing
    /// was scheduled.
    pub fn violation_fraction(&self) -> f64 {
        if self.scheduled == 0 {
            return 0.0;
        }
        let good = self.good().min(self.scheduled);
        (self.scheduled - good) as f64 / self.scheduled as f64
    }

    /// Latency quantile in milliseconds (p in `[0, 1]`).
    pub fn quantile_ms(&self, p: f64) -> f64 {
        self.latency.quantile(p) * 1e3
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.latency.count() == 0 {
            0.0
        } else {
            self.latency.mean() * 1e3
        }
    }

    /// Merge another tracker (same deadline) into this one. Exact in the
    /// `simlab` sense: any grouping or order of merges yields identical
    /// state, so sharded cells aggregate byte-identically.
    pub fn merge(&mut self, other: &SloTracker) {
        assert!(
            (self.deadline_s - other.deadline_s).abs() < 1e-12,
            "merging SLO trackers with different deadlines"
        );
        self.latency.merge(&other.latency);
        self.scheduled += other.scheduled;
        self.completed += other.completed;
        self.failed += other.failed;
        self.late += other.late;
        if other.last_completion_s > self.last_completion_s {
            self.last_completion_s = other.last_completion_s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(latencies: &[f64], deadline: f64) -> SloTracker {
        let mut t = SloTracker::new(deadline);
        for (i, &l) in latencies.iter().enumerate() {
            t.note_scheduled();
            t.record_ok(l, 10.0 + i as f64);
        }
        t
    }

    #[test]
    fn counts_and_violations() {
        let mut t = filled(&[0.1, 0.2, 0.9, 1.5], 1.0);
        t.note_scheduled();
        t.record_fail();
        assert_eq!(t.scheduled, 5);
        assert_eq!(t.completed, 4);
        assert_eq!(t.failed, 1);
        assert_eq!(t.late, 1);
        assert_eq!(t.good(), 3);
        // 2 of 5 scheduled missed the SLO (one late, one failed).
        assert!((t.violation_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(t.last_completion_s, 13.0);
    }

    #[test]
    fn empty_tracker_is_benign() {
        let t = SloTracker::new(1.0);
        assert_eq!(t.violation_fraction(), 0.0);
        assert_eq!(t.mean_ms(), 0.0);
        assert_eq!(t.quantile_ms(0.99), 0.0);
    }

    #[test]
    fn merge_matches_single_stream_any_grouping() {
        let all: Vec<f64> = (1..=60).map(|i| 0.01 * i as f64).collect();
        let single = filled(&all, 0.3);

        let mut left = filled(&all[..20], 0.3);
        let mid = filled(&all[20..45], 0.3);
        let right = filled(&all[45..], 0.3);
        // last_completion offsets differ per chunk; realign for equality.
        let mut a = left.clone();
        a.merge(&mid);
        a.merge(&right);
        let mut bc = mid.clone();
        bc.merge(&right);
        left.merge(&bc);

        for t in [&a, &left] {
            assert_eq!(t.scheduled, single.scheduled);
            assert_eq!(t.completed, single.completed);
            assert_eq!(t.late, single.late);
            assert_eq!(t.latency.hist, single.latency.hist);
            assert!((t.latency.mean() - single.latency.mean()).abs() < 1e-12);
        }
        assert_eq!(a.latency.hist, left.latency.hist);
    }

    #[test]
    #[should_panic(expected = "different deadlines")]
    fn merge_rejects_mismatched_deadlines() {
        let mut a = SloTracker::new(1.0);
        a.merge(&SloTracker::new(2.0));
    }
}
