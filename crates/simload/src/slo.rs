//! SLO accounting over coordinated-omission-free latencies.
//!
//! The tracker rides on `simlab`'s mergeable statistics
//! ([`StreamSummary`] = exact Welford moments + log₂ histogram), so
//! per-shard trackers merge into byte-identical aggregates no matter
//! how cells were grouped. Latencies are measured from the *scheduled*
//! arrival instant, not from when the client got around to issuing the
//! op — an op that queues behind a saturated service is charged its
//! full wait, which is what makes the open-loop frontier honest about
//! overload (no coordinated omission).

use simlab::StreamSummary;

/// Why a scheduled operation counts against the SLO. The shed /
/// budget-exhausted / timeout split matters under admission control:
/// a shed is the *policy working* (cheap, immediate), a timeout is the
/// policy failing (a full deadline burned), and a budget-exhausted
/// retry loop is the client-side brake engaging — conflating them
/// would make every shedding policy look as bad as the overload it
/// prevents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailClass {
    /// Rejected with ServerBusy (front-door or latch shed) and not
    /// retried further by the client's own choice.
    Shed,
    /// Retryable rejection, but the per-client retry budget was dry —
    /// the anti-amplification path. An SLO violation, not a silent drop.
    BudgetExhausted,
    /// Client-side attempt timeout.
    Timeout,
    /// Everything else (connection failures, internal errors, ...).
    Other,
}

/// Mergeable SLO accounting for one measurement window.
#[derive(Debug, Clone)]
pub struct SloTracker {
    /// The latency SLO (seconds, measured from the scheduled instant).
    pub deadline_s: f64,
    /// Latency of successful operations, seconds from scheduled instant.
    pub latency: StreamSummary,
    /// Observed staleness of successful read answers (seconds of
    /// virtual time the serving replica lagged the primary's appended
    /// watermark; 0 for reads answered by the primary). Populated only
    /// by read layers that measure it (azroute) — empty otherwise, so
    /// pre-consistency campaigns are unaffected.
    pub staleness: StreamSummary,
    /// Arrivals scheduled inside the measurement window.
    pub scheduled: u64,
    /// Operations that completed successfully.
    pub completed: u64,
    /// Operations that failed (all classes; equals the sum below).
    pub failed: u64,
    /// Failures classed [`FailClass::Shed`].
    pub shed: u64,
    /// Failures classed [`FailClass::BudgetExhausted`].
    pub budget_exhausted: u64,
    /// Failures classed [`FailClass::Timeout`].
    pub timed_out: u64,
    /// Successful operations that finished after the deadline.
    pub late: u64,
    /// Latest completion instant seen (seconds on the sim clock).
    pub last_completion_s: f64,
}

impl SloTracker {
    /// Empty tracker for the given deadline.
    pub fn new(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "SLO deadline must be positive");
        SloTracker {
            deadline_s,
            latency: StreamSummary::new(),
            staleness: StreamSummary::new(),
            scheduled: 0,
            completed: 0,
            failed: 0,
            shed: 0,
            budget_exhausted: 0,
            timed_out: 0,
            late: 0,
            last_completion_s: 0.0,
        }
    }

    /// Note one scheduled arrival inside the window.
    pub fn note_scheduled(&mut self) {
        self.scheduled += 1;
    }

    /// Record a successful operation: latency from the scheduled
    /// instant and the absolute completion instant.
    pub fn record_ok(&mut self, latency_s: f64, completion_s: f64) {
        self.completed += 1;
        self.latency.push(latency_s);
        if latency_s > self.deadline_s {
            self.late += 1;
        }
        if completion_s > self.last_completion_s {
            self.last_completion_s = completion_s;
        }
    }

    /// Record the observed staleness of one successful read answer
    /// (seconds behind the primary's appended watermark; 0 when the
    /// primary itself served it). Kept separate from
    /// [`record_ok`](Self::record_ok) so layers without a staleness
    /// notion never touch the stream.
    pub fn record_staleness(&mut self, staleness_s: f64) {
        self.staleness.push(staleness_s);
    }

    /// Record a failed operation (its latency does not enter the
    /// success distribution; it still counts against the SLO).
    pub fn record_fail(&mut self, class: FailClass) {
        self.failed += 1;
        match class {
            FailClass::Shed => self.shed += 1,
            FailClass::BudgetExhausted => self.budget_exhausted += 1,
            FailClass::Timeout => self.timed_out += 1,
            FailClass::Other => {}
        }
    }

    /// Successful completions within the deadline.
    pub fn good(&self) -> u64 {
        self.completed - self.late
    }

    /// Fraction of scheduled arrivals that completed inside the
    /// deadline. Exactly `0.0` — never NaN — for an empty window.
    pub fn good_fraction(&self) -> f64 {
        if self.scheduled == 0 {
            return 0.0;
        }
        self.good().min(self.scheduled) as f64 / self.scheduled as f64
    }

    /// Fraction of scheduled arrivals that missed the SLO (failed, still
    /// outstanding at window end, or completed late). `0.0` when nothing
    /// was scheduled.
    pub fn violation_fraction(&self) -> f64 {
        if self.scheduled == 0 {
            return 0.0;
        }
        let good = self.good().min(self.scheduled);
        (self.scheduled - good) as f64 / self.scheduled as f64
    }

    /// Latency quantile in milliseconds (p in `[0, 1]`).
    pub fn quantile_ms(&self, p: f64) -> f64 {
        self.latency.quantile(p) * 1e3
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.latency.count() == 0 {
            0.0
        } else {
            self.latency.mean() * 1e3
        }
    }

    /// Merge another tracker (same deadline) into this one. Exact in the
    /// `simlab` sense: any grouping or order of merges yields identical
    /// state, so sharded cells aggregate byte-identically.
    pub fn merge(&mut self, other: &SloTracker) {
        assert!(
            (self.deadline_s - other.deadline_s).abs() < 1e-12,
            "merging SLO trackers with different deadlines"
        );
        self.latency.merge(&other.latency);
        self.staleness.merge(&other.staleness);
        self.scheduled += other.scheduled;
        self.completed += other.completed;
        self.failed += other.failed;
        self.shed += other.shed;
        self.budget_exhausted += other.budget_exhausted;
        self.timed_out += other.timed_out;
        self.late += other.late;
        if other.last_completion_s > self.last_completion_s {
            self.last_completion_s = other.last_completion_s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(latencies: &[f64], deadline: f64) -> SloTracker {
        let mut t = SloTracker::new(deadline);
        for (i, &l) in latencies.iter().enumerate() {
            t.note_scheduled();
            t.record_ok(l, 10.0 + i as f64);
        }
        t
    }

    #[test]
    fn counts_and_violations() {
        let mut t = filled(&[0.1, 0.2, 0.9, 1.5], 1.0);
        t.note_scheduled();
        t.record_fail(FailClass::Timeout);
        assert_eq!(t.scheduled, 5);
        assert_eq!(t.completed, 4);
        assert_eq!(t.failed, 1);
        assert_eq!(t.timed_out, 1);
        assert_eq!(t.late, 1);
        assert_eq!(t.good(), 3);
        // 2 of 5 scheduled missed the SLO (one late, one failed).
        assert!((t.violation_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(t.last_completion_s, 13.0);
    }

    #[test]
    fn failure_classes_tally_separately() {
        let mut t = SloTracker::new(1.0);
        for class in [
            FailClass::Shed,
            FailClass::Shed,
            FailClass::BudgetExhausted,
            FailClass::Timeout,
            FailClass::Other,
        ] {
            t.note_scheduled();
            t.record_fail(class);
        }
        assert_eq!(t.failed, 5);
        assert_eq!(
            (t.shed, t.budget_exhausted, t.timed_out),
            (2, 1, 1),
            "classes must not be conflated"
        );
        assert_eq!(t.violation_fraction(), 1.0);
    }

    #[test]
    fn empty_window_is_benign_no_nan() {
        // Zero completions (an empty measurement window) must yield
        // goodput 0, not NaN, through every derived statistic.
        let t = SloTracker::new(1.0);
        assert_eq!(t.good(), 0);
        assert_eq!(t.good_fraction(), 0.0);
        assert!(!t.good_fraction().is_nan());
        assert_eq!(t.violation_fraction(), 0.0);
        assert!(!t.violation_fraction().is_nan());
        assert_eq!(t.mean_ms(), 0.0);
        assert_eq!(t.quantile_ms(0.99), 0.0);
    }

    #[test]
    fn all_shed_window() {
        // Every arrival shed at the door: no latency samples, full
        // violation, zero goodput — and still NaN-free.
        let mut t = SloTracker::new(0.5);
        for _ in 0..32 {
            t.note_scheduled();
            t.record_fail(FailClass::Shed);
        }
        assert_eq!(t.scheduled, 32);
        assert_eq!(t.completed, 0);
        assert_eq!(t.shed, 32);
        assert_eq!(t.good(), 0);
        assert_eq!(t.good_fraction(), 0.0);
        assert_eq!(t.violation_fraction(), 1.0);
        assert_eq!(t.latency.count(), 0);
        assert_eq!(t.mean_ms(), 0.0);
    }

    #[test]
    fn merged_violation_fractions_are_bit_exact_across_groupings() {
        // The same per-cell trackers merged as 1 "shard" vs 3 "shards"
        // must agree on the violation fraction to the last bit — the
        // shard-invariance contract campaign CSVs rely on.
        let cells: Vec<SloTracker> = (0..6)
            .map(|c| {
                let mut t = filled(
                    &(0..40)
                        .map(|i| 0.01 * ((c * 40 + i) % 97) as f64)
                        .collect::<Vec<_>>(),
                    0.3,
                );
                for k in 0..(c % 3) {
                    t.note_scheduled();
                    t.record_fail(if k == 0 {
                        FailClass::Shed
                    } else {
                        FailClass::BudgetExhausted
                    });
                }
                t
            })
            .collect();
        let mut flat = SloTracker::new(0.3);
        for c in &cells {
            flat.merge(c);
        }
        let mut sharded: Vec<SloTracker> = (0..3).map(|_| SloTracker::new(0.3)).collect();
        for (i, c) in cells.iter().enumerate() {
            sharded[i % 3].merge(c);
        }
        let mut merged = SloTracker::new(0.3);
        for s in &sharded {
            merged.merge(s);
        }
        assert_eq!(
            flat.violation_fraction().to_bits(),
            merged.violation_fraction().to_bits()
        );
        assert_eq!(
            flat.good_fraction().to_bits(),
            merged.good_fraction().to_bits()
        );
        assert_eq!(
            (flat.shed, flat.budget_exhausted, flat.timed_out),
            (merged.shed, merged.budget_exhausted, merged.timed_out)
        );
        assert_eq!(flat.latency.hist, merged.latency.hist);
    }

    #[test]
    fn merge_matches_single_stream_any_grouping() {
        let all: Vec<f64> = (1..=60).map(|i| 0.01 * i as f64).collect();
        let single = filled(&all, 0.3);

        let mut left = filled(&all[..20], 0.3);
        let mid = filled(&all[20..45], 0.3);
        let right = filled(&all[45..], 0.3);
        // last_completion offsets differ per chunk; realign for equality.
        let mut a = left.clone();
        a.merge(&mid);
        a.merge(&right);
        let mut bc = mid.clone();
        bc.merge(&right);
        left.merge(&bc);

        for t in [&a, &left] {
            assert_eq!(t.scheduled, single.scheduled);
            assert_eq!(t.completed, single.completed);
            assert_eq!(t.late, single.late);
            assert_eq!(t.latency.hist, single.latency.hist);
            assert!((t.latency.mean() - single.latency.mean()).abs() < 1e-12);
        }
        assert_eq!(a.latency.hist, left.latency.hist);
    }

    #[test]
    fn staleness_stream_merges_like_latency() {
        let mut a = SloTracker::new(1.0);
        let mut b = SloTracker::new(1.0);
        for s in [0.0, 0.5, 2.0] {
            a.record_staleness(s);
        }
        b.record_staleness(4.0);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.staleness.count(), 4);
        assert_eq!(merged.staleness.max(), 4.0);
        // Trackers that never record staleness stay empty through a
        // merge of empties — the pre-consistency campaigns' state.
        let mut clean = SloTracker::new(1.0);
        clean.merge(&SloTracker::new(1.0));
        assert_eq!(clean.staleness.count(), 0);
    }

    #[test]
    #[should_panic(expected = "different deadlines")]
    fn merge_rejects_mismatched_deadlines() {
        let mut a = SloTracker::new(1.0);
        a.merge(&SloTracker::new(2.0));
    }
}
