//! Open-loop client fleets.
//!
//! A closed-loop benchmark (the Fig 1–3 protocols in `cloudbench`)
//! issues the next request only after the previous one returns, so
//! under overload the *offered* rate politely backs off and the
//! measured latency hides the queueing a real workload would see. The
//! open-loop fleet instead fires each operation at its *scheduled*
//! arrival instant — one spawned task per arrival, sleeping until the
//! instant drawn by the [`ArrivalProcess`](crate::ArrivalProcess) —
//! and charges latency from that scheduled instant. An op that waits
//! behind a saturated service pays its full queueing delay, which is
//! what makes the offered-load frontier honest past the knee.
//!
//! Arrivals are dispatched round-robin to a fleet of small-instance
//! VMs (`clients[i % fleet]`), so no single VM's 13 MB/s storage
//! throttle caps the offered aggregate.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use azstore::{Entity, StampConfig, StorageAccountClient, StorageError, StorageStamp};
use simcore::prelude::*;
use simfault::{Backoff, GiveUp, Jitter, RetryBudget, RetryPolicy};
use simtrace::Layer;

use crate::arrival::ArrivalProcess;
use crate::slo::{FailClass, SloTracker};

/// Number of table partitions the seeded benchmark entities spread
/// across (matches the Fig 2 protocol's multi-partition layout).
const TABLE_PARTITIONS: usize = 16;

/// The operation an open-loop fleet fires per arrival.
#[derive(Debug, Clone, Copy)]
pub enum Workload {
    /// Download one pre-seeded blob (the Fig 1 DL op).
    BlobGet {
        /// Blob size in bytes.
        blob_bytes: f64,
    },
    /// Point query against pre-seeded entities (the Fig 2 Query op).
    TableQuery {
        /// Seeded entity population (arrival `i` reads entity `i % entities`).
        entities: usize,
        /// Entity payload size in kB.
        entity_kb: usize,
    },
    /// Enqueue a message (the Fig 3 Add op).
    QueueAdd {
        /// Message size in bytes.
        message_bytes: f64,
    },
}

impl Workload {
    /// Short name (used in the frontier CSV and trace spans).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::BlobGet { .. } => "blob_get",
            Workload::TableQuery { .. } => "table_query",
            Workload::QueueAdd { .. } => "queue_add",
        }
    }

    /// Payload bytes moved per successful op (for MB/s conversions).
    pub fn bytes_per_op(&self) -> f64 {
        match self {
            Workload::BlobGet { blob_bytes } => *blob_bytes,
            Workload::TableQuery { entity_kb, .. } => *entity_kb as f64 * 1e3,
            Workload::QueueAdd { message_bytes } => *message_bytes,
        }
    }
}

/// Client-side handling of shed (`ServerBusy`) responses: exponential
/// backoff with centred jitter, bounded per call by `retries` and
/// across calls by a per-client-VM [`RetryBudget`] — the brake that
/// keeps a shedding front door from being answered with a retry storm.
#[derive(Debug, Clone, Copy)]
pub struct ShedRetry {
    /// Backoff schedule between attempts.
    pub backoff: Backoff,
    /// Maximum retries per operation.
    pub retries: u32,
    /// Per-client retry-credit cap (bucket starts full).
    pub budget_max: f64,
    /// Credits earned back per successful operation.
    pub budget_earn: f64,
}

impl ShedRetry {
    /// Defaults scaled to the workload's SLO: back off at an eighth of
    /// the deadline doubling to half of it, three retries per op, a
    /// 10-credit client budget earning 0.1 per success.
    pub fn for_deadline(deadline_s: f64) -> Self {
        ShedRetry {
            backoff: Backoff::Exponential {
                base_s: deadline_s / 8.0,
                factor: 2.0,
                max_s: deadline_s / 2.0,
            },
            retries: 3,
            budget_max: 10.0,
            budget_earn: 0.1,
        }
    }
}

/// One open-loop measurement cell.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// The operation fired per arrival.
    pub workload: Workload,
    /// Arrival process shaping the schedule.
    pub process: ArrivalProcess,
    /// Target mean offered rate, operations per second.
    pub offered_ops_s: f64,
    /// Warmup before the measurement window; arrivals scheduled earlier
    /// run but are excluded from the statistics.
    pub warmup_s: f64,
    /// Measurement window length, seconds.
    pub window_s: f64,
    /// Number of small-instance client VMs arrivals round-robin over.
    pub fleet: usize,
    /// Latency SLO, seconds from the scheduled instant.
    pub deadline_s: f64,
    /// Retry shed responses (`None`: a shed fails the op outright).
    pub shed_retry: Option<ShedRetry>,
}

/// Result of one open-loop cell.
#[derive(Debug, Clone)]
pub struct LoadCellResult {
    /// Target offered rate (ops/s).
    pub offered_ops_s: f64,
    /// Offered rate actually scheduled in the window (ops/s) — differs
    /// from the target only by arrival-process granularity.
    pub scheduled_ops_s: f64,
    /// Achieved throughput (ops/s): successful completion *events*
    /// inside the measurement window, over the window. In steady state
    /// below the knee the completion rate balances the arrival rate, so
    /// this tracks the offered rate; above the knee the service runs
    /// continuously backlogged and the same count measures its capacity
    /// directly — no drain-time correction needed either side.
    pub achieved_ops_s: f64,
    /// Completion events inside the window that also met the deadline,
    /// per second of window — throughput that actually honoured the SLO.
    pub goodput_ops_s: f64,
    /// SLO accounting and the latency distribution, over the cohort of
    /// arrivals *scheduled* inside the window (latency is charged to
    /// the scheduling instant, so the cohort view is the
    /// coordinated-omission-free one).
    pub slo: SloTracker,
    /// Client retries of shed responses over the whole run (warmup
    /// included); 0 without [`LoadConfig::shed_retry`].
    pub retries: u64,
    /// Front-door admissions over the whole run (stamp-wide); 0 when
    /// admission is off.
    pub admit_accepted: u64,
    /// Front-door sheds over the whole run (stamp-wide).
    pub admit_shed: u64,
    /// Station-level `ContendedLatch` sheds over the whole run.
    pub latch_shed: u64,
}

/// Run one open-loop cell to completion on `sim` (drives `sim.run()`).
///
/// Builds a standalone stamp, seeds the workload's data, attaches the
/// fleet, draws the whole arrival schedule from the dedicated
/// `"load.arrivals"` stream, and spawns one task per arrival. Every
/// latency is measured from the scheduled instant (no coordinated
/// omission); arrivals scheduled during warmup execute but are not
/// recorded.
pub fn run_open_loop(sim: &Sim, stamp_cfg: StampConfig, cfg: &LoadConfig) -> LoadCellResult {
    assert!(cfg.fleet > 0, "fleet must be non-empty");
    assert!(cfg.window_s > 0.0, "window must be positive");
    let stamp = StorageStamp::standalone(sim, stamp_cfg);
    seed_workload(&stamp, cfg.workload);

    let clients: Vec<Rc<StorageAccountClient>> = stamp
        .attach_small_fleet(cfg.fleet)
        .into_iter()
        .map(Rc::new)
        .collect();

    // The whole schedule comes from one dedicated stream: a pure
    // function of (seed, process, rate, horizon), untouched by how the
    // operations later interleave.
    let mut rng = sim.rng("load.arrivals");
    let horizon = cfg.warmup_s + cfg.window_s;
    let instants = cfg.process.instants(&mut rng, cfg.offered_ops_s, horizon);

    let tracker = Rc::new(RefCell::new(SloTracker::new(cfg.deadline_s)));
    // Completion events landing inside the measurement window, from
    // *any* arrival (warmup cohort included): `(all, within deadline)`.
    // In steady state completions of warmup arrivals inside the window
    // balance window arrivals completing after it, so `drained /
    // window` is the unbiased throughput on both sides of the knee.
    let drained = Rc::new(std::cell::Cell::new((0u64, 0u64)));
    // Per-client-VM retry budgets (shared across that VM's arrivals).
    let budgets: Option<Vec<Rc<RetryBudget>>> = cfg.shed_retry.map(|sr| {
        (0..clients.len())
            .map(|_| Rc::new(RetryBudget::new(sr.budget_max, sr.budget_earn)))
            .collect()
    });
    let retries_total = Rc::new(std::cell::Cell::new(0u64));
    let (warmup_s, horizon_s, deadline_s) = (cfg.warmup_s, horizon, cfg.deadline_s);
    let mut in_window = 0u64;
    for (i, &t) in instants.iter().enumerate() {
        let measured = t >= cfg.warmup_s;
        if measured {
            in_window += 1;
            tracker.borrow_mut().note_scheduled();
        }
        let s = sim.clone();
        let client = Rc::clone(&clients[i % clients.len()]);
        let tracker = Rc::clone(&tracker);
        let drained = Rc::clone(&drained);
        let retries_total = Rc::clone(&retries_total);
        let budget = budgets.as_ref().map(|b| Rc::clone(&b[i % clients.len()]));
        let shed_retry = cfg.shed_retry;
        let workload = cfg.workload;
        sim.spawn(async move {
            let sched = SimTime::ZERO + SimDuration::from_secs_f64(t);
            s.sleep_until(sched).await;
            let sp = simtrace::span(Layer::Load, "load.op", || {
                format!("load:{}", workload.name())
            });
            sp.attr("sched_s", format!("{t:.6}"));
            // The absolute SLO deadline, declared to the front door
            // before every attempt: a retry that arrives with most of
            // its budget already burned is exactly the request a
            // deadline-aware policy should shed first.
            let deadline_abs_s = t + deadline_s;
            let res: Result<(), (StorageError, GiveUp)> = match (shed_retry, budget) {
                (Some(sr), Some(budget)) => {
                    let rng = RefCell::new(s.rng(&format!("load.retry.{i}")));
                    let policy = RetryPolicy {
                        backoff: sr.backoff,
                        retries: sr.retries,
                        attempt_timeout: None,
                        jitter: Jitter::Centered,
                        retry_counter: Some("load.shed_retries"),
                    };
                    let attempts = std::cell::Cell::new(0u64);
                    let r = policy
                        .run_budgeted(
                            &s,
                            Some(&rng),
                            &budget,
                            || None::<StorageError>,
                            |_| {
                                attempts.set(attempts.get() + 1);
                                azstore::admit::stash_deadline(deadline_abs_s);
                                fire(Rc::clone(&client), workload, i)
                            },
                            |e| *e == StorageError::ServerBusy,
                            || StorageError::Timeout,
                        )
                        .await;
                    retries_total.set(retries_total.get() + attempts.get().saturating_sub(1));
                    r
                }
                _ => {
                    azstore::admit::stash_deadline(deadline_abs_s);
                    fire(Rc::clone(&client), workload, i)
                        .await
                        .map_err(|e| (e, GiveUp::NotRetryable))
                }
            };
            let ok = res.is_ok();
            // Coordinated-omission-free: charge from the scheduled
            // instant, not from when the op actually got issued.
            let latency_s = (s.now() - sched).as_secs_f64();
            sp.attr("latency_ms", format!("{:.3}", latency_s * 1e3));
            sp.attr("deadline", if ok { "met" } else { "failed" });
            sp.end();
            let done_s = s.now().as_secs_f64();
            if ok && (warmup_s..horizon_s).contains(&done_s) {
                let (all, good) = drained.get();
                let met = (latency_s <= deadline_s) as u64;
                drained.set((all + 1, good + met));
            }
            if measured {
                let mut tr = tracker.borrow_mut();
                match res {
                    Ok(()) => tr.record_ok(latency_s, done_s),
                    Err((e, giveup)) => tr.record_fail(classify(&e, giveup)),
                }
            }
        });
    }
    sim.run();

    let slo = Rc::try_unwrap(tracker)
        .expect("all arrival tasks finished")
        .into_inner();
    let (all, good) = drained.get();
    let (admit_accepted, admit_shed) = stamp.admission_stats();
    LoadCellResult {
        offered_ops_s: cfg.offered_ops_s,
        scheduled_ops_s: in_window as f64 / cfg.window_s,
        achieved_ops_s: all as f64 / cfg.window_s,
        goodput_ops_s: good as f64 / cfg.window_s,
        slo,
        retries: retries_total.get(),
        admit_accepted,
        admit_shed,
        latch_shed: stamp.latch_shed_total(),
    }
}

/// Seed the data a workload's ops read (writes need no seeding).
pub fn seed_workload(stamp: &Rc<StorageStamp>, workload: Workload) {
    match workload {
        Workload::BlobGet { blob_bytes } => {
            stamp.blob_service().seed("load", "blob", blob_bytes);
        }
        Workload::TableQuery {
            entities,
            entity_kb,
        } => {
            assert!(entities > 0, "table workload needs seeded entities");
            for j in 0..entities {
                let pk = format!("p{}", j % TABLE_PARTITIONS);
                let rk = format!("r{j}");
                stamp
                    .table_service()
                    .seed("load", Entity::benchmark(&pk, &rk, entity_kb));
            }
        }
        Workload::QueueAdd { .. } => {}
    }
}

/// Live progress counters for an open-loop run, shared with whoever is
/// watching the fleet (the elastic supervisor reads queue depth as
/// `dispatched - completed` and goodput deltas between control ticks).
#[derive(Debug, Default)]
pub struct LoadObserver {
    /// Arrivals whose scheduled instant has passed (op issued).
    pub dispatched: Cell<u64>,
    /// Ops finished, successfully or not.
    pub completed: Cell<u64>,
    /// Ops finished successfully within the deadline.
    pub good: Cell<u64>,
    /// Ops failed with a shed (`ServerBusy`) response.
    pub shed: Cell<u64>,
}

impl LoadObserver {
    /// Ops issued but not yet finished — the fleet's backlog.
    pub fn in_flight(&self) -> u64 {
        self.dispatched.get() - self.completed.get()
    }
}

/// Spawn one task per arrival, shifted `offset_s` into the future, with
/// latency charged from the shifted scheduled instant (coordinated-
/// omission-free, like [`run_open_loop`]). Every arrival is recorded in
/// `tracker`; `observer` counts progress for an external control loop.
/// Sheds fail the op outright (no client retries): an elastic
/// controller is expected to buy capacity, not paper over the shortfall
/// with retry storms. Does not call `sim.run()`.
#[allow(clippy::too_many_arguments)]
pub fn spawn_arrivals(
    sim: &Sim,
    clients: &[Rc<StorageAccountClient>],
    workload: Workload,
    instants: &[f64],
    offset_s: f64,
    deadline_s: f64,
    tracker: &Rc<RefCell<SloTracker>>,
    observer: &Rc<LoadObserver>,
) {
    assert!(!clients.is_empty(), "fleet must be non-empty");
    for (i, &t) in instants.iter().enumerate() {
        tracker.borrow_mut().note_scheduled();
        let s = sim.clone();
        let client = Rc::clone(&clients[i % clients.len()]);
        let tracker = Rc::clone(tracker);
        let observer = Rc::clone(observer);
        sim.spawn(async move {
            let sched = SimTime::ZERO + SimDuration::from_secs_f64(offset_s + t);
            s.sleep_until(sched).await;
            observer.dispatched.set(observer.dispatched.get() + 1);
            let sp = simtrace::span(Layer::Load, "load.op", || {
                format!("load:{}", workload.name())
            });
            sp.attr("sched_s", format!("{:.6}", offset_s + t));
            azstore::admit::stash_deadline(offset_s + t + deadline_s);
            let res = fire(Rc::clone(&client), workload, i).await;
            let latency_s = (s.now() - sched).as_secs_f64();
            let ok = res.is_ok();
            sp.attr("latency_ms", format!("{:.3}", latency_s * 1e3));
            sp.attr("deadline", if ok { "met" } else { "failed" });
            sp.end();
            observer.completed.set(observer.completed.get() + 1);
            if ok && latency_s <= deadline_s {
                observer.good.set(observer.good.get() + 1);
            }
            let done_s = s.now().as_secs_f64();
            let mut tr = tracker.borrow_mut();
            match res {
                Ok(()) => tr.record_ok(latency_s, done_s),
                Err(e) => {
                    if e == StorageError::ServerBusy {
                        observer.shed.set(observer.shed.get() + 1);
                    }
                    tr.record_fail(classify(&e, GiveUp::NotRetryable));
                }
            }
        });
    }
}

/// Fire one workload op; discard the payload-specific success value.
pub async fn fire(
    client: Rc<StorageAccountClient>,
    workload: Workload,
    i: usize,
) -> Result<(), StorageError> {
    match workload {
        Workload::BlobGet { .. } => client.blob.get("load", "blob").await.map(|_| ()),
        Workload::TableQuery { entities, .. } => {
            let j = i % entities;
            let pk = format!("p{}", j % TABLE_PARTITIONS);
            let rk = format!("r{j}");
            client.table.query_point("load", &pk, &rk).await.map(|_| ())
        }
        Workload::QueueAdd { message_bytes } => client
            .queue
            .add("load", format!("m{i}"), message_bytes)
            .await
            .map(|_| ()),
    }
}

/// Map a final error + give-up reason to its SLO failure class.
fn classify(e: &StorageError, giveup: GiveUp) -> FailClass {
    match (e, giveup) {
        (StorageError::ServerBusy, GiveUp::BudgetExhausted) => FailClass::BudgetExhausted,
        (StorageError::ServerBusy, _) => FailClass::Shed,
        (StorageError::Timeout, _) => FailClass::Timeout,
        _ => FailClass::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(seed: u64, offered: f64) -> LoadCellResult {
        let sim = Sim::new(seed);
        run_open_loop(
            &sim,
            StampConfig::default(),
            &LoadConfig {
                workload: Workload::QueueAdd {
                    message_bytes: 512.0,
                },
                process: ArrivalProcess::Poisson,
                offered_ops_s: offered,
                warmup_s: 2.0,
                window_s: 10.0,
                fleet: 8,
                deadline_s: 0.5,
                shed_retry: None,
            },
        )
    }

    #[test]
    fn below_knee_achieved_tracks_offered() {
        let r = cell(7, 50.0);
        assert!(r.slo.scheduled > 300, "scheduled {}", r.slo.scheduled);
        assert_eq!(r.slo.failed, 0);
        assert!(
            (r.achieved_ops_s - r.scheduled_ops_s).abs() / r.scheduled_ops_s < 0.02,
            "achieved {} vs scheduled {}",
            r.achieved_ops_s,
            r.scheduled_ops_s
        );
        assert!(r.slo.violation_fraction() < 0.05);
        assert!(r.goodput_ops_s <= r.achieved_ops_s);
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let (a, b) = (cell(11, 80.0), cell(11, 80.0));
        assert_eq!(a.slo.completed, b.slo.completed);
        assert_eq!(a.slo.latency.hist, b.slo.latency.hist);
        assert_eq!(a.achieved_ops_s.to_bits(), b.achieved_ops_s.to_bits());
        assert_eq!(
            a.slo.latency.mean().to_bits(),
            b.slo.latency.mean().to_bits()
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let (a, b) = (cell(1, 80.0), cell(2, 80.0));
        assert_ne!(
            a.slo.latency.mean().to_bits(),
            b.slo.latency.mean().to_bits()
        );
    }

    #[test]
    fn blob_and_table_workloads_run() {
        let sim = Sim::new(3);
        let r = run_open_loop(
            &sim,
            StampConfig::default(),
            &LoadConfig {
                workload: Workload::BlobGet { blob_bytes: 4e6 },
                process: ArrivalProcess::ConstantRate,
                offered_ops_s: 4.0,
                warmup_s: 1.0,
                window_s: 5.0,
                fleet: 4,
                deadline_s: 5.0,
                shed_retry: None,
            },
        );
        assert!(r.slo.completed > 0);
        assert!(r.slo.latency.mean() > 0.0);

        let sim = Sim::new(4);
        let r = run_open_loop(
            &sim,
            StampConfig::default(),
            &LoadConfig {
                workload: Workload::TableQuery {
                    entities: 64,
                    entity_kb: 4,
                },
                process: ArrivalProcess::Poisson,
                offered_ops_s: 40.0,
                warmup_s: 1.0,
                window_s: 5.0,
                fleet: 8,
                deadline_s: 1.0,
                shed_retry: None,
            },
        );
        assert_eq!(r.slo.failed, 0);
        assert!(r.slo.completed > 100);
    }
}
