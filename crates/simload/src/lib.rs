//! # simload — open-loop workload generation and SLO tracking
//!
//! The Fig 1–3 reproductions in `cloudbench` are *closed-loop*: each
//! client issues its next request only after the previous one returns,
//! which is the paper's own protocol but systematically understates
//! latency under overload (the offered rate backs off exactly when the
//! service saturates — coordinated omission). This crate adds the
//! complementary *open-loop* view:
//!
//! * [`ArrivalProcess`] — deterministic arrival schedules (constant
//!   rate, Poisson, MMPP-style bursty on/off, diurnal curve, recorded
//!   replay) drawn from a dedicated `simcore` RNG stream, so the event
//!   stream is byte-reproducible and shard-invariant;
//! * [`run_open_loop`] — a client fleet that fires blob/table/queue
//!   operations against `azstore` at the scheduled instants and
//!   charges latency from those instants;
//! * [`SloTracker`] — mergeable SLO accounting (deadline violations,
//!   goodput, p50/p95/p99/p99.9) on `simlab`'s exact-merge statistics.
//!
//! The `frontier` campaign in `bench` sweeps offered load through
//! these pieces to locate each service's saturation knee and
//! cross-validates it against the closed-loop Fig 1–3 peaks.

#![warn(missing_docs)]

pub mod arrival;
pub mod fleet;
pub mod observe;
pub mod slo;

pub use arrival::ArrivalProcess;
pub use fleet::{
    fire, run_open_loop, seed_workload, spawn_arrivals, LoadCellResult, LoadConfig, LoadObserver,
    ShedRetry, Workload,
};
pub use observe::WindowedArrivals;
pub use slo::{FailClass, SloTracker};
