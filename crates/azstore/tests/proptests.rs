//! Property-based tests on storage-service invariants: queue FIFO and
//! exactly-once-per-receipt semantics, table key addressing, entity
//! size accounting.

use proptest::prelude::*;

use azstore::{Entity, PropValue, StampConfig, StorageStamp};
use simcore::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever interleaving of add/receive+delete a single client
    /// performs, messages come out in insertion order and each exactly
    /// once.
    #[test]
    fn queue_is_fifo_exactly_once(ops in prop::collection::vec(prop::bool::ANY, 1..60)) {
        let sim = Sim::new(0xF1F0);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        let client = stamp.attach_small_client();
        let h = sim.spawn(async move {
            let mut sent = 0u32;
            let mut got = Vec::new();
            for &do_add in &ops {
                if do_add {
                    client
                        .queue
                        .add("q", format!("{sent}"), 512.0)
                        .await
                        .unwrap();
                    sent += 1;
                } else if let Some(m) = client.queue.receive_default("q").await.unwrap() {
                    client.queue.delete_message("q", m.receipt).await.unwrap();
                    got.push(m.message.body.parse::<u32>().unwrap());
                }
            }
            // Drain the rest.
            while let Some(m) = client.queue.receive_default("q").await.unwrap() {
                client.queue.delete_message("q", m.receipt).await.unwrap();
                got.push(m.message.body.parse::<u32>().unwrap());
            }
            (sent, got)
        });
        sim.run();
        let (sent, got) = h.try_take().unwrap();
        prop_assert_eq!(got.len() as u32, sent);
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "out of order: {:?}", got);
    }

    /// Entity wire size grows exactly with its payload and never
    /// undercounts the keys.
    #[test]
    fn entity_size_accounts_payload(
        pk in "[a-z]{1,20}",
        rk in "[a-z0-9]{1,20}",
        pad in 0usize..5000,
    ) {
        let e = Entity::new(pk.clone(), rk.clone())
            .with("v", PropValue::Str("x".repeat(pad)));
        let expect = pk.len() + rk.len() + 1 + pad;
        prop_assert!((e.size() - expect as f64).abs() < 1e-9);
        // Adding a property strictly grows the size.
        let bigger = e.clone().with("w", PropValue::I64(0));
        prop_assert!(bigger.size() > e.size());
    }

    /// Inserted entities are retrievable by exactly their keys — near
    /// misses return NotFound.
    #[test]
    fn table_is_key_addressed(keys in prop::collection::btree_set("[a-z]{1,6}", 1..12)) {
        let sim = Sim::new(0x7AB);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        let client = stamp.attach_small_client();
        let keys: Vec<String> = keys.into_iter().collect();
        let n_keys = keys.len();
        let h = sim.spawn(async move {
            for k in &keys {
                client
                    .table
                    .insert("t", Entity::new("p", k.clone()))
                    .await
                    .unwrap();
            }
            let mut hits = 0;
            for k in &keys {
                if client.table.query_point("t", "p", k).await.is_ok() {
                    hits += 1;
                }
            }
            let miss = client.table.query_point("t", "p", "@@nope@@").await;
            (hits, miss.is_err())
        });
        sim.run();
        let (hits, missed) = h.try_take().unwrap();
        prop_assert_eq!(hits, n_keys);
        prop_assert!(missed);
    }

    /// Blob namespace: put_new succeeds exactly once per name,
    /// regardless of the order of attempts.
    #[test]
    fn blob_create_if_absent_is_exactly_once(names in prop::collection::vec(0u8..6, 2..20)) {
        let sim = Sim::new(0xB10B);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        let client = stamp.attach_small_client();
        let names2 = names.clone();
        let h = sim.spawn(async move {
            let mut created = 0usize;
            for n in &names2 {
                if client
                    .blob
                    .put_new("c", &format!("b{n}"), 100.0)
                    .await
                    .is_ok()
                {
                    created += 1;
                }
            }
            created
        });
        sim.run();
        let created = h.try_take().unwrap();
        let distinct: std::collections::BTreeSet<u8> = names.into_iter().collect();
        prop_assert_eq!(created, distinct.len());
    }
}

/// Replay one synthetic arrival/completion schedule against a policy
/// built from `cfg`, simulating the door's in-flight bookkeeping, and
/// return the decision sequence. Pure: no sim, no RNG — exactly the
/// conditions the `AdmissionPolicy` contract promises determinism
/// under.
fn drive_policy(cfg: &azstore::AdmissionConfig, schedule: &[(u16, bool, u16)]) -> Vec<bool> {
    let mut policy = cfg.build_policy().expect("a real policy, not None");
    let mut decisions = Vec::with_capacity(schedule.len());
    let mut now_s = 0.0;
    let mut in_flight: Vec<f64> = Vec::new(); // admission instants
    let mut share_s = 0.0;
    for &(dt_ms, declares_budget, sojourn_ms) in schedule {
        now_s += dt_ms as f64 * 1e-3;
        // Complete the oldest in-flight op first when the event says so
        // (sojourn_ms > 0), mirroring the door's EWMA bookkeeping.
        if sojourn_ms > 0 && !in_flight.is_empty() {
            let admitted = in_flight.remove(0);
            let sojourn = (now_s - admitted).max(sojourn_ms as f64 * 1e-3);
            let n = (in_flight.len() + 1) as f64;
            share_s = if share_s == 0.0 {
                sojourn / n
            } else {
                share_s + 0.2 * (sojourn / n - share_s)
            };
            policy.on_complete(now_s, sojourn);
        }
        let obs = azstore::DoorObs {
            in_flight: in_flight.len(),
            service_share_s: share_s,
        };
        let budget = declares_budget.then_some(0.25);
        let admitted = policy.admit(now_s, &obs, budget);
        decisions.push(admitted);
        if admitted {
            in_flight.push(now_s);
        }
    }
    decisions
}

/// The four real policy configurations, parameterized the way the
/// shedding campaign derives them from a nominal rate and deadline.
fn all_policies() -> [azstore::AdmissionConfig; 4] {
    [
        azstore::AdmissionConfig::TokenBucket {
            rate_ops_s: 100.0,
            burst: 8.0,
        },
        azstore::AdmissionConfig::QueueBound { limit: 24 },
        azstore::AdmissionConfig::DeadlineAware {
            default_budget_s: 0.25,
        },
        azstore::AdmissionConfig::CoDel {
            target_s: 0.05,
            interval_s: 0.2,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Admission policies are pure state machines: replaying the same
    /// arrival/completion schedule against a freshly built policy of
    /// any kind yields a byte-identical decision sequence. This is the
    /// property shard invariance of the shedding campaign rests on —
    /// no RNG, no wall clock, no allocation-order dependence.
    #[test]
    fn admission_policies_are_deterministic(
        schedule in prop::collection::vec(
            (0u16..40, prop::bool::ANY, 0u16..400),
            1..200,
        ),
    ) {
        for cfg in all_policies() {
            let a = drive_policy(&cfg, &schedule);
            let b = drive_policy(&cfg, &schedule);
            prop_assert_eq!(a, b, "policy {} not deterministic", cfg.name());
        }
    }

    /// On a schedule that is unambiguously overloaded — arrivals every
    /// few ms, completions rare and slow — the four policies must not
    /// collapse into one behaviour: each shapes the admitted stream
    /// differently (that difference is what the shedding campaign
    /// measures), and every one of them both admits and sheds at least
    /// once.
    #[test]
    fn admission_policies_diverge_under_overload(
        dt_ms in 1u16..4,
        complete_every in 8usize..16,
    ) {
        // 400 arrivals at ~2-4 ms spacing (~250-1000/s against a
        // 100/s token rate), a slow 300 ms completion every
        // `complete_every` arrivals: deep backlog, long sojourns.
        let schedule: Vec<(u16, bool, u16)> = (0..400)
            .map(|i| {
                let sojourn = if i % complete_every == complete_every - 1 {
                    300
                } else {
                    0
                };
                (dt_ms, true, sojourn)
            })
            .collect();
        let decisions: Vec<Vec<bool>> = all_policies()
            .iter()
            .map(|cfg| drive_policy(cfg, &schedule))
            .collect();
        for (cfg, d) in all_policies().iter().zip(&decisions) {
            prop_assert!(
                d.iter().any(|&x| x) && d.iter().any(|&x| !x),
                "policy {} never exercised both outcomes under overload",
                cfg.name()
            );
        }
        let distinct: std::collections::BTreeSet<&Vec<bool>> = decisions.iter().collect();
        prop_assert!(
            distinct.len() >= 3,
            "policies collapsed into {} distinct behaviours under overload",
            distinct.len()
        );
    }
}
