//! Property-based tests on storage-service invariants: queue FIFO and
//! exactly-once-per-receipt semantics, table key addressing, entity
//! size accounting.

use proptest::prelude::*;

use azstore::{Entity, PropValue, StampConfig, StorageStamp};
use simcore::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever interleaving of add/receive+delete a single client
    /// performs, messages come out in insertion order and each exactly
    /// once.
    #[test]
    fn queue_is_fifo_exactly_once(ops in prop::collection::vec(prop::bool::ANY, 1..60)) {
        let sim = Sim::new(0xF1F0);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        let client = stamp.attach_small_client();
        let h = sim.spawn(async move {
            let mut sent = 0u32;
            let mut got = Vec::new();
            for &do_add in &ops {
                if do_add {
                    client
                        .queue
                        .add("q", format!("{sent}"), 512.0)
                        .await
                        .unwrap();
                    sent += 1;
                } else if let Some(m) = client.queue.receive_default("q").await.unwrap() {
                    client.queue.delete_message("q", m.receipt).await.unwrap();
                    got.push(m.message.body.parse::<u32>().unwrap());
                }
            }
            // Drain the rest.
            while let Some(m) = client.queue.receive_default("q").await.unwrap() {
                client.queue.delete_message("q", m.receipt).await.unwrap();
                got.push(m.message.body.parse::<u32>().unwrap());
            }
            (sent, got)
        });
        sim.run();
        let (sent, got) = h.try_take().unwrap();
        prop_assert_eq!(got.len() as u32, sent);
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "out of order: {:?}", got);
    }

    /// Entity wire size grows exactly with its payload and never
    /// undercounts the keys.
    #[test]
    fn entity_size_accounts_payload(
        pk in "[a-z]{1,20}",
        rk in "[a-z0-9]{1,20}",
        pad in 0usize..5000,
    ) {
        let e = Entity::new(pk.clone(), rk.clone())
            .with("v", PropValue::Str("x".repeat(pad)));
        let expect = pk.len() + rk.len() + 1 + pad;
        prop_assert!((e.size() - expect as f64).abs() < 1e-9);
        // Adding a property strictly grows the size.
        let bigger = e.clone().with("w", PropValue::I64(0));
        prop_assert!(bigger.size() > e.size());
    }

    /// Inserted entities are retrievable by exactly their keys — near
    /// misses return NotFound.
    #[test]
    fn table_is_key_addressed(keys in prop::collection::btree_set("[a-z]{1,6}", 1..12)) {
        let sim = Sim::new(0x7AB);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        let client = stamp.attach_small_client();
        let keys: Vec<String> = keys.into_iter().collect();
        let n_keys = keys.len();
        let h = sim.spawn(async move {
            for k in &keys {
                client
                    .table
                    .insert("t", Entity::new("p", k.clone()))
                    .await
                    .unwrap();
            }
            let mut hits = 0;
            for k in &keys {
                if client.table.query_point("t", "p", k).await.is_ok() {
                    hits += 1;
                }
            }
            let miss = client.table.query_point("t", "p", "@@nope@@").await;
            (hits, miss.is_err())
        });
        sim.run();
        let (hits, missed) = h.try_take().unwrap();
        prop_assert_eq!(hits, n_keys);
        prop_assert!(missed);
    }

    /// Blob namespace: put_new succeeds exactly once per name,
    /// regardless of the order of attempts.
    #[test]
    fn blob_create_if_absent_is_exactly_once(names in prop::collection::vec(0u8..6, 2..20)) {
        let sim = Sim::new(0xB10B);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        let client = stamp.attach_small_client();
        let names2 = names.clone();
        let h = sim.spawn(async move {
            let mut created = 0usize;
            for n in &names2 {
                if client
                    .blob
                    .put_new("c", &format!("b{n}"), 100.0)
                    .await
                    .is_ok()
                {
                    created += 1;
                }
            }
            created
        });
        sim.run();
        let created = h.try_take().unwrap();
        let distinct: std::collections::BTreeSet<u8> = names.into_iter().collect();
        prop_assert_eq!(created, distinct.len());
    }
}
