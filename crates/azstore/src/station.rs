//! Service-station building blocks shared by the three storage services.
//!
//! Two mechanisms generate every concurrency curve in the paper's
//! storage figures:
//!
//! * [`LoadedStation`] — processor-sharing style service whose per-request
//!   time grows linearly with the number of requests in flight
//!   (`s = (base + load·n) · jitter`). Models CPU/cache/IO pressure on
//!   front-end and partition servers: per-client rates decline with
//!   concurrency while aggregate throughput keeps rising toward an
//!   asymptote — the Insert/Query/Peek behaviour ("we have not hit the
//!   maximum server throughput").
//!
//! * [`ContendedLatch`] — an exclusive latch whose hold time inflates
//!   with the number of waiters (`hold = h0 · (1 + waiters/scale) ·
//!   jitter`) and which sheds load (ServerBusy) beyond a queue limit.
//!   Models per-entity write latches and queue-head synchronization:
//!   aggregate throughput peaks at a specific concurrency and *declines*
//!   beyond it — the Update@8, Delete@128, Add/Receive@64 behaviour.

use std::cell::Cell;
use std::rc::Rc;

use simcore::prelude::*;

use crate::error::{Result, StorageError};

/// Multiplicative lognormal jitter around 1.0.
pub(crate) fn jitter(rng: &mut SimRng, sigma: f64) -> f64 {
    LogNormal::with_mean(1.0, sigma).sample(rng)
}

/// Shared capacity dial for station nominal rates.
///
/// The storage calibration reproduces the paper's curves at a fixed
/// reference fleet of front-end / partition servers. The elastic
/// campaign varies the fleet at runtime, so stations accept a shared
/// `CapacityScale` handle: `r = live_instances / reference_fleet`.
/// Only the *load-dependent* terms scale — `load·n` becomes `load·n/r`
/// and latch holds divide by `r` — so zero-load latency stays put while
/// aggregate throughput (and the latch shed threshold) scale ∝ r, which
/// is what adding identical front-ends buys you. At the default `r = 1`
/// every formula is evaluated exactly as before (bit-identical), so
/// existing campaigns are unaffected.
#[derive(Clone)]
pub struct CapacityScale(Rc<Cell<f64>>);

impl CapacityScale {
    /// A dial fixed at the reference capacity (`r = 1`).
    pub fn unit() -> Self {
        CapacityScale(Rc::new(Cell::new(1.0)))
    }

    /// Current scale.
    pub fn get(&self) -> f64 {
        self.0.get()
    }

    /// Set the scale; clamped below to keep service times finite even
    /// when a controller briefly has zero live instances.
    pub fn set(&self, r: f64) {
        self.0.set(r.max(1e-3));
    }
}

impl Default for CapacityScale {
    fn default() -> Self {
        CapacityScale::unit()
    }
}

impl std::fmt::Debug for CapacityScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CapacityScale({})", self.0.get())
    }
}

/// Decrements a shared counter on drop. Service futures are raced
/// against client timeouts and may be dropped at any await point; the
/// in-flight/waiter counts must unwind regardless (cancel-safety).
struct CountGuard {
    counter: Rc<Cell<usize>>,
}

impl CountGuard {
    fn enter(counter: &Rc<Cell<usize>>) -> Self {
        counter.set(counter.get() + 1);
        CountGuard {
            counter: Rc::clone(counter),
        }
    }
}

impl Drop for CountGuard {
    fn drop(&mut self) {
        self.counter.set(self.counter.get() - 1);
    }
}

/// Load-dependent service station (see module docs).
pub struct LoadedStation {
    sim: Sim,
    base_s: f64,
    load_s: f64,
    jitter_sigma: f64,
    capacity: CapacityScale,
    in_flight: Rc<Cell<usize>>,
    served: Cell<u64>,
}

impl LoadedStation {
    /// Station with fixed cost `base_s` plus `load_s` per in-flight
    /// request, jittered lognormally.
    pub fn new(sim: &Sim, base_s: f64, load_s: f64, jitter_sigma: f64) -> Self {
        LoadedStation {
            sim: sim.clone(),
            base_s,
            load_s,
            jitter_sigma,
            capacity: CapacityScale::unit(),
            in_flight: Rc::new(Cell::new(0)),
            served: Cell::new(0),
        }
    }

    /// Attach a shared [`CapacityScale`] dial (see its docs).
    pub fn with_capacity(mut self, capacity: CapacityScale) -> Self {
        self.capacity = capacity;
        self
    }

    /// Requests currently in service.
    pub fn in_flight(&self) -> usize {
        self.in_flight.get()
    }

    /// Total requests served.
    pub fn served(&self) -> u64 {
        self.served.get()
    }

    /// Serve one request with an extra fixed cost `extra_s` (payload
    /// transfer, scan length, …). Returns the service time spent.
    /// Cancel-safe: dropping the future mid-service unwinds the
    /// in-flight count.
    pub async fn serve(&self, extra_s: f64, rng: &mut SimRng) -> SimDuration {
        let guard = CountGuard::enter(&self.in_flight);
        let n = self.in_flight.get();
        let r = self.capacity.get();
        // Guarded so the default r = 1 path runs the exact historical
        // float expression (bit-identical results).
        let mut s = if r == 1.0 {
            (self.base_s + self.load_s * n as f64 + extra_s) * jitter(rng, self.jitter_sigma)
        } else {
            (self.base_s + self.load_s * n as f64 / r + extra_s) * jitter(rng, self.jitter_sigma)
        };
        // An active simfault network episode (link degradation /
        // partition) stretches the round trip embedded in the service
        // time — a partition pushes ops past every client timeout.
        let m = simfault::net_rtt_multiplier(self.sim.now().as_secs_f64());
        if m != 1.0 {
            s *= m;
        }
        let d = SimDuration::from_secs_f64(s);
        self.sim.delay(d).await;
        drop(guard);
        self.served.set(self.served.get() + 1);
        d
    }
}

/// Exclusive latch with contention-inflated hold and load shedding.
pub struct ContendedLatch {
    sim: Sim,
    latch: Semaphore,
    hold_s: f64,
    hold_nscale: f64,
    jitter_sigma: f64,
    busy_queue_limit: usize,
    capacity: CapacityScale,
    waiters: Rc<Cell<usize>>,
    held_total: Cell<u64>,
    shed_total: Cell<u64>,
}

impl ContendedLatch {
    /// `hold_s` base hold, inflating by `1 + waiters/hold_nscale`;
    /// requests arriving when more than `busy_queue_limit` are already
    /// queued are rejected with [`StorageError::ServerBusy`].
    pub fn new(
        sim: &Sim,
        hold_s: f64,
        hold_nscale: f64,
        jitter_sigma: f64,
        busy_queue_limit: usize,
    ) -> Self {
        ContendedLatch {
            sim: sim.clone(),
            latch: Semaphore::new(1),
            hold_s,
            hold_nscale,
            jitter_sigma,
            busy_queue_limit,
            capacity: CapacityScale::unit(),
            waiters: Rc::new(Cell::new(0)),
            held_total: Cell::new(0),
            shed_total: Cell::new(0),
        }
    }

    /// Attach a shared [`CapacityScale`] dial (see its docs).
    pub fn with_capacity(mut self, capacity: CapacityScale) -> Self {
        self.capacity = capacity;
        self
    }

    /// Current queue length (including the holder).
    pub fn contention(&self) -> usize {
        self.waiters.get()
    }

    /// Total successful holds.
    pub fn held_total(&self) -> u64 {
        self.held_total.get()
    }

    /// Total requests shed with ServerBusy.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.get()
    }

    /// Acquire the latch, hold it for the (contention-dependent) commit
    /// time scaled by `hold_factor` (entity-size scaling), release.
    /// Cancel-safe: dropping the future at any point releases both the
    /// waiter slot and (if held) the latch.
    pub async fn commit(&self, hold_factor: f64, rng: &mut SimRng) -> Result<()> {
        let r = self.capacity.get();
        // Below the reference fleet the shed threshold shrinks with
        // capacity (fewer servers tolerate a shorter queue); above it
        // the calibrated limit stands.
        let limit = if r >= 1.0 {
            self.busy_queue_limit
        } else {
            ((self.busy_queue_limit as f64 * r) as usize).max(4)
        };
        if self.waiters.get() > limit {
            self.shed_total.set(self.shed_total.get() + 1);
            simtrace::counter("store.latch_shed", 1);
            return Err(StorageError::ServerBusy);
        }
        let guard = CountGuard::enter(&self.waiters);
        let permit = self.latch.acquire().await;
        // Hold time reflects the contention observed while committing.
        let n = self.waiters.get() as f64;
        let mut hold = self.hold_s
            * hold_factor
            * (1.0 + n / self.hold_nscale)
            * jitter(rng, self.jitter_sigma);
        if r != 1.0 {
            hold /= r;
        }
        // See `LoadedStation::serve`: network episodes stretch commits
        // too (the latch is held across the partition's round trips).
        let m = simfault::net_rtt_multiplier(self.sim.now().as_secs_f64());
        if m != 1.0 {
            hold *= m;
        }
        self.sim.delay(SimDuration::from_secs_f64(hold)).await;
        drop(permit);
        drop(guard);
        self.held_total.set(self.held_total.get() + 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn loaded_station_single_request_takes_base_time() {
        let sim = Sim::new(1);
        let st = Rc::new(LoadedStation::new(&sim, 0.010, 0.001, 0.0));
        let s = sim.clone();
        let stc = Rc::clone(&st);
        let h = sim.spawn(async move {
            let mut rng = s.rng("t");
            stc.serve(0.0, &mut rng).await.as_secs_f64()
        });
        sim.run();
        let t = h.try_take().unwrap();
        // base + load*1, no jitter.
        assert!((t - 0.011).abs() < 1e-9, "t={t}");
        assert_eq!(st.served(), 1);
    }

    #[test]
    fn loaded_station_inflates_under_concurrency() {
        // 50 concurrent requests must each take noticeably longer than a
        // lone request, and the station must track in-flight correctly.
        let sim = Sim::new(2);
        let st = Rc::new(LoadedStation::new(&sim, 0.010, 0.001, 0.0));
        let times: Rc<RefCell<Vec<f64>>> = Rc::default();
        for i in 0..50 {
            let (s, stc, tm) = (sim.clone(), Rc::clone(&st), times.clone());
            sim.spawn(async move {
                let mut rng = s.rng(&format!("c{i}"));
                let d = stc.serve(0.0, &mut rng).await;
                tm.borrow_mut().push(d.as_secs_f64());
            });
        }
        sim.run();
        let times = times.borrow();
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 0.010 + 0.001 * 40.0, "max={max}");
        assert_eq!(st.in_flight(), 0);
        assert_eq!(st.served(), 50);
    }

    #[test]
    fn latch_serializes_commits() {
        let sim = Sim::new(3);
        let latch = Rc::new(ContendedLatch::new(&sim, 0.005, 1e12, 0.0, 1000));
        let done = Rc::new(Cell::new(0u32));
        for i in 0..10 {
            let (s, l, d) = (sim.clone(), Rc::clone(&latch), done.clone());
            sim.spawn(async move {
                let mut rng = s.rng(&format!("c{i}"));
                l.commit(1.0, &mut rng).await.unwrap();
                d.set(d.get() + 1);
            });
        }
        sim.run();
        assert_eq!(done.get(), 10);
        // 10 serialized 5 ms holds -> at least 50 ms elapsed.
        assert!(sim.now().as_secs_f64() >= 0.050 - 1e-9);
        assert_eq!(latch.held_total(), 10);
        assert_eq!(latch.shed_total(), 0);
    }

    #[test]
    fn latch_hold_inflates_with_contention() {
        // With hold_nscale small, heavy contention slows each commit, so
        // total time for N commits grows superlinearly vs. uncontended.
        let run = |n_clients: usize| {
            let sim = Sim::new(4);
            let latch = Rc::new(ContendedLatch::new(&sim, 0.005, 10.0, 0.0, 1000));
            for i in 0..n_clients {
                let (s, l) = (sim.clone(), Rc::clone(&latch));
                sim.spawn(async move {
                    let mut rng = s.rng(&format!("c{i}"));
                    l.commit(1.0, &mut rng).await.unwrap();
                });
            }
            sim.run();
            sim.now().as_secs_f64() / n_clients as f64
        };
        let per_commit_2 = run(2);
        let per_commit_40 = run(40);
        assert!(
            per_commit_40 > per_commit_2 * 1.5,
            "contention did not inflate holds: {per_commit_2} vs {per_commit_40}"
        );
    }

    #[test]
    fn latch_sheds_load_beyond_queue_limit() {
        let sim = Sim::new(5);
        let latch = Rc::new(ContendedLatch::new(&sim, 0.010, 1e12, 0.0, 5));
        let outcomes: Rc<RefCell<Vec<bool>>> = Rc::default();
        for i in 0..20 {
            let (s, l, o) = (sim.clone(), Rc::clone(&latch), outcomes.clone());
            sim.spawn(async move {
                let mut rng = s.rng(&format!("c{i}"));
                let ok = l.commit(1.0, &mut rng).await.is_ok();
                o.borrow_mut().push(ok);
            });
        }
        sim.run();
        let ok = outcomes.borrow().iter().filter(|&&b| b).count();
        let shed = outcomes.borrow().iter().filter(|&&b| !b).count();
        assert!(ok >= 5, "ok={ok}");
        assert!(shed > 0, "expected load shedding");
        assert_eq!(latch.shed_total() as usize, shed);
    }

    #[test]
    fn capacity_scale_shrinks_station_capacity_not_base_latency() {
        // At r = 0.5 the load term doubles while the zero-load time is
        // untouched; at r = 1 the formula matches a station without a
        // dial exactly.
        let serve_time = |r: f64, concurrent: usize| {
            let sim = Sim::new(7);
            let dial = CapacityScale::unit();
            dial.set(r);
            let st = Rc::new(LoadedStation::new(&sim, 0.010, 0.001, 0.0).with_capacity(dial));
            let times: Rc<RefCell<Vec<f64>>> = Rc::default();
            for i in 0..concurrent {
                let (s, stc, tm) = (sim.clone(), Rc::clone(&st), times.clone());
                sim.spawn(async move {
                    let mut rng = s.rng(&format!("c{i}"));
                    let d = stc.serve(0.0, &mut rng).await;
                    tm.borrow_mut().push(d.as_secs_f64());
                });
            }
            sim.run();
            let times = times.borrow();
            times.iter().cloned().fold(0.0f64, f64::max)
        };
        // A lone request pays base + load·1/r: only the (tiny) load
        // term moves, the base does not.
        let lone_full = serve_time(1.0, 1);
        let lone_half = serve_time(0.5, 1);
        assert!((lone_full - 0.011).abs() < 1e-9, "t={lone_full}");
        assert!((lone_half - 0.012).abs() < 1e-9, "t={lone_half}");
        let busy_full = serve_time(1.0, 40);
        let busy_half = serve_time(0.5, 40);
        assert!(
            busy_half > busy_full * 1.5,
            "load term did not scale: {busy_full} vs {busy_half}"
        );
    }

    #[test]
    fn capacity_scale_divides_latch_hold_and_shed_limit() {
        let run = |r: f64| {
            let sim = Sim::new(8);
            let dial = CapacityScale::unit();
            dial.set(r);
            let latch =
                Rc::new(ContendedLatch::new(&sim, 0.005, 1e12, 0.0, 100).with_capacity(dial));
            for i in 0..10 {
                let (s, l) = (sim.clone(), Rc::clone(&latch));
                sim.spawn(async move {
                    let mut rng = s.rng(&format!("c{i}"));
                    let _ = l.commit(1.0, &mut rng).await;
                });
            }
            sim.run();
            (sim.now().as_secs_f64(), latch.shed_total())
        };
        let (t_full, shed_full) = run(1.0);
        let (t_half, shed_half) = run(0.5);
        assert_eq!(shed_full, 0);
        assert_eq!(shed_half, 0);
        assert!(
            (t_half - 2.0 * t_full).abs() < 1e-9,
            "halved capacity should double serialized holds: {t_full} vs {t_half}"
        );
        // Tiny capacity shrinks the busy limit (100 -> 4) and sheds.
        let sim = Sim::new(9);
        let dial = CapacityScale::unit();
        dial.set(0.01);
        let latch = Rc::new(ContendedLatch::new(&sim, 0.005, 1e12, 0.0, 100).with_capacity(dial));
        for i in 0..20 {
            let (s, l) = (sim.clone(), Rc::clone(&latch));
            sim.spawn(async move {
                let mut rng = s.rng(&format!("c{i}"));
                let _ = l.commit(1.0, &mut rng).await;
            });
        }
        sim.run();
        assert!(latch.shed_total() > 0, "tiny capacity should shed");
    }

    #[test]
    fn jitter_is_mean_one() {
        let mut rng = SimRng::from_seed(6);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| jitter(&mut rng, 0.18)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean={mean}");
    }
}
