//! The storage error taxonomy.
//!
//! Mirrors the error classes a 2009/2010 Windows Azure storage client
//! surfaced, which is exactly the vocabulary Table 2 of the paper uses
//! for ModisAzure's failure breakdown ("Operation timeout", "Server
//! busy", "Corrupt blob read", "Blob read fail", "Blob already exists",
//! "Non-existent source blob", …).

use std::fmt;

/// Errors returned by the simulated storage services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The operation did not complete within the client-side timeout
    /// (maps to the paper's "Operation timeout" / the table-insert
    /// "timeout exceptions from the server" at high concurrency).
    Timeout,
    /// The service shed load (HTTP 503 in real Azure); the client SDK
    /// retries these with backoff before surfacing them.
    ServerBusy,
    /// The addressed container/blob/table/queue/entity does not exist.
    NotFound,
    /// Create-style operation hit an existing object ("Blob already
    /// exists" — ModisAzure's second-most-common non-success outcome).
    AlreadyExists,
    /// Payload failed verification after download ("Corrupt blob read").
    CorruptRead,
    /// Read failed mid-transfer ("Blob read fail").
    ReadFailed,
    /// Transport-level connection failure ("Connection failure").
    ConnectionFailed,
    /// Unclassified server-side error ("Internal storage client error").
    Internal,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StorageError::Timeout => "operation timeout",
            StorageError::ServerBusy => "server busy",
            StorageError::NotFound => "not found",
            StorageError::AlreadyExists => "already exists",
            StorageError::CorruptRead => "corrupt blob read",
            StorageError::ReadFailed => "blob read fail",
            StorageError::ConnectionFailed => "connection failure",
            StorageError::Internal => "internal storage error",
        };
        f.write_str(s)
    }
}

impl std::error::Error for StorageError {}

/// Shorthand result for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_are_stable() {
        // ModisAzure telemetry keys off these strings; keep them fixed.
        assert_eq!(StorageError::Timeout.to_string(), "operation timeout");
        assert_eq!(StorageError::CorruptRead.to_string(), "corrupt blob read");
        assert_eq!(StorageError::AlreadyExists.to_string(), "already exists");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StorageError::ServerBusy, StorageError::ServerBusy);
        assert_ne!(StorageError::ServerBusy, StorageError::Timeout);
    }
}
