//! The table service (paper §3.2, Fig 2).
//!
//! Schemaless entities addressed by (PartitionKey, RowKey), stored in
//! per-partition ordered maps — the only indexes Azure tables have
//! ("all tables are indexed on the PartitionKey and RowKey ... creating
//! an index on any other properties cannot be specified", §6.1).
//!
//! Concurrency behaviour, per the two mechanisms in [`crate::station`]:
//! * Insert/Query ride a load-dependent station (per-client decline,
//!   aggregate still rising at 192 clients);
//! * Update commits through a **per-entity** latch (every client updates
//!   the same entity in the paper's test ⇒ aggregate peaks at ~8);
//! * Delete commits through the **partition index** latch (peaks ~128);
//! * entity size scales payload and latch costs, so 64 kB inserts at
//!   128–192 clients overload the latch queue ⇒ ServerBusy ⇒ SDK retries
//!   ⇒ the timeout failures the paper reports;
//! * property-filter queries scan the whole partition (~28 s on the
//!   paper's 220 k-entity partition) and straddle the client timeout.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use simcore::prelude::*;

use simfault::{Jitter, RetryPolicy};
use simtrace::Layer;

use crate::calib;
use crate::error::{Result, StorageError};
use crate::stamp::StampConfig;
use crate::station::{ContendedLatch, LoadedStation};
use crate::trace_outcome;

/// A property value (the paper's entities use {int, int, String, String}).
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// 32-bit integer property.
    I32(i32),
    /// 64-bit integer property.
    I64(i64),
    /// Floating-point property.
    F64(f64),
    /// Boolean property.
    Bool(bool),
    /// String property; the byte length is what costs storage/transfer.
    Str(String),
}

impl PropValue {
    /// Approximate wire size in bytes.
    pub fn size(&self) -> f64 {
        match self {
            PropValue::I32(_) => 4.0,
            PropValue::I64(_) | PropValue::F64(_) => 8.0,
            PropValue::Bool(_) => 1.0,
            PropValue::Str(s) => s.len() as f64,
        }
    }
}

/// One table entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Partition key (unit of locality and indexing).
    pub partition_key: String,
    /// Row key (unique within the partition).
    pub row_key: String,
    /// Named properties.
    pub properties: Vec<(String, PropValue)>,
}

impl Entity {
    /// Entity with no properties.
    pub fn new(pk: impl Into<String>, rk: impl Into<String>) -> Self {
        Entity {
            partition_key: pk.into(),
            row_key: rk.into(),
            properties: Vec::new(),
        }
    }

    /// Builder-style property append.
    pub fn with(mut self, name: impl Into<String>, value: PropValue) -> Self {
        self.properties.push((name.into(), value));
        self
    }

    /// The paper's benchmark entity: `{int, int, String, String}` where
    /// the final string pads the entity to `target_kb` kilobytes.
    pub fn benchmark(pk: &str, rk: &str, target_kb: usize) -> Self {
        let pad = (target_kb as f64 * calib::KB) as usize;
        Entity::new(pk, rk)
            .with("a", PropValue::I32(1))
            .with("b", PropValue::I32(2))
            .with("name", PropValue::Str("entity".into()))
            .with(
                "payload",
                PropValue::Str("x".repeat(pad.saturating_sub(30))),
            )
    }

    /// Look up a property by name.
    pub fn get(&self, name: &str) -> Option<&PropValue> {
        self.properties
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Approximate wire size in bytes (keys + properties).
    pub fn size(&self) -> f64 {
        let props: f64 = self
            .properties
            .iter()
            .map(|(n, v)| n.len() as f64 + v.size())
            .sum();
        self.partition_key.len() as f64 + self.row_key.len() as f64 + props
    }

    /// Size in kB, the unit the calibration uses.
    pub fn size_kb(&self) -> f64 {
        self.size() / calib::KB
    }
}

type Partition = BTreeMap<String, Entity>;

#[derive(Default)]
struct TableData {
    partitions: BTreeMap<String, Partition>,
}

struct Latches {
    // Per (table, partition): the partition index latch (insert/delete).
    insert: HashMap<(String, String), Rc<ContendedLatch>>,
    delete: HashMap<(String, String), Rc<ContendedLatch>>,
    // Per (table, partition, row): the entity write latch (update).
    update: HashMap<(String, String, String), Rc<ContendedLatch>>,
}

/// Server-side table service.
pub struct TableService {
    sim: Sim,
    cfg: StampConfig,
    tables: RefCell<HashMap<String, TableData>>,
    latches: RefCell<Latches>,
    query_station: LoadedStation,
    insert_station: LoadedStation,
    update_station: LoadedStation,
    delete_station: LoadedStation,
    rng: RefCell<SimRng>,
    ops: Cell<u64>,
    door: Option<Rc<crate::admit::FrontDoor>>,
}

impl TableService {
    pub(crate) fn new(sim: &Sim, cfg: &StampConfig) -> Rc<Self> {
        let j = cfg.jitter_sigma;
        Rc::new(TableService {
            sim: sim.clone(),
            cfg: cfg.clone(),
            tables: RefCell::new(HashMap::new()),
            latches: RefCell::new(Latches {
                insert: HashMap::new(),
                delete: HashMap::new(),
                update: HashMap::new(),
            }),
            query_station: LoadedStation::new(
                sim,
                calib::TABLE_QUERY_BASE_S,
                calib::TABLE_QUERY_LOAD_S,
                j,
            )
            .with_capacity(cfg.capacity.clone()),
            insert_station: LoadedStation::new(
                sim,
                calib::TABLE_INSERT_BASE_S,
                calib::TABLE_INSERT_LOAD_S,
                j,
            )
            .with_capacity(cfg.capacity.clone()),
            update_station: LoadedStation::new(sim, calib::TABLE_UPDATE_BASE_S, 0.0, j)
                .with_capacity(cfg.capacity.clone()),
            delete_station: LoadedStation::new(
                sim,
                calib::TABLE_DELETE_BASE_S,
                calib::TABLE_DELETE_LOAD_S,
                j,
            )
            .with_capacity(cfg.capacity.clone()),
            rng: RefCell::new(sim.rng(&cfg.scoped("table.service"))),
            ops: Cell::new(0),
            door: crate::admit::FrontDoor::build(sim, &cfg.admission),
        })
    }

    /// Total operations served.
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// The service's admission gate, when one is configured.
    pub fn front_door(&self) -> Option<&Rc<crate::admit::FrontDoor>> {
        self.door.as_ref()
    }

    /// Total `ContendedLatch` sheds across every partition/entity latch.
    pub fn latch_shed_total(&self) -> u64 {
        let latches = self.latches.borrow();
        latches
            .insert
            .values()
            .chain(latches.delete.values())
            .chain(latches.update.values())
            .map(|l| l.shed_total())
            .sum()
    }

    /// Front-door admission check (no-op `Ok(None)` when admission is
    /// off). Runs synchronously at op entry, before any await; SDK
    /// retries re-enter it per attempt.
    fn admit(&self) -> Result<Option<crate::admit::AdmitPermit>> {
        match &self.door {
            Some(d) => d.admit().map(Some),
            None => Ok(None),
        }
    }

    /// Entities in a partition (statistic / test fixture support).
    pub fn partition_len(&self, table: &str, pk: &str) -> usize {
        self.tables
            .borrow()
            .get(table)
            .and_then(|t| t.partitions.get(pk))
            .map_or(0, |p| p.len())
    }

    /// Directly seed an entity without timing (fixtures: the paper
    /// pre-populates ~220 k entities before the query tests).
    pub fn seed(&self, table: &str, entity: Entity) {
        self.tables
            .borrow_mut()
            .entry(table.to_string())
            .or_default()
            .partitions
            .entry(entity.partition_key.clone())
            .or_default()
            .insert(entity.row_key.clone(), entity);
    }

    fn insert_latch(&self, table: &str, pk: &str) -> Rc<ContendedLatch> {
        let key = (table.to_string(), pk.to_string());
        Rc::clone(
            self.latches
                .borrow_mut()
                .insert
                .entry(key)
                .or_insert_with(|| {
                    Rc::new(
                        ContendedLatch::new(
                            &self.sim,
                            calib::TABLE_INSERT_HOLD_S,
                            f64::INFINITY,
                            self.cfg.jitter_sigma,
                            calib::TABLE_BUSY_QUEUE_LIMIT,
                        )
                        .with_capacity(self.cfg.capacity.clone()),
                    )
                }),
        )
    }

    fn delete_latch(&self, table: &str, pk: &str) -> Rc<ContendedLatch> {
        let key = (table.to_string(), pk.to_string());
        Rc::clone(
            self.latches
                .borrow_mut()
                .delete
                .entry(key)
                .or_insert_with(|| {
                    Rc::new(
                        ContendedLatch::new(
                            &self.sim,
                            calib::TABLE_DELETE_HOLD_S,
                            calib::TABLE_DELETE_HOLD_NSCALE,
                            self.cfg.jitter_sigma,
                            calib::TABLE_BUSY_QUEUE_LIMIT,
                        )
                        .with_capacity(self.cfg.capacity.clone()),
                    )
                }),
        )
    }

    fn update_latch(&self, table: &str, pk: &str, rk: &str) -> Rc<ContendedLatch> {
        let key = (table.to_string(), pk.to_string(), rk.to_string());
        Rc::clone(
            self.latches
                .borrow_mut()
                .update
                .entry(key)
                .or_insert_with(|| {
                    Rc::new(
                        ContendedLatch::new(
                            &self.sim,
                            calib::TABLE_UPDATE_HOLD_S,
                            calib::TABLE_UPDATE_HOLD_NSCALE,
                            self.cfg.jitter_sigma,
                            calib::TABLE_BUSY_QUEUE_LIMIT,
                        )
                        .with_capacity(self.cfg.capacity.clone()),
                    )
                }),
        )
    }

    fn bump(&self) {
        self.ops.set(self.ops.get() + 1);
    }

    fn fault(&self, p: f64) -> bool {
        self.cfg.faults.enabled && self.rng.borrow_mut().chance(p)
    }

    /// Connection-level fault draw, in `RetryPolicy` precheck form.
    fn connection_precheck(&self) -> Option<StorageError> {
        if self.fault(self.cfg.faults.connection_fail_p) {
            Some(StorageError::ConnectionFailed)
        } else {
            None
        }
    }
}

/// A property filter for non-indexed queries.
pub type Filter = Rc<dyn Fn(&Entity) -> bool>;

/// Per-VM table client with the 2009 SDK's retry behaviour: ServerBusy is
/// retried with exponential backoff; every operation carries the
/// configured client timeout.
pub struct TableClient {
    svc: Rc<TableService>,
    rng: RefCell<SimRng>,
}

impl TableClient {
    pub(crate) fn new(svc: &Rc<TableService>, client_id: u64) -> Self {
        TableClient {
            svc: Rc::clone(svc),
            rng: RefCell::new(
                svc.sim
                    .rng(&svc.cfg.scoped(&format!("table.client.{client_id}"))),
            ),
        }
    }

    /// The 2009 SDK's retry behaviour as a [`RetryPolicy`]: ServerBusy
    /// retried with jittered exponential backoff; every attempt carries
    /// the configured client timeout, and a client-side timeout is
    /// surfaced directly ("timeout exceptions from the server").
    fn sdk_policy(&self) -> RetryPolicy {
        RetryPolicy::exponential(
            calib::CLIENT_BUSY_BACKOFF_S,
            2.0,
            calib::CLIENT_BUSY_RETRIES,
        )
        .with_timeout(self.svc.cfg.op_timeout)
        .with_jitter(Jitter::Centered)
        .with_counter("store.sdk_retries")
    }

    async fn with_sdk_semantics<F, Fut>(&self, op: F) -> Result<()>
    where
        F: Fn() -> Fut,
        Fut: std::future::Future<Output = Result<()>>,
    {
        let svc = &self.svc;
        self.sdk_policy()
            .run(
                &svc.sim,
                Some(&self.rng),
                || svc.connection_precheck(),
                |_| op(),
                |e| *e == StorageError::ServerBusy,
                || StorageError::Timeout,
            )
            .await
    }

    /// Insert a new entity; `AlreadyExists` if (pk, rk) is taken.
    pub async fn insert(&self, table: &str, entity: Entity) -> Result<()> {
        let sp = simtrace::span(Layer::Store, "table.insert", || format!("table:{table}"));
        let sp = &sp;
        let svc = Rc::clone(&self.svc);
        let table = table.to_string();
        let kb = entity.size_kb();
        let entity = RefCell::new(Some(entity));
        let res = self
            .with_sdk_semantics(|| {
                let svc = Rc::clone(&svc);
                let table = table.clone();
                let entity = entity.borrow().clone();
                async move {
                    let _admit = svc.admit()?;
                    crate::injected_frontend_fault(&svc.sim).await?;
                    let entity = entity.expect("entity consumed");
                    let mut rng = svc.rng.borrow_mut().fork("ins");
                    let fe = sp.child("frontend", || "insert_station".into());
                    svc.insert_station
                        .serve(kb * calib::TABLE_PAYLOAD_S_PER_KB, &mut rng)
                        .await;
                    fe.end();
                    let latch = svc.insert_latch(&table, &entity.partition_key);
                    let mut hold_factor = (kb / 4.0).max(0.25).powf(calib::TABLE_SIZE_HOLD_EXP);
                    if kb > calib::TABLE_LARGE_ENTITY_KB {
                        // Multi-extent write path: a large serialized commit.
                        hold_factor += calib::TABLE_LARGE_COMMIT_S / calib::TABLE_INSERT_HOLD_S;
                    }
                    crate::injected_commit_stall(&svc.sim).await;
                    let cm = sp.child("partition.commit", || "partition_latch".into());
                    latch.commit(hold_factor, &mut rng).await?;
                    cm.end();
                    // Key check under the latch (post-commit visibility).
                    {
                        let mut tables = svc.tables.borrow_mut();
                        let part = tables
                            .entry(table.clone())
                            .or_default()
                            .partitions
                            .entry(entity.partition_key.clone())
                            .or_default();
                        if part.contains_key(&entity.row_key) {
                            return Err(StorageError::AlreadyExists);
                        }
                        part.insert(entity.row_key.clone(), entity);
                    }
                    svc.bump();
                    Ok(())
                }
            })
            .await;
        trace_outcome(sp, &res);
        res
    }

    /// Point query by partition + row key — "the fastest query option
    /// because they are used for indexing the table" (§3.2).
    pub async fn query_point(&self, table: &str, pk: &str, rk: &str) -> Result<Entity> {
        let sp = simtrace::span(Layer::Store, "table.query_point", || {
            format!("table:{table}")
        });
        let svc = &self.svc;
        let op = async {
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let mut rng = svc.rng.borrow_mut().fork("q");
            let fe = sp.child("frontend", || "query_station".into());
            svc.query_station.serve(0.0, &mut rng).await;
            fe.end();
            let found = svc
                .tables
                .borrow()
                .get(table)
                .and_then(|t| t.partitions.get(pk))
                .and_then(|p| p.get(rk))
                .cloned();
            svc.bump();
            found.ok_or(StorageError::NotFound)
        };
        let res = RetryPolicy::none()
            .with_timeout(svc.cfg.op_timeout)
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await;
        trace_outcome(&sp, &res);
        res
    }

    /// Key-range query: entities of one partition with row keys in
    /// `[from_rk, to_rk)`, capped at the API's 1000-entity page. Unlike
    /// property filters this rides the (PartitionKey, RowKey) index, so
    /// its cost scales with the *result* size, not the partition size —
    /// the §6.1 "access by keys only" recommendation in API form.
    pub async fn query_range(
        &self,
        table: &str,
        pk: &str,
        from_rk: &str,
        to_rk: &str,
        limit: usize,
    ) -> Result<Vec<Entity>> {
        let sp = simtrace::span(Layer::Store, "table.query_range", || {
            format!("table:{table}")
        });
        let svc = &self.svc;
        let limit = limit.clamp(1, 1000);
        let op = async {
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let mut rng = svc.rng.borrow_mut().fork("range");
            // Index seek plus a small per-returned-entity cost.
            let hits: Vec<Entity> = svc
                .tables
                .borrow()
                .get(table)
                .and_then(|t| t.partitions.get(pk))
                .map(|p| {
                    p.range(from_rk.to_string()..to_rk.to_string())
                        .take(limit)
                        .map(|(_, e)| e.clone())
                        .collect()
                })
                .unwrap_or_default();
            let extra = hits.len() as f64 * 0.00002
                + hits.iter().map(|e| e.size_kb()).sum::<f64>() * calib::TABLE_PAYLOAD_S_PER_KB;
            let fe = sp.child("frontend", || "query_station".into());
            svc.query_station.serve(extra, &mut rng).await;
            fe.end();
            svc.bump();
            Ok(hits)
        };
        let res = RetryPolicy::none()
            .with_timeout(svc.cfg.op_timeout)
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await;
        trace_outcome(&sp, &res);
        res
    }

    /// Property-filter query: scans the whole partition because only the
    /// keys are indexed. On the paper's 220 k-entity partition this
    /// straddles the client timeout (§6.1).
    pub async fn query_filter(
        &self,
        table: &str,
        pk: &str,
        filter: impl Fn(&Entity) -> bool,
    ) -> Result<Vec<Entity>> {
        let sp = simtrace::span(Layer::Store, "table.query_filter", || {
            format!("table:{table}")
        });
        let svc = &self.svc;
        let n = svc.partition_len(table, pk);
        if sp.is_recording() {
            sp.attr("partition_len", n);
        }
        let scan_cost = n as f64 * calib::TABLE_SCAN_S_PER_ENTITY;
        let op = async {
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let mut rng = svc.rng.borrow_mut().fork("scan");
            let fe = sp.child("frontend", || "query_station".into());
            svc.query_station.serve(scan_cost, &mut rng).await;
            fe.end();
            let hits = svc
                .tables
                .borrow()
                .get(table)
                .and_then(|t| t.partitions.get(pk))
                .map(|p| p.values().filter(|e| filter(e)).cloned().collect())
                .unwrap_or_default();
            svc.bump();
            Ok(hits)
        };
        let res = RetryPolicy::none()
            .with_timeout(svc.cfg.op_timeout)
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await;
        trace_outcome(&sp, &res);
        res
    }

    /// Unconditional update (last-writer-wins; "it does not enforce
    /// atomicity of each update request", §3.2). `NotFound` if absent.
    pub async fn update(&self, table: &str, entity: Entity) -> Result<()> {
        let sp = simtrace::span(Layer::Store, "table.update", || format!("table:{table}"));
        let sp = &sp;
        let svc = Rc::clone(&self.svc);
        let table = table.to_string();
        let kb = entity.size_kb();
        if sp.is_recording() {
            sp.attr("kb", format!("{kb:.2}"));
        }
        let entity = RefCell::new(Some(entity));
        let res = self
            .with_sdk_semantics(|| {
                let svc = Rc::clone(&svc);
                let table = table.clone();
                let entity = entity.borrow().clone();
                async move {
                    let _admit = svc.admit()?;
                    crate::injected_frontend_fault(&svc.sim).await?;
                    let entity = entity.expect("entity consumed");
                    let mut rng = svc.rng.borrow_mut().fork("upd");
                    let fe = sp.child("frontend", || "update_station".into());
                    svc.update_station
                        .serve(kb * calib::TABLE_PAYLOAD_S_PER_KB, &mut rng)
                        .await;
                    fe.end();
                    let latch = svc.update_latch(&table, &entity.partition_key, &entity.row_key);
                    let hold_factor = (kb / 4.0).max(0.25);
                    crate::injected_commit_stall(&svc.sim).await;
                    let cm = sp.child("partition.commit", || "entity_latch".into());
                    latch.commit(hold_factor, &mut rng).await?;
                    cm.end();
                    {
                        let mut tables = svc.tables.borrow_mut();
                        let slot = tables
                            .get_mut(&table)
                            .and_then(|t| t.partitions.get_mut(&entity.partition_key))
                            .and_then(|p| p.get_mut(&entity.row_key));
                        match slot {
                            Some(e) => *e = entity,
                            None => return Err(StorageError::NotFound),
                        }
                    }
                    svc.bump();
                    Ok(())
                }
            })
            .await;
        trace_outcome(sp, &res);
        res
    }

    /// Delete by key. `NotFound` if absent.
    pub async fn delete(&self, table: &str, pk: &str, rk: &str) -> Result<()> {
        let sp = simtrace::span(Layer::Store, "table.delete", || format!("table:{table}"));
        let sp = &sp;
        let svc = Rc::clone(&self.svc);
        let (table, pk, rk) = (table.to_string(), pk.to_string(), rk.to_string());
        let res = self
            .with_sdk_semantics(|| {
                let svc = Rc::clone(&svc);
                let (table, pk, rk) = (table.clone(), pk.clone(), rk.clone());
                async move {
                    let _admit = svc.admit()?;
                    crate::injected_frontend_fault(&svc.sim).await?;
                    let mut rng = svc.rng.borrow_mut().fork("del");
                    let fe = sp.child("frontend", || "delete_station".into());
                    svc.delete_station.serve(0.0, &mut rng).await;
                    fe.end();
                    let latch = svc.delete_latch(&table, &pk);
                    crate::injected_commit_stall(&svc.sim).await;
                    let cm = sp.child("partition.commit", || "partition_latch".into());
                    latch.commit(1.0, &mut rng).await?;
                    cm.end();
                    let removed = svc
                        .tables
                        .borrow_mut()
                        .get_mut(&table)
                        .and_then(|t| t.partitions.get_mut(&pk))
                        .and_then(|p| p.remove(&rk));
                    svc.bump();
                    match removed {
                        Some(_) => Ok(()),
                        None => Err(StorageError::NotFound),
                    }
                }
            })
            .await;
        trace_outcome(sp, &res);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp::{StampConfig, StorageStamp};

    fn setup(seed: u64) -> (Sim, Rc<StorageStamp>) {
        let sim = Sim::new(seed);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        (sim, stamp)
    }

    #[test]
    fn entity_size_accounts_keys_and_props() {
        let e = Entity::benchmark("part", "row1", 4);
        let kb = e.size_kb();
        assert!((3.8..4.2).contains(&kb), "kb={kb}");
        assert!(e.get("a").is_some());
        assert!(e.get("missing").is_none());
    }

    #[test]
    fn insert_query_roundtrip() {
        let (sim, stamp) = setup(1);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            let e = Entity::benchmark("p", "r1", 1);
            c.table.insert("t", e.clone()).await.unwrap();
            let back = c.table.query_point("t", "p", "r1").await.unwrap();
            assert_eq!(back, e);
            c.table.query_point("t", "p", "r2").await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().unwrap_err(), StorageError::NotFound);
    }

    #[test]
    fn duplicate_insert_conflicts() {
        let (sim, stamp) = setup(2);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            c.table
                .insert("t", Entity::benchmark("p", "r", 1))
                .await
                .unwrap();
            c.table.insert("t", Entity::benchmark("p", "r", 1)).await
        });
        sim.run();
        assert_eq!(
            h.try_take().unwrap().unwrap_err(),
            StorageError::AlreadyExists
        );
    }

    #[test]
    fn update_replaces_and_delete_removes() {
        let (sim, stamp) = setup(3);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            c.table
                .insert("t", Entity::benchmark("p", "r", 1))
                .await
                .unwrap();
            let new = Entity::new("p", "r").with("v", PropValue::I64(9));
            c.table.update("t", new.clone()).await.unwrap();
            let got = c.table.query_point("t", "p", "r").await.unwrap();
            assert_eq!(got.get("v"), Some(&PropValue::I64(9)));
            c.table.delete("t", "p", "r").await.unwrap();
            c.table.delete("t", "p", "r").await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().unwrap_err(), StorageError::NotFound);
    }

    #[test]
    fn update_of_missing_entity_is_not_found() {
        let (sim, stamp) = setup(4);
        let c = stamp.attach_small_client();
        let h =
            sim.spawn(async move { c.table.update("t", Entity::benchmark("p", "nope", 1)).await });
        sim.run();
        assert_eq!(h.try_take().unwrap().unwrap_err(), StorageError::NotFound);
    }

    #[test]
    fn filter_query_finds_matching_entities_on_small_partition() {
        let (sim, stamp) = setup(5);
        for i in 0..50 {
            stamp.table_service().seed(
                "t",
                Entity::new("p", format!("r{i:03}")).with("even", PropValue::Bool(i % 2 == 0)),
            );
        }
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            c.table
                .query_filter("t", "p", |e| e.get("even") == Some(&PropValue::Bool(true)))
                .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().unwrap().len(), 25);
    }

    #[test]
    fn filter_query_on_huge_partition_times_out() {
        // §6.1: property-filter scans on the ~220 k-entity partition
        // time out (entity count is what matters; seed a sized count).
        let (sim, stamp) = setup(6);
        for i in 0..240_000 {
            stamp
                .table_service()
                .seed("t", Entity::new("p", format!("r{i:07}")));
        }
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move { c.table.query_filter("t", "p", |_| true).await });
        sim.run();
        assert_eq!(h.try_take().unwrap().unwrap_err(), StorageError::Timeout);
    }

    #[test]
    fn single_client_query_rate_is_tens_per_second() {
        let (sim, stamp) = setup(7);
        stamp
            .table_service()
            .seed("t", Entity::benchmark("p", "r", 4));
        let c = stamp.attach_small_client();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let n = 200;
            let t0 = s.now();
            for _ in 0..n {
                c.table.query_point("t", "p", "r").await.unwrap();
            }
            n as f64 / (s.now() - t0).as_secs_f64()
        });
        sim.run();
        let rate = h.try_take().unwrap();
        assert!((40.0..80.0).contains(&rate), "query rate={rate}/s");
    }

    #[test]
    fn range_query_rides_the_index() {
        let (sim, stamp) = setup(9);
        // A big partition: a property filter here would time out, but a
        // range over the key index stays fast.
        for i in 0..120_000 {
            stamp
                .table_service()
                .seed("t", Entity::new("p", format!("r{i:06}")));
        }
        let c = stamp.attach_small_client();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let t0 = s.now();
            let hits = c
                .table
                .query_range("t", "p", "r000100", "r000150", 1000)
                .await
                .unwrap();
            (hits.len(), (s.now() - t0).as_secs_f64())
        });
        sim.run();
        let (n, secs) = h.try_take().unwrap();
        assert_eq!(n, 50);
        assert!(secs < 0.5, "range query took {secs}s on a huge partition");
    }

    #[test]
    fn range_query_respects_page_limit_and_bounds() {
        let (sim, stamp) = setup(10);
        for i in 0..30 {
            stamp
                .table_service()
                .seed("t", Entity::new("p", format!("r{i:02}")));
        }
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            let page = c
                .table
                .query_range("t", "p", "r00", "r99", 10)
                .await
                .unwrap();
            let empty = c.table.query_range("t", "p", "x", "y", 10).await.unwrap();
            let missing = c
                .table
                .query_range("t", "nope", "a", "z", 10)
                .await
                .unwrap();
            (page, empty.len(), missing.len())
        });
        sim.run();
        let (page, empty, missing) = h.try_take().unwrap();
        assert_eq!(page.len(), 10);
        assert_eq!(page[0].row_key, "r00");
        assert_eq!(page[9].row_key, "r09");
        assert_eq!((empty, missing), (0, 0));
    }

    #[test]
    fn concurrent_updates_serialize_on_entity_latch() {
        let (sim, stamp) = setup(8);
        stamp
            .table_service()
            .seed("t", Entity::benchmark("p", "shared", 4));
        let done = Rc::new(Cell::new(0u32));
        for i in 0..16 {
            let c = stamp.attach_small_client();
            let d = done.clone();
            let _ = i;
            sim.spawn(async move {
                for _ in 0..5 {
                    c.table
                        .update("t", Entity::benchmark("p", "shared", 4))
                        .await
                        .unwrap();
                }
                d.set(d.get() + 1);
            });
        }
        sim.run();
        assert_eq!(done.get(), 16);
        // 80 updates through one latch: elapsed must exceed the summed
        // minimum hold time (serialization proof).
        assert!(sim.now().as_secs_f64() > 80.0 * calib::TABLE_UPDATE_HOLD_S);
    }
}
