//! The storage stamp: wiring for the three services plus per-VM client
//! attachment.
//!
//! A *stamp* is Azure's unit of storage deployment (a cluster with a
//! front-end layer, a partition layer and a replicated stream layer).
//! The paper treats it as a black box; we wire its observable surfaces:
//! shared egress/ingest pipes with the calibrated capacity and
//! degradation behaviour (Fig 1), load-dependent service stations and
//! contended latches inside the partition layer (Figs 2–3), and the
//! client-visible error taxonomy (Table 2).

use std::rc::Rc;

use dcnet::{LinkId, LinkModel, Network};
use simcore::prelude::*;

use crate::blob::{BlobClient, BlobService};
use crate::calib;
use crate::queue::{QueueClient, QueueService};
use crate::table::{TableClient, TableService};

/// Reliability-injection switches (all rates in `calib`).
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Master switch; experiments run clean, ModisAzure runs with faults.
    pub enabled: bool,
    /// P(connection setup failure) per operation.
    pub connection_fail_p: f64,
    /// P(payload corruption) per blob GET.
    pub corrupt_read_p: f64,
    /// P(mid-transfer abort) per blob GET.
    pub read_fail_p: f64,
    /// P(spurious ServerBusy) per operation.
    pub spurious_busy_p: f64,
    /// P(internal error) per operation.
    pub internal_error_p: f64,
}

impl FaultProfile {
    /// Everything off — microbenchmark conditions.
    pub fn clean() -> Self {
        FaultProfile {
            enabled: false,
            connection_fail_p: 0.0,
            corrupt_read_p: 0.0,
            read_fail_p: 0.0,
            spurious_busy_p: 0.0,
            internal_error_p: 0.0,
        }
    }

    /// Rates calibrated to the ModisAzure Table 2 breakdown.
    pub fn production() -> Self {
        Self::from_storage(simfault::StorageFaults::paper())
    }

    /// Adopt the steady-state rates of a simfault plan's storage block.
    pub fn from_plan(plan: &simfault::FaultPlan) -> Self {
        Self::from_storage(plan.storage)
    }

    fn from_storage(s: simfault::StorageFaults) -> Self {
        FaultProfile {
            enabled: s.enabled,
            connection_fail_p: s.connection_fail_p,
            corrupt_read_p: s.corrupt_read_p,
            read_fail_p: s.read_fail_p,
            spurious_busy_p: s.spurious_busy_p,
            internal_error_p: s.internal_error_p,
        }
    }
}

/// Stamp-level configuration.
#[derive(Debug, Clone)]
pub struct StampConfig {
    /// Service-time jitter (lognormal sigma).
    pub jitter_sigma: f64,
    /// Fault injection profile.
    pub faults: FaultProfile,
    /// Client-side per-operation timeout.
    pub op_timeout: SimDuration,
    /// ABLATION: disable the per-flow front-end ceiling on blob reads
    /// (Fig 1's per-client decline mechanism). For the `ablations`
    /// binary; leave false for faithful reproduction.
    pub ablate_no_frontend_ceiling: bool,
    /// ABLATION: disable contention inflation of mutation latch holds
    /// (Fig 2/3's post-peak decline mechanism).
    pub ablate_no_latch_inflation: bool,
    /// Front-end admission policy, consulted at op entry before any
    /// station or latch is touched. `AdmissionConfig::None` (the
    /// default) reproduces the paper's observed behaviour — no gate,
    /// overload rots in the queues.
    pub admission: crate::admit::AdmissionConfig,
    /// Shared capacity dial for the table/queue station fleets (the
    /// elastic campaign's scaling hook; see
    /// [`CapacityScale`](crate::station::CapacityScale)). Cloning the
    /// config shares the dial. Defaults to the calibrated reference
    /// capacity (`r = 1`), which leaves every formula bit-identical.
    pub capacity: crate::station::CapacityScale,
    /// Prefix for this stamp's named RNG streams. `Sim::rng` derives a
    /// stream purely from `(seed, label)`, so two stamps on one `Sim`
    /// would otherwise draw *identical* jitter/fault sequences. A geo
    /// set gives each stamp a distinct scope (`"s0."`, `"s1."`, …); the
    /// default empty scope leaves every existing stream label — and
    /// therefore every single-stamp artifact — byte-identical.
    pub rng_scope: String,
}

impl StampConfig {
    /// Apply this stamp's [`StampConfig::rng_scope`] to a stream label.
    /// The empty scope returns the label unchanged, preserving every
    /// pre-geo stream name byte for byte.
    pub fn scoped(&self, label: &str) -> String {
        if self.rng_scope.is_empty() {
            label.to_string()
        } else {
            format!("{}{}", self.rng_scope, label)
        }
    }
}

impl Default for StampConfig {
    fn default() -> Self {
        StampConfig {
            jitter_sigma: calib::SERVICE_JITTER_SIGMA,
            faults: FaultProfile::clean(),
            op_timeout: SimDuration::from_secs_f64(calib::CLIENT_OP_TIMEOUT_S),
            ablate_no_frontend_ceiling: false,
            ablate_no_latch_inflation: false,
            admission: crate::admit::AdmissionConfig::None,
            capacity: crate::station::CapacityScale::unit(),
            rng_scope: String::new(),
        }
    }
}

/// Shared pipes of one blob namespace (upload path; per-blob read pipes
/// are created lazily by the service itself).
#[derive(Clone, Copy)]
pub(crate) struct BlobLinks {
    /// Shared ingest pipe (~125 MB/s).
    pub ingest: LinkId,
    /// Upload front-end per-flow ceiling.
    pub ul_frontend: LinkId,
}

/// One simulated storage stamp.
pub struct StorageStamp {
    sim: Sim,
    net: Network,
    cfg: StampConfig,
    blobs: Rc<BlobService>,
    tables: Rc<TableService>,
    queues: Rc<QueueService>,
    next_client: std::cell::Cell<u64>,
}

impl StorageStamp {
    /// Create a stamp inside `net` (shared with any topology so client
    /// NIC links and storage pipes carry joint traffic).
    pub fn new(sim: &Sim, net: &Network, cfg: StampConfig) -> Rc<Self> {
        let blob_links = BlobLinks {
            ingest: net.add_link(
                "stamp.blob.ingest",
                LinkModel::Shared {
                    capacity: calib::BLOB_INGEST_BPS,
                },
            ),
            ul_frontend: net.add_link(
                "stamp.blob.fe.ul",
                LinkModel::PerFlow {
                    base: calib::BLOB_UL_PERFLOW_BASE,
                    beta: calib::BLOB_UL_PERFLOW_BETA,
                    exponent: calib::BLOB_UL_PERFLOW_EXP,
                },
            ),
        };
        let blobs = BlobService::new(sim, net, blob_links, &cfg);
        let tables = TableService::new(sim, &cfg);
        let queues = QueueService::new(sim, &cfg);
        Rc::new(StorageStamp {
            sim: sim.clone(),
            net: net.clone(),
            cfg,
            blobs,
            tables,
            queues,
            next_client: std::cell::Cell::new(0),
        })
    }

    /// Convenience: stamp with its own private network.
    pub fn standalone(sim: &Sim, cfg: StampConfig) -> Rc<Self> {
        let net = Network::new(sim);
        Self::new(sim, &net, cfg)
    }

    /// The simulation.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The network carrying this stamp's pipes.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Stamp configuration.
    pub fn config(&self) -> &StampConfig {
        &self.cfg
    }

    /// The blob service (server-side handle; use clients for ops).
    pub fn blob_service(&self) -> &Rc<BlobService> {
        &self.blobs
    }

    /// The table service.
    pub fn table_service(&self) -> &Rc<TableService> {
        &self.tables
    }

    /// The queue service.
    pub fn queue_service(&self) -> &Rc<QueueService> {
        &self.queues
    }

    /// Stamp-wide admission totals `(accepted, shed)` summed over the
    /// three services' front doors. Zero when admission is off.
    pub fn admission_stats(&self) -> (u64, u64) {
        let mut acc = 0;
        let mut shed = 0;
        for door in [
            self.blobs.front_door(),
            self.tables.front_door(),
            self.queues.front_door(),
        ]
        .into_iter()
        .flatten()
        {
            acc += door.accepted();
            shed += door.shed();
        }
        (acc, shed)
    }

    /// Stamp-wide `ContendedLatch` shed total (station-level ServerBusy
    /// responses, as opposed to front-door sheds).
    pub fn latch_shed_total(&self) -> u64 {
        self.tables.latch_shed_total() + self.queues.latch_shed_total()
    }

    /// Attach a client VM with the given per-VM storage-bandwidth
    /// allocation (13 MB/s for a 2009 small instance). Creates the VM's
    /// two storage-throttle links and returns clients for all three
    /// services.
    pub fn attach_client(&self, storage_bps: f64) -> StorageAccountClient {
        let id = self.next_client.get();
        self.next_client.set(id + 1);
        let ingress = self.net.add_link(
            format!("client{id}.storage.in"),
            LinkModel::Shared {
                capacity: storage_bps,
            },
        );
        let egress = self.net.add_link(
            format!("client{id}.storage.out"),
            LinkModel::Shared {
                capacity: storage_bps,
            },
        );
        StorageAccountClient {
            blob: BlobClient::new(&self.blobs, ingress, egress, id),
            table: TableClient::new(&self.tables, id),
            queue: QueueClient::new(&self.queues, id),
        }
    }

    /// Attach with the small-instance default allocation.
    pub fn attach_small_client(&self) -> StorageAccountClient {
        self.attach_client(calib::SMALL_VM_STORAGE_BPS)
    }

    /// Attach `n` small-instance clients at once — the issue path for
    /// open-loop fleets (`simload`), which dispatch each scheduled
    /// arrival to `clients[arrival_index % n]`. Client ids (and thus
    /// their throttle-link names and RNG streams) are assigned in
    /// ascending order, so a fleet is one deterministic unit no matter
    /// how many arrivals later land on each VM.
    pub fn attach_small_fleet(&self, n: usize) -> Vec<StorageAccountClient> {
        (0..n).map(|_| self.attach_small_client()).collect()
    }
}

/// Per-VM bundle of service clients.
pub struct StorageAccountClient {
    /// Blob operations from this VM.
    pub blob: BlobClient,
    /// Table operations from this VM.
    pub table: TableClient,
    /// Queue operations from this VM.
    pub queue: QueueClient,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_builds_and_attaches_clients() {
        let sim = Sim::new(1);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        let c1 = stamp.attach_small_client();
        let c2 = stamp.attach_small_client();
        // Distinct clients get distinct throttle links.
        assert_ne!(c1.blob.ingress_link(), c2.blob.ingress_link());
    }

    #[test]
    fn fault_profiles() {
        assert!(!FaultProfile::clean().enabled);
        let p = FaultProfile::production();
        assert!(p.enabled);
        assert!(p.connection_fail_p > 0.0 && p.connection_fail_p < 0.01);
    }
}
