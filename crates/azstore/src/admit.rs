//! Front-end admission control: shed work at the door instead of
//! letting it rot in the queue.
//!
//! The frontier campaign (PR 5) showed the failure mode the paper
//! hints at: past the saturation knee the stations keep *draining* at
//! capacity, but almost nothing finishes inside its SLO — goodput
//! collapses while raw throughput looks healthy. The fix practised by
//! every production front door is to reject excess work on arrival,
//! when rejection is cheap, rather than time it out after it has
//! already inflated everyone else's sojourn.
//!
//! This module provides the [`FrontDoor`] each service consults at op
//! entry and four deterministic [`AdmissionPolicy`] implementations:
//!
//! * [`TokenBucket`] — classic rate + burst pacing of *admissions*;
//! * [`QueueBound`] — bound on in-flight admitted operations, the
//!   service-level generalisation of `ContendedLatch::busy_queue_limit`;
//! * [`DeadlineAware`] — estimate the drain time of the work already
//!   admitted (in-flight × EWMA per-op service share) and reject a
//!   request whose remaining SLO budget the backlog would already
//!   consume;
//! * [`CoDel`] — the CoDel drain-time controller: once completion
//!   sojourns have stayed above `target_s` for one `interval_s`, shed
//!   at an increasing cadence (`interval / sqrt(count)`), backing off
//!   as soon as a sojourn dips below target.
//!
//! All policies are pure state machines over the simulation clock — no
//! RNG — so an admission sequence is a deterministic function of the
//! arrival schedule and shard-invariance is free.
//!
//! # Remaining-budget plumbing
//!
//! The deadline-aware policy needs the request's absolute SLO deadline,
//! which only the *client* knows (the open-loop fleet charges latency
//! from the scheduled arrival instant, so by the time a retry reaches
//! the door part of the budget is already spent). Callers stash the
//! absolute deadline with [`stash_deadline`] immediately before issuing
//! the operation; the next front-door admission consumes it. The sim
//! is single-threaded and cooperative, and every service gate runs
//! synchronously on the op future's first poll — before any await
//! point — so the stash cannot leak across tasks.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use simcore::prelude::*;

use crate::error::{Result, StorageError};

thread_local! {
    /// Absolute deadline (sim seconds) of the next admitted operation.
    static PENDING_DEADLINE: Cell<Option<f64>> = const { Cell::new(None) };
}

/// Declare the absolute SLO deadline (seconds on the sim clock) of the
/// operation issued *next* on this thread. Consumed — exactly once —
/// by the first front-door admission check that follows; unread
/// stashes are simply overwritten by the next one.
pub fn stash_deadline(abs_deadline_s: f64) {
    PENDING_DEADLINE.with(|d| d.set(Some(abs_deadline_s)));
}

/// Consume the stashed deadline, if any.
fn take_deadline() -> Option<f64> {
    PENDING_DEADLINE.with(|d| d.take())
}

/// What the door can tell a policy about the service right now.
#[derive(Debug, Clone, Copy)]
pub struct DoorObs {
    /// Operations admitted and not yet completed.
    pub in_flight: usize,
    /// EWMA of the per-op service share (completion sojourn divided by
    /// the concurrency it was served at); `0.0` until the first
    /// completion.
    pub service_share_s: f64,
}

/// A deterministic admission state machine. Implementations must not
/// consult any RNG: the decision sequence has to be a pure function of
/// the observed arrival/completion history so campaigns stay
/// shard-invariant.
pub trait AdmissionPolicy {
    /// Short policy name (CSV/trace label).
    fn name(&self) -> &'static str;
    /// Decide one arrival. `budget_s` is the request's remaining SLO
    /// budget when the caller declared one (see [`stash_deadline`]).
    fn admit(&mut self, now_s: f64, obs: &DoorObs, budget_s: Option<f64>) -> bool;
    /// Observe one completion and its door sojourn.
    fn on_complete(&mut self, _now_s: f64, _sojourn_s: f64) {}
}

/// Which policy (if any) guards each service's front door.
#[derive(Debug, Clone, Default)]
pub enum AdmissionConfig {
    /// No admission control — every arrival reaches the stations.
    #[default]
    None,
    /// Pace admissions to `rate_ops_s` with a `burst`-deep bucket.
    TokenBucket {
        /// Sustained admission rate (ops/s).
        rate_ops_s: f64,
        /// Bucket depth in whole operations.
        burst: f64,
    },
    /// Shed once `limit` admitted operations are in flight.
    QueueBound {
        /// Maximum in-flight admitted operations.
        limit: usize,
    },
    /// Shed when the estimated drain time of the admitted backlog
    /// exceeds the request's remaining SLO budget.
    DeadlineAware {
        /// Budget assumed for requests that declared none.
        default_budget_s: f64,
    },
    /// CoDel-style controller on completion sojourns.
    CoDel {
        /// Acceptable standing sojourn (seconds).
        target_s: f64,
        /// How long sojourns must stay above target before shedding
        /// starts; also the base of the shedding cadence.
        interval_s: f64,
    },
}

impl AdmissionConfig {
    /// Stable name (CSV column values, campaign labels).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionConfig::None => "none",
            AdmissionConfig::TokenBucket { .. } => "token_bucket",
            AdmissionConfig::QueueBound { .. } => "queue_bound",
            AdmissionConfig::DeadlineAware { .. } => "deadline",
            AdmissionConfig::CoDel { .. } => "codel",
        }
    }

    /// Instantiate the policy state machine, or `None` for no gate.
    pub fn build_policy(&self) -> Option<Box<dyn AdmissionPolicy>> {
        match *self {
            AdmissionConfig::None => None,
            AdmissionConfig::TokenBucket { rate_ops_s, burst } => {
                Some(Box::new(TokenBucket::new(rate_ops_s, burst)))
            }
            AdmissionConfig::QueueBound { limit } => Some(Box::new(QueueBound { limit })),
            AdmissionConfig::DeadlineAware { default_budget_s } => {
                Some(Box::new(DeadlineAware { default_budget_s }))
            }
            AdmissionConfig::CoDel {
                target_s,
                interval_s,
            } => Some(Box::new(CoDel::new(target_s, interval_s))),
        }
    }
}

/// Token-bucket admission: refill at `rate_ops_s`, cap at `burst`.
pub struct TokenBucket {
    rate_ops_s: f64,
    burst: f64,
    tokens: f64,
    last_s: f64,
}

impl TokenBucket {
    /// Bucket starting full.
    pub fn new(rate_ops_s: f64, burst: f64) -> Self {
        assert!(rate_ops_s > 0.0 && burst >= 1.0);
        TokenBucket {
            rate_ops_s,
            burst,
            tokens: burst,
            last_s: 0.0,
        }
    }
}

impl AdmissionPolicy for TokenBucket {
    fn name(&self) -> &'static str {
        "token_bucket"
    }

    fn admit(&mut self, now_s: f64, _obs: &DoorObs, _budget_s: Option<f64>) -> bool {
        let dt = (now_s - self.last_s).max(0.0);
        self.last_s = now_s;
        self.tokens = (self.tokens + dt * self.rate_ops_s).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Bound on admitted in-flight operations.
pub struct QueueBound {
    /// Maximum concurrent admitted operations.
    pub limit: usize,
}

impl AdmissionPolicy for QueueBound {
    fn name(&self) -> &'static str {
        "queue_bound"
    }

    fn admit(&mut self, _now_s: f64, obs: &DoorObs, _budget_s: Option<f64>) -> bool {
        obs.in_flight < self.limit
    }
}

/// Deadline-aware shedding: admit only if the admitted backlog can
/// drain inside the request's remaining budget.
pub struct DeadlineAware {
    /// Budget assumed when the request declared none.
    pub default_budget_s: f64,
}

impl AdmissionPolicy for DeadlineAware {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn admit(&mut self, _now_s: f64, obs: &DoorObs, budget_s: Option<f64>) -> bool {
        let budget = budget_s.unwrap_or(self.default_budget_s);
        if budget <= 0.0 {
            // Already past its deadline: serving it is pure waste.
            return false;
        }
        // Under processor sharing n concurrent ops drain in about
        // n × (per-op share); charge the candidate as the (n+1)-th.
        let est_drain_s = (obs.in_flight + 1) as f64 * obs.service_share_s;
        est_drain_s <= budget
    }
}

/// CoDel-style admission: shed at square-root-increasing cadence while
/// completion sojourns stay above target.
pub struct CoDel {
    target_s: f64,
    interval_s: f64,
    /// Instant the "sojourn continuously above target" episode would
    /// mature into shedding (set on the first above-target completion).
    first_above_s: Option<f64>,
    /// Currently in a shedding episode.
    dropping: bool,
    /// Next scheduled shed instant while dropping.
    drop_next_s: f64,
    /// Sheds in the current episode (drives the √-decrease cadence).
    count: u32,
    /// `count` of the previous episode (CoDel's fast-restart hint).
    last_count: u32,
    /// Most recent completion sojourn.
    recent_sojourn_s: f64,
}

impl CoDel {
    /// Fresh controller (not dropping).
    pub fn new(target_s: f64, interval_s: f64) -> Self {
        assert!(target_s > 0.0 && interval_s > 0.0);
        CoDel {
            target_s,
            interval_s,
            first_above_s: None,
            dropping: false,
            drop_next_s: 0.0,
            count: 0,
            last_count: 0,
            recent_sojourn_s: 0.0,
        }
    }

    fn above_matured(&self, now_s: f64) -> bool {
        matches!(self.first_above_s, Some(t) if now_s >= t)
    }
}

impl AdmissionPolicy for CoDel {
    fn name(&self) -> &'static str {
        "codel"
    }

    fn admit(&mut self, now_s: f64, _obs: &DoorObs, _budget_s: Option<f64>) -> bool {
        if self.dropping {
            if self.recent_sojourn_s < self.target_s || self.first_above_s.is_none() {
                self.dropping = false;
                return true;
            }
            if now_s >= self.drop_next_s {
                self.count += 1;
                self.drop_next_s += self.interval_s / (self.count as f64).sqrt();
                return false;
            }
            true
        } else if self.above_matured(now_s) {
            // Enter a shedding episode; restart near the previous
            // cadence if the last episode ended recently enough that
            // the overload is plausibly the same one.
            self.dropping = true;
            self.count = if self.last_count > 2 {
                self.last_count - 2
            } else {
                1
            };
            self.last_count = self.count;
            self.drop_next_s = now_s + self.interval_s / (self.count as f64).sqrt();
            false
        } else {
            true
        }
    }

    fn on_complete(&mut self, now_s: f64, sojourn_s: f64) {
        self.recent_sojourn_s = sojourn_s;
        if sojourn_s < self.target_s {
            self.first_above_s = None;
            if self.dropping {
                self.dropping = false;
                self.last_count = self.count;
            }
        } else if self.first_above_s.is_none() {
            self.first_above_s = Some(now_s + self.interval_s);
        }
    }
}

/// EWMA weight for the per-op service-share estimate.
const SHARE_EWMA_ALPHA: f64 = 0.2;

/// One service's admission gate: owns the policy state machine, tracks
/// in-flight/sojourn observations and the accepted/shed counters, and
/// reports them through `simtrace` (`admit.accepted`, `admit.shed`,
/// `admit.deadline_budget_us`).
pub struct FrontDoor {
    sim: Sim,
    policy: RefCell<Box<dyn AdmissionPolicy>>,
    in_flight: Cell<usize>,
    share_s: Cell<f64>,
    accepted: Cell<u64>,
    shed: Cell<u64>,
}

impl FrontDoor {
    /// Build the door for a config, or `None` when admission is off.
    pub fn build(sim: &Sim, cfg: &AdmissionConfig) -> Option<Rc<FrontDoor>> {
        cfg.build_policy().map(|policy| {
            Rc::new(FrontDoor {
                sim: sim.clone(),
                policy: RefCell::new(policy),
                in_flight: Cell::new(0),
                share_s: Cell::new(0.0),
                accepted: Cell::new(0),
                shed: Cell::new(0),
            })
        })
    }

    /// Decide one arrival. On acceptance the returned permit counts the
    /// op as in flight until dropped (normal completion, error return
    /// and timeout-cancel all release it — the drop runs either way).
    /// On rejection the op fails with [`StorageError::ServerBusy`],
    /// indistinguishable on the wire from a station-level shed.
    pub fn admit(self: &Rc<Self>) -> Result<AdmitPermit> {
        let now_s = self.sim.now().as_secs_f64();
        let budget_s = take_deadline().map(|d| d - now_s);
        let obs = DoorObs {
            in_flight: self.in_flight.get(),
            service_share_s: self.share_s.get(),
        };
        let accept = self.policy.borrow_mut().admit(now_s, &obs, budget_s);
        if accept {
            self.accepted.set(self.accepted.get() + 1);
            self.in_flight.set(self.in_flight.get() + 1);
            simtrace::counter("admit.accepted", 1);
            if let Some(b) = budget_s {
                simtrace::counter("admit.deadline_budget_us", (b * 1e6) as i64);
            }
            Ok(AdmitPermit {
                door: Rc::clone(self),
                admitted_s: now_s,
            })
        } else {
            self.shed.set(self.shed.get() + 1);
            simtrace::counter("admit.shed", 1);
            Err(StorageError::ServerBusy)
        }
    }

    /// Operations admitted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.get()
    }

    /// Operations shed at the door so far.
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// Admitted operations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.get()
    }

    fn release(&self, admitted_s: f64) {
        let n = self.in_flight.get().max(1);
        self.in_flight.set(n - 1);
        let now_s = self.sim.now().as_secs_f64();
        let sojourn_s = (now_s - admitted_s).max(0.0);
        // Per-op share: under processor sharing an op served at
        // concurrency n holds the door for about n × its own work.
        let share = sojourn_s / n as f64;
        let prev = self.share_s.get();
        self.share_s.set(if prev == 0.0 {
            share
        } else {
            SHARE_EWMA_ALPHA * share + (1.0 - SHARE_EWMA_ALPHA) * prev
        });
        self.policy.borrow_mut().on_complete(now_s, sojourn_s);
    }
}

/// RAII in-flight token handed out by [`FrontDoor::admit`].
pub struct AdmitPermit {
    door: Rc<FrontDoor>,
    admitted_s: f64,
}

impl Drop for AdmitPermit {
    fn drop(&mut self) {
        self.door.release(self.admitted_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(in_flight: usize, share: f64) -> DoorObs {
        DoorObs {
            in_flight,
            service_share_s: share,
        }
    }

    #[test]
    fn token_bucket_paces_to_rate() {
        let mut tb = TokenBucket::new(10.0, 2.0);
        // Burst of 2 admitted instantly, third shed.
        assert!(tb.admit(0.0, &obs(0, 0.0), None));
        assert!(tb.admit(0.0, &obs(1, 0.0), None));
        assert!(!tb.admit(0.0, &obs(2, 0.0), None));
        // 0.1 s refills exactly one token.
        assert!(tb.admit(0.1, &obs(2, 0.0), None));
        assert!(!tb.admit(0.1, &obs(3, 0.0), None));
        // Over a long quiet period the bucket caps at burst.
        assert!(tb.admit(10.0, &obs(0, 0.0), None));
        assert!(tb.admit(10.0, &obs(1, 0.0), None));
        assert!(!tb.admit(10.0, &obs(2, 0.0), None));
    }

    #[test]
    fn queue_bound_binds_in_flight() {
        let mut qb = QueueBound { limit: 3 };
        assert!(qb.admit(0.0, &obs(2, 0.0), None));
        assert!(!qb.admit(0.0, &obs(3, 0.0), None));
        assert!(!qb.admit(0.0, &obs(10, 0.0), None));
    }

    #[test]
    fn deadline_aware_sheds_on_insufficient_budget() {
        let mut da = DeadlineAware {
            default_budget_s: 1.0,
        };
        // No completions yet (share 0): always admit.
        assert!(da.admit(0.0, &obs(100, 0.0), Some(0.01)));
        // 10 ms per op, 50 in flight → 0.51 s drain estimate.
        assert!(da.admit(0.0, &obs(50, 0.01), Some(0.6)));
        assert!(!da.admit(0.0, &obs(50, 0.01), Some(0.4)));
        // Exhausted budget is shed outright.
        assert!(!da.admit(0.0, &obs(0, 0.0), Some(-0.1)));
        // Undeclared budget falls back to the default.
        assert!(da.admit(0.0, &obs(50, 0.01), None));
        assert!(!da.admit(0.0, &obs(150, 0.01), None));
    }

    #[test]
    fn codel_sheds_after_interval_above_target_and_recovers() {
        let mut cd = CoDel::new(0.1, 1.0);
        // Below target: admits freely.
        cd.on_complete(0.0, 0.05);
        assert!(cd.admit(0.1, &obs(1, 0.0), None));
        // Sojourns rise above target at t=1; maturity at t=2.
        cd.on_complete(1.0, 0.5);
        assert!(cd.admit(1.5, &obs(5, 0.0), None));
        cd.on_complete(1.9, 0.5);
        assert!(!cd.admit(2.0, &obs(5, 0.0), None), "episode entry sheds");
        // Cadence: next shed only after interval/sqrt(count).
        assert!(cd.admit(2.5, &obs(5, 0.0), None));
        cd.on_complete(2.9, 0.5);
        assert!(!cd.admit(3.1, &obs(5, 0.0), None));
        // A below-target sojourn ends the episode immediately.
        cd.on_complete(3.2, 0.05);
        assert!(cd.admit(3.3, &obs(5, 0.0), None));
        assert!(cd.admit(3.3, &obs(5, 0.0), None));
    }

    #[test]
    fn front_door_counts_and_releases() {
        let sim = Sim::new(1);
        let door = FrontDoor::build(&sim, &AdmissionConfig::QueueBound { limit: 2 })
            .expect("policy configured");
        let p1 = door.admit().unwrap();
        let p2 = door.admit().unwrap();
        assert!(matches!(door.admit(), Err(StorageError::ServerBusy)));
        assert_eq!((door.accepted(), door.shed(), door.in_flight()), (2, 1, 2));
        drop(p1);
        assert_eq!(door.in_flight(), 1);
        let _p3 = door.admit().unwrap();
        drop(p2);
        assert_eq!((door.accepted(), door.shed(), door.in_flight()), (3, 1, 1));
    }

    #[test]
    fn none_config_builds_no_door() {
        let sim = Sim::new(1);
        assert!(FrontDoor::build(&sim, &AdmissionConfig::None).is_none());
    }

    #[test]
    fn stashed_deadline_is_consumed_once() {
        let sim = Sim::new(1);
        let door = FrontDoor::build(
            &sim,
            &AdmissionConfig::DeadlineAware {
                default_budget_s: 10.0,
            },
        )
        .unwrap();
        // A stash in the past sheds; the next check (no stash) falls
        // back to the generous default and admits.
        stash_deadline(-1.0);
        assert!(door.admit().is_err());
        assert!(door.admit().is_ok());
    }
}
