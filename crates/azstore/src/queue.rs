//! The queue service (paper §3.3, Fig 3; §5.2 retry semantics).
//!
//! "The main purpose of the queue storage service in Windows Azure is to
//! provide a communication facility between web roles and worker roles."
//!
//! Semantics modelled faithfully because ModisAzure depends on them:
//! * **Add** appends a message (synchronous 3-replica write);
//! * **Peek** reads the head without changing state (fastest op — no
//!   replication synchronization, any replica can answer);
//! * **Receive** (Get) makes the head invisible for a visibility timeout
//!   and hands back a pop receipt; "a queue message that is not
//!   explicitly removed after a specified time-period will re-appear in
//!   the queue automatically" (§5.2);
//! * **Delete-message** requires a matching pop receipt; if the message
//!   re-appeared and was re-received, the stale receipt fails — exactly
//!   the corruption hazard §5.2 describes;
//! * visibility timeout is capped at 2 h (§5.2).
//!
//! Performance: Add/Receive commit through a queue-head latch whose hold
//! inflates with contention (aggregate peaks at ~64 clients: 569 and
//! 424 ops/s), Peek rides a load-dependent station (still rising at 192
//! clients: 3392 → 3878 ops/s). Queue *length* does not appear in any
//! cost term — "there is not much variation in performance as the queue
//! grows in size from 200,000 messages to 2 million messages".

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use simcore::prelude::*;

use simfault::RetryPolicy;
use simtrace::Layer;

use crate::calib;
use crate::error::{Result, StorageError};
use crate::stamp::StampConfig;
use crate::station::{ContendedLatch, LoadedStation};
use crate::trace_outcome;

/// A queued message (payload modelled by size plus an opaque body tag the
/// application uses to identify work items).
#[derive(Debug, Clone)]
pub struct Message {
    /// Server-assigned id.
    pub id: u64,
    /// Application payload tag (e.g. a task id).
    pub body: String,
    /// Payload size in bytes (drives the per-kB cost term).
    pub size: f64,
    /// Enqueue time.
    pub inserted: SimTime,
    /// Times this message has been received (re-deliveries increment it).
    pub dequeue_count: u32,
}

/// Receipt proving a specific receive; required to delete the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopReceipt {
    id: u64,
    visible_at: SimTime,
}

/// A received message plus its receipt.
#[derive(Debug, Clone)]
pub struct ReceivedMessage {
    /// The message content.
    pub message: Message,
    /// Receipt for the follow-up delete.
    pub receipt: PopReceipt,
}

#[derive(Default)]
struct QueueData {
    // Ordered by (visible_at, id): the first entry is the next deliverable
    // message once its visibility time has passed. Fresh messages enter
    // with visible_at = now, so FIFO order is (time, id).
    messages: BTreeMap<(SimTime, u64), Message>,
}

/// Per-queue performance state: each queue maps to one partition server,
/// so both the mutation latches and the load-dependent stations are
/// per-queue — which is why §6.1 recommends sharding hot workloads
/// across multiple queues.
struct QueuePerf {
    add_latch: Rc<ContendedLatch>,
    recv_latch: Rc<ContendedLatch>,
    peek_station: Rc<LoadedStation>,
    add_station: Rc<LoadedStation>,
    recv_station: Rc<LoadedStation>,
}

/// Server-side queue service.
pub struct QueueService {
    sim: Sim,
    cfg: StampConfig,
    queues: RefCell<HashMap<String, QueueData>>,
    perf: RefCell<HashMap<String, Rc<QueuePerf>>>,
    next_id: Cell<u64>,
    rng: RefCell<SimRng>,
    ops: Cell<u64>,
    door: Option<Rc<crate::admit::FrontDoor>>,
}

impl QueueService {
    pub(crate) fn new(sim: &Sim, cfg: &StampConfig) -> Rc<Self> {
        Rc::new(QueueService {
            sim: sim.clone(),
            cfg: cfg.clone(),
            queues: RefCell::new(HashMap::new()),
            perf: RefCell::new(HashMap::new()),
            next_id: Cell::new(1),
            rng: RefCell::new(sim.rng(&cfg.scoped("queue.service"))),
            ops: Cell::new(0),
            door: crate::admit::FrontDoor::build(sim, &cfg.admission),
        })
    }

    /// The service's admission gate, when one is configured.
    pub fn front_door(&self) -> Option<&Rc<crate::admit::FrontDoor>> {
        self.door.as_ref()
    }

    /// Total `ContendedLatch` sheds across every queue's add/recv latch.
    pub fn latch_shed_total(&self) -> u64 {
        self.perf
            .borrow()
            .values()
            .map(|p| p.add_latch.shed_total() + p.recv_latch.shed_total())
            .sum()
    }

    /// Front-door admission check (no-op `Ok(None)` when admission is
    /// off). Runs synchronously at op entry, before any await.
    fn admit(&self) -> Result<Option<crate::admit::AdmitPermit>> {
        match &self.door {
            Some(d) => d.admit().map(Some),
            None => Ok(None),
        }
    }

    /// Total operations served.
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// Current message count of a queue (including invisible ones).
    pub fn len(&self, queue: &str) -> usize {
        self.queues
            .borrow()
            .get(queue)
            .map_or(0, |q| q.messages.len())
    }

    /// True if the queue holds no messages at all.
    pub fn is_empty(&self, queue: &str) -> bool {
        self.len(queue) == 0
    }

    /// Seed `n` messages instantly (fixture for the queue-length
    /// invariance experiment: 200 k vs 2 M messages).
    pub fn seed_messages(&self, queue: &str, n: usize, size: f64) {
        let now = self.sim.now();
        let mut queues = self.queues.borrow_mut();
        let q = queues.entry(queue.to_string()).or_default();
        for _ in 0..n {
            let id = self.next_id.get();
            self.next_id.set(id + 1);
            q.messages.insert(
                (now, id),
                Message {
                    id,
                    body: String::new(),
                    size,
                    inserted: now,
                    dequeue_count: 0,
                },
            );
        }
    }

    fn perf_of(&self, queue: &str) -> Rc<QueuePerf> {
        let j = self.cfg.jitter_sigma;
        let nscale = |n: f64| {
            if self.cfg.ablate_no_latch_inflation {
                f64::INFINITY
            } else {
                n
            }
        };
        let cap = &self.cfg.capacity;
        let mut perf = self.perf.borrow_mut();
        Rc::clone(perf.entry(queue.to_string()).or_insert_with(|| {
            Rc::new(QueuePerf {
                add_latch: Rc::new(
                    ContendedLatch::new(
                        &self.sim,
                        calib::QUEUE_ADD_HOLD_S,
                        nscale(calib::QUEUE_ADD_HOLD_NSCALE),
                        j,
                        calib::TABLE_BUSY_QUEUE_LIMIT,
                    )
                    .with_capacity(cap.clone()),
                ),
                recv_latch: Rc::new(
                    ContendedLatch::new(
                        &self.sim,
                        calib::QUEUE_RECV_HOLD_S,
                        nscale(calib::QUEUE_RECV_HOLD_NSCALE),
                        j,
                        calib::TABLE_BUSY_QUEUE_LIMIT,
                    )
                    .with_capacity(cap.clone()),
                ),
                peek_station: Rc::new(
                    LoadedStation::new(
                        &self.sim,
                        calib::QUEUE_PEEK_BASE_S,
                        calib::QUEUE_PEEK_LOAD_S,
                        j,
                    )
                    .with_capacity(cap.clone()),
                ),
                add_station: Rc::new(
                    LoadedStation::new(
                        &self.sim,
                        calib::QUEUE_ADD_BASE_S,
                        calib::QUEUE_ADD_LOAD_S,
                        j,
                    )
                    .with_capacity(cap.clone()),
                ),
                recv_station: Rc::new(
                    LoadedStation::new(
                        &self.sim,
                        calib::QUEUE_RECV_BASE_S,
                        calib::QUEUE_RECV_LOAD_S,
                        j,
                    )
                    .with_capacity(cap.clone()),
                ),
            })
        }))
    }

    fn bump(&self) {
        self.ops.set(self.ops.get() + 1);
    }

    fn fault(&self, p: f64) -> bool {
        self.cfg.faults.enabled && self.rng.borrow_mut().chance(p)
    }

    /// Connection-level fault draw, in `RetryPolicy` precheck form.
    fn connection_precheck(&self) -> Option<StorageError> {
        if self.fault(self.cfg.faults.connection_fail_p) {
            Some(StorageError::ConnectionFailed)
        } else {
            None
        }
    }

    /// The 2009 queue SDK ran each op under the client timeout with no
    /// automatic retry (re-delivery via visibility timeout is the
    /// recovery mechanism, §5.2).
    fn op_policy(&self) -> RetryPolicy {
        RetryPolicy::none().with_timeout(self.cfg.op_timeout)
    }
}

/// Per-VM queue client.
pub struct QueueClient {
    svc: Rc<QueueService>,
    rng: RefCell<SimRng>,
}

impl QueueClient {
    pub(crate) fn new(svc: &Rc<QueueService>, client_id: u64) -> Self {
        QueueClient {
            svc: Rc::clone(svc),
            rng: RefCell::new(
                svc.sim
                    .rng(&svc.cfg.scoped(&format!("queue.client.{client_id}"))),
            ),
        }
    }

    /// Enqueue a message of `size` bytes with an application body tag.
    pub async fn add(&self, queue: &str, body: impl Into<String>, size: f64) -> Result<u64> {
        let sp = simtrace::span(Layer::Store, "queue.add", || format!("queue:{queue}"));
        let svc = &self.svc;
        let body = body.into();
        let op = async {
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let mut rng = self.rng.borrow_mut().fork("add");
            let kb = size / calib::KB;
            let perf = svc.perf_of(queue);
            let fe = sp.child("frontend", || "add_station".into());
            perf.add_station
                .serve(kb * calib::QUEUE_PAYLOAD_S_PER_KB, &mut rng)
                .await;
            fe.end();
            crate::injected_commit_stall(&svc.sim).await;
            let cm = sp.child("partition.commit", || "queue_head_latch".into());
            perf.add_latch.commit(1.0, &mut rng).await?;
            cm.end();
            let id = svc.next_id.get();
            svc.next_id.set(id + 1);
            let now = svc.sim.now();
            svc.queues
                .borrow_mut()
                .entry(queue.to_string())
                .or_default()
                .messages
                .insert(
                    (now, id),
                    Message {
                        id,
                        body,
                        size,
                        inserted: now,
                        dequeue_count: 0,
                    },
                );
            svc.bump();
            Ok(id)
        };
        let res = svc
            .op_policy()
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await;
        trace_outcome(&sp, &res);
        res
    }

    /// Read the head message without changing queue state.
    pub async fn peek(&self, queue: &str) -> Result<Option<Message>> {
        let sp = simtrace::span(Layer::Store, "queue.peek", || format!("queue:{queue}"));
        let svc = &self.svc;
        let op = async {
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let mut rng = self.rng.borrow_mut().fork("peek");
            let perf = svc.perf_of(queue);
            let fe = sp.child("frontend", || "peek_station".into());
            perf.peek_station.serve(0.0, &mut rng).await;
            fe.end();
            let now = svc.sim.now();
            let head = svc.queues.borrow().get(queue).and_then(|q| {
                q.messages
                    .iter()
                    .next()
                    .filter(|((vis, _), _)| *vis <= now)
                    .map(|(_, m)| m.clone())
            });
            svc.bump();
            Ok(head)
        };
        let res = svc
            .op_policy()
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await;
        trace_outcome(&sp, &res);
        res
    }

    /// Receive the head message, making it invisible for `visibility`
    /// (clamped to the 2 h maximum). `None` if nothing is deliverable.
    pub async fn receive(
        &self,
        queue: &str,
        visibility: SimDuration,
    ) -> Result<Option<ReceivedMessage>> {
        let sp = simtrace::span(Layer::Store, "queue.receive", || format!("queue:{queue}"));
        let svc = &self.svc;
        let visibility = visibility.min(SimDuration::from_secs_f64(calib::QUEUE_MAX_VISIBILITY_S));
        let op = async {
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let mut rng = self.rng.borrow_mut().fork("recv");
            let perf = svc.perf_of(queue);
            let fe = sp.child("frontend", || "recv_station".into());
            perf.recv_station.serve(0.0, &mut rng).await;
            fe.end();
            crate::injected_commit_stall(&svc.sim).await;
            let cm = sp.child("partition.commit", || "queue_head_latch".into());
            perf.recv_latch.commit(1.0, &mut rng).await?;
            cm.end();
            let now = svc.sim.now();
            let mut queues = svc.queues.borrow_mut();
            let q = match queues.get_mut(queue) {
                Some(q) => q,
                None => {
                    svc.bump();
                    return Ok(None);
                }
            };
            let key = q
                .messages
                .iter()
                .next()
                .filter(|((vis, _), _)| *vis <= now)
                .map(|(k, _)| *k);
            svc.bump();
            match key {
                Some(k) => {
                    let mut m = q.messages.remove(&k).expect("key just observed");
                    m.dequeue_count += 1;
                    let visible_at = now + visibility;
                    let receipt = PopReceipt {
                        id: m.id,
                        visible_at,
                    };
                    q.messages.insert((visible_at, m.id), m.clone());
                    Ok(Some(ReceivedMessage {
                        message: m,
                        receipt,
                    }))
                }
                None => Ok(None),
            }
        };
        let res = svc
            .op_policy()
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await;
        trace_outcome(&sp, &res);
        res
    }

    /// Receive with the API's default 30 s visibility timeout.
    pub async fn receive_default(&self, queue: &str) -> Result<Option<ReceivedMessage>> {
        self.receive(
            queue,
            SimDuration::from_secs_f64(calib::QUEUE_DEFAULT_VISIBILITY_S),
        )
        .await
    }

    /// Batch receive: up to `max` messages (the 2009 GetMessages API
    /// capped batches at 32) in one latch acquisition — cheaper per
    /// message than repeated single receives, which is how high-volume
    /// consumers amortized the replica-sync cost.
    pub async fn receive_batch(
        &self,
        queue: &str,
        max: usize,
        visibility: SimDuration,
    ) -> Result<Vec<ReceivedMessage>> {
        let sp = simtrace::span(Layer::Store, "queue.receive_batch", || {
            format!("queue:{queue}")
        });
        let svc = &self.svc;
        let max = max.clamp(1, 32);
        if sp.is_recording() {
            sp.attr("max", max);
        }
        let visibility = visibility.min(SimDuration::from_secs_f64(calib::QUEUE_MAX_VISIBILITY_S));
        let op = async {
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let mut rng = self.rng.borrow_mut().fork("recvb");
            let perf = svc.perf_of(queue);
            let fe = sp.child("frontend", || "recv_station".into());
            perf.recv_station.serve(0.0, &mut rng).await;
            fe.end();
            // One synchronization commit covers the whole batch, plus a
            // small per-extra-message cost.
            crate::injected_commit_stall(&svc.sim).await;
            let cm = sp.child("partition.commit", || "queue_head_latch".into());
            perf.recv_latch
                .commit(1.0 + 0.15 * (max as f64 - 1.0), &mut rng)
                .await?;
            cm.end();
            let now = svc.sim.now();
            let mut queues = svc.queues.borrow_mut();
            let q = match queues.get_mut(queue) {
                Some(q) => q,
                None => {
                    svc.bump();
                    return Ok(Vec::new());
                }
            };
            let mut out = Vec::new();
            for _ in 0..max {
                let key = q
                    .messages
                    .iter()
                    .next()
                    .filter(|((vis, _), _)| *vis <= now)
                    .map(|(k, _)| *k);
                let Some(k) = key else { break };
                let mut m = q.messages.remove(&k).expect("key just observed");
                m.dequeue_count += 1;
                let visible_at = now + visibility;
                let receipt = PopReceipt {
                    id: m.id,
                    visible_at,
                };
                q.messages.insert((visible_at, m.id), m.clone());
                out.push(ReceivedMessage {
                    message: m,
                    receipt,
                });
            }
            svc.bump();
            Ok(out)
        };
        let res = svc
            .op_policy()
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await;
        trace_outcome(&sp, &res);
        res
    }

    /// Approximate message count (the real API exposed this on queue
    /// metadata; includes currently-invisible messages).
    pub async fn approximate_count(&self, queue: &str) -> Result<usize> {
        let svc = &self.svc;
        let op = async {
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let mut rng = self.rng.borrow_mut().fork("count");
            svc.perf_of(queue).peek_station.serve(0.0, &mut rng).await;
            svc.bump();
            Ok(svc.len(queue))
        };
        svc.op_policy()
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await
    }

    /// Delete a received message. Fails with `NotFound` if the receipt is
    /// stale — the message's visibility expired and another worker
    /// received it (the §5.2 duplicate-execution hazard).
    pub async fn delete_message(&self, queue: &str, receipt: PopReceipt) -> Result<()> {
        let sp = simtrace::span(Layer::Store, "queue.delete_message", || {
            format!("queue:{queue}")
        });
        let svc = &self.svc;
        let op = async {
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let mut rng = self.rng.borrow_mut().fork("delmsg");
            let fe = sp.child("frontend", || "recv_station".into());
            svc.perf_of(queue).recv_station.serve(0.0, &mut rng).await;
            fe.end();
            let removed = svc
                .queues
                .borrow_mut()
                .get_mut(queue)
                .and_then(|q| q.messages.remove(&(receipt.visible_at, receipt.id)));
            svc.bump();
            match removed {
                Some(_) => Ok(()),
                None => Err(StorageError::NotFound),
            }
        };
        let res = svc
            .op_policy()
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await;
        trace_outcome(&sp, &res);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp::{StampConfig, StorageStamp};

    fn setup(seed: u64) -> (Sim, Rc<StorageStamp>) {
        let sim = Sim::new(seed);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        (sim, stamp)
    }

    #[test]
    fn add_peek_receive_delete_roundtrip() {
        let (sim, stamp) = setup(1);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            c.queue.add("q", "task-1", 512.0).await.unwrap();
            let peeked = c.queue.peek("q").await.unwrap().unwrap();
            assert_eq!(peeked.body, "task-1");
            let got = c.queue.receive_default("q").await.unwrap().unwrap();
            assert_eq!(got.message.body, "task-1");
            assert_eq!(got.message.dequeue_count, 1);
            // Invisible now: peek sees nothing.
            assert!(c.queue.peek("q").await.unwrap().is_none());
            c.queue.delete_message("q", got.receipt).await.unwrap();
            assert!(c.queue.receive_default("q").await.unwrap().is_none())
        });
        sim.run();
        h.try_take().unwrap();
    }

    #[test]
    fn fifo_delivery_order() {
        let (sim, stamp) = setup(2);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            for i in 0..5 {
                c.queue.add("q", format!("m{i}"), 512.0).await.unwrap();
            }
            let mut seen = Vec::new();
            while let Some(m) = c.queue.receive_default("q").await.unwrap() {
                seen.push(m.message.body.clone());
                c.queue.delete_message("q", m.receipt).await.unwrap();
            }
            seen
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), vec!["m0", "m1", "m2", "m3", "m4"]);
    }

    #[test]
    fn message_reappears_after_visibility_timeout() {
        let (sim, stamp) = setup(3);
        let c = stamp.attach_small_client();
        let s = sim.clone();
        let h = sim.spawn(async move {
            c.queue.add("q", "flaky", 512.0).await.unwrap();
            let first = c
                .queue
                .receive("q", SimDuration::from_secs(10))
                .await
                .unwrap()
                .unwrap();
            // Don't delete; let visibility lapse.
            s.delay(SimDuration::from_secs(11)).await;
            let second = c.queue.receive_default("q").await.unwrap().unwrap();
            (first.message.dequeue_count, second.message.dequeue_count)
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (1, 2));
    }

    #[test]
    fn stale_receipt_fails_after_redelivery() {
        // §5.2's hazard: slow worker's delete must fail once the message
        // was re-received by someone else.
        let (sim, stamp) = setup(4);
        let c = stamp.attach_small_client();
        let s = sim.clone();
        let h = sim.spawn(async move {
            c.queue.add("q", "x", 512.0).await.unwrap();
            let slow = c
                .queue
                .receive("q", SimDuration::from_secs(5))
                .await
                .unwrap()
                .unwrap();
            s.delay(SimDuration::from_secs(6)).await;
            let fast = c.queue.receive_default("q").await.unwrap().unwrap();
            let stale = c.queue.delete_message("q", slow.receipt).await;
            let fresh = c.queue.delete_message("q", fast.receipt).await;
            (stale, fresh)
        });
        sim.run();
        let (stale, fresh) = h.try_take().unwrap();
        assert_eq!(stale.unwrap_err(), StorageError::NotFound);
        assert!(fresh.is_ok());
    }

    #[test]
    fn visibility_clamped_to_two_hours() {
        let (sim, stamp) = setup(5);
        let c = stamp.attach_small_client();
        let s = sim.clone();
        let h = sim.spawn(async move {
            c.queue.add("q", "long", 512.0).await.unwrap();
            c.queue
                .receive("q", SimDuration::from_hours(50))
                .await
                .unwrap()
                .unwrap();
            // After 2h + slack the message must be deliverable again.
            s.delay(SimDuration::from_hours(2) + SimDuration::from_secs(60))
                .await;
            c.queue.receive_default("q").await.unwrap()
        });
        sim.run();
        assert!(h.try_take().unwrap().is_some(), "2 h cap not enforced");
    }

    #[test]
    fn queue_length_does_not_change_op_latency() {
        // §3.3: no performance variation between 200 k and 2 M messages.
        // (Scaled counts; the mechanism is length-free by construction,
        // this guards against regressions introducing O(len) costs.)
        let timing = |seed: u64, seeded: usize| {
            let (sim, stamp) = setup(seed);
            stamp.queue_service().seed_messages("big", seeded, 512.0);
            let c = stamp.attach_small_client();
            let s = sim.clone();
            let h = sim.spawn(async move {
                let t0 = s.now();
                for _ in 0..50 {
                    let m = c.queue.receive_default("big").await.unwrap().unwrap();
                    c.queue.delete_message("big", m.receipt).await.unwrap();
                    c.queue.add("big", "new", 512.0).await.unwrap();
                }
                (s.now() - t0).as_secs_f64()
            });
            sim.run();
            h.try_take().unwrap()
        };
        let small = timing(6, 20_000);
        let large = timing(6, 200_000);
        let ratio = large / small;
        assert!((0.8..1.25).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn batch_receive_drains_in_order_and_amortizes() {
        let (sim, stamp) = setup(8);
        stamp.queue_service().seed_messages("q", 100, 512.0);
        let c = stamp.attach_small_client();
        let s = sim.clone();
        let h = sim.spawn(async move {
            // Time 32 singles vs one batch of 32.
            let t0 = s.now();
            let batch = c
                .queue
                .receive_batch("q", 32, SimDuration::from_secs(60))
                .await
                .unwrap();
            let batch_time = (s.now() - t0).as_secs_f64();
            let t0 = s.now();
            for _ in 0..32 {
                c.queue.receive_default("q").await.unwrap().unwrap();
            }
            let singles_time = (s.now() - t0).as_secs_f64();
            (batch, batch_time, singles_time)
        });
        sim.run();
        let (batch, batch_time, singles_time) = h.try_take().unwrap();
        assert_eq!(batch.len(), 32);
        // FIFO within the batch.
        assert!(batch.windows(2).all(|w| w[0].message.id < w[1].message.id));
        assert!(
            batch_time < singles_time / 4.0,
            "batch {batch_time}s vs singles {singles_time}s"
        );
    }

    #[test]
    fn batch_receive_caps_at_32_and_handles_short_queues() {
        let (sim, stamp) = setup(9);
        stamp.queue_service().seed_messages("q", 5, 512.0);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            let got = c
                .queue
                .receive_batch("q", 100, SimDuration::from_secs(60))
                .await
                .unwrap();
            let empty = c
                .queue
                .receive_batch("q", 8, SimDuration::from_secs(60))
                .await
                .unwrap();
            (got.len(), empty.len())
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (5, 0));
    }

    #[test]
    fn approximate_count_includes_invisible() {
        let (sim, stamp) = setup(10);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            c.queue.add("q", "a", 512.0).await.unwrap();
            c.queue.add("q", "b", 512.0).await.unwrap();
            let before = c.queue.approximate_count("q").await.unwrap();
            let _leased = c.queue.receive_default("q").await.unwrap().unwrap();
            let during = c.queue.approximate_count("q").await.unwrap();
            (before, during)
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), (2, 2));
    }

    #[test]
    fn single_writer_add_rate_matches_paper_band() {
        // §6.1: "With 16 or fewer writers each client obtained 15–20
        // ops/s" — a lone writer sits at the top of that band.
        let (sim, stamp) = setup(7);
        let c = stamp.attach_small_client();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let n = 100;
            let t0 = s.now();
            for i in 0..n {
                c.queue.add("q", format!("m{i}"), 512.0).await.unwrap();
            }
            n as f64 / (s.now() - t0).as_secs_f64()
        });
        sim.run();
        let rate = h.try_take().unwrap();
        assert!((13.0..22.0).contains(&rate), "add rate={rate}/s");
    }
}
