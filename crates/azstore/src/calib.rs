//! Calibration constants for the storage stamp.
//!
//! Philosophy (DESIGN.md §5): every *curve shape* must come from a
//! mechanism (locks, replication fan-out, NIC caps, load-dependent
//! service); the constants below only pin absolute values to the paper's
//! published anchors. Each constant cites the sentence it comes from.
//! All bandwidths are bytes/second, all times are seconds unless noted.

/// One mebibyte in bytes — bandwidth anchors in the paper are MB/s.
pub const MB: f64 = 1.0e6;
/// One kibibyte-ish in bytes (the paper's "kB" entity/message sizes).
pub const KB: f64 = 1.0e3;

// ---------------------------------------------------------------------------
// Blob service (paper §3.1, Fig 1; recommendations §6.1)
// ---------------------------------------------------------------------------

/// Per-VM storage-access throttle for a small instance.
/// "For 1–8 concurrent clients we saw a 100 Mbit/s, or approximately
/// 13 MB/s, limitation" (§6.1).
pub const SMALL_VM_STORAGE_BPS: f64 = 13.0 * MB;

/// Aggregate egress available against a single blob.
/// "The maximum service-side bandwidth achievable against a single blob
/// ... is limited to approximately 400 MB/s, which is just about what we
/// would expect from three 1 Gb/s links if a blob is triple-replicated"
/// (§6.1). The observed maximum was 393.4 MB/s at 128 clients (§3.1).
pub const BLOB_EGRESS_BPS: f64 = 400.0 * MB;

/// Concurrency knee past which single-blob egress degrades (the paper's
/// maximum was *at* 128 clients; 192 was lower).
pub const BLOB_EGRESS_KNEE: usize = 128;

/// Egress degradation strength past the knee; 0.002/flow puts the
/// 192-client aggregate ≈ 355 MB/s, below the 128-client peak as
/// observed.
pub const BLOB_EGRESS_GAMMA: f64 = 0.002;

/// Front-end per-flow download ceiling when alone (≈ the VM throttle).
pub const BLOB_DL_PERFLOW_BASE: f64 = 13.0 * MB;
/// Concurrency scale of the download ceiling: "The bandwidth for 32
/// concurrent clients is half of the bandwidth that a single client
/// achieves" (§3.1) — the ceiling halves around n = 34 with exponent
/// 0.8.
pub const BLOB_DL_PERFLOW_BETA: f64 = 34.0;
/// Sub-linear decline exponent (lets the aggregate keep rising to the
/// 128-client peak).
pub const BLOB_DL_PERFLOW_EXP: f64 = 0.8;

/// Ingest (upload) aggregate capacity. "For the blob upload operation,
/// the maximum throughput was 124.25 MB/s ... with 192 concurrent
/// clients" (§3.1) — still rising at 192, so the pipe is ~125 MB/s.
pub const BLOB_INGEST_BPS: f64 = 125.0 * MB;

/// Upload per-flow ceiling base: "the performance of the upload blob
/// operation ... has a similar curve shape to the download but at about
/// half the bandwidth" (§3.1).
pub const BLOB_UL_PERFLOW_BASE: f64 = 7.0 * MB;
/// Upload ceiling concurrency scale, pinned by "average upload speed is
/// only ∼0.65 MB/s for 192 VMs and ∼1.25 MB/s for 64 VMs" (§3.1).
pub const BLOB_UL_PERFLOW_BETA: f64 = 9.0;
/// Upload ceiling exponent.
pub const BLOB_UL_PERFLOW_EXP: f64 = 0.75;

/// Base (unloaded) one-way request latency to the storage front end.
pub const BLOB_REQ_LATENCY_S: f64 = 0.004;

// ---------------------------------------------------------------------------
// Table service (paper §3.2, Fig 2)
// ---------------------------------------------------------------------------
// Fig 2 carries no absolute y-values in the text, so single-client rates
// are set to 2009-plausible values; the *shape* anchors are explicit:
// "For both Insert and Query, the performance of the clients decreases as
// we increase the level of concurrency. However ... even with 192
// concurrent clients we have not hit the maximum server throughput."
// "The maximum throughput ... is reached at 8 concurrent clients for the
// Update operation and 128 for the Delete operation."

/// Fixed per-op overhead for a point query (key lookup): RTT + FE + read.
pub const TABLE_QUERY_BASE_S: f64 = 0.016;
/// Load-dependent service growth for queries (s per concurrent client).
pub const TABLE_QUERY_LOAD_S: f64 = 0.00017;

/// Fixed per-op overhead for Insert (adds 3-replica commit over Query).
pub const TABLE_INSERT_BASE_S: f64 = 0.025;
/// Load growth for Insert.
pub const TABLE_INSERT_LOAD_S: f64 = 0.00025;
/// Partition mutation latch hold per insert at 4 kB (caps the partition
/// at ~4000 inserts/s — never reached at 192 clients, per the paper).
pub const TABLE_INSERT_HOLD_S: f64 = 0.00025;

/// Fixed per-op overhead for the unconditional Update.
pub const TABLE_UPDATE_BASE_S: f64 = 0.022;
/// Per-entity write latch hold: every concurrent client updates the SAME
/// entity (§3.2), so this latch is what saturates at ~8 clients.
pub const TABLE_UPDATE_HOLD_S: f64 = 0.0035;
/// Latch hold contention growth scale (hold inflates with waiters).
pub const TABLE_UPDATE_HOLD_NSCALE: f64 = 100.0;

/// Fixed per-op overhead for Delete.
pub const TABLE_DELETE_BASE_S: f64 = 0.025;
/// Load growth for Delete.
pub const TABLE_DELETE_LOAD_S: f64 = 0.00017;
/// Partition index latch hold per delete. Chosen so the latch *binds*
/// near 128 clients (the paper's Delete peak) even though clients spend
/// most of each cycle in the load-dependent station: cap = 1/(hold ×
/// inflation) ≈ 2.6 k ops/s crosses the unsaturated demand curve there,
/// and waiter build-up drives the post-peak decline.
pub const TABLE_DELETE_HOLD_S: f64 = 0.00037;
/// Delete latch contention growth scale.
pub const TABLE_DELETE_HOLD_NSCALE: f64 = 300.0;

/// Entity-size scaling of the partition latch hold within the normal
/// write path: `hold × (kb/4)^TABLE_SIZE_HOLD_EXP`. Mildly sublinear per
/// byte — which is why the paper found 1–16 kB curves "similar".
pub const TABLE_SIZE_HOLD_EXP: f64 = 0.8;

/// Entities above this size leave the inline commit path (single journal
/// record) for a multi-extent write.
pub const TABLE_LARGE_ENTITY_KB: f64 = 32.0;

/// Extra serialized commit cost of the multi-extent path. Pinned by the
/// §3.2 cliff: "For the Insert test on 64 kB entities with 192
/// concurrent clients, only 89 clients successfully finished all 500
/// insert operations, and the other 103 clients have encountered timeout
/// exceptions" (and 94/128 at 128 clients) — at 64 kB the hold is
/// ≈ 0.3 s, so with ≥128 clients the FIFO latch wait straddles the 30 s
/// client timeout: clients queued deep time out and abort, survivors
/// (≈ timeout/hold ≈ 100) finish — matching the paper's ~89–94. At 16 kB
/// and below the penalty is absent, keeping those curves paper-similar.
pub const TABLE_LARGE_COMMIT_S: f64 = 0.30;
/// Per-kB payload transfer cost through the partition server (s/kB).
pub const TABLE_PAYLOAD_S_PER_KB: f64 = 0.00004;

/// Queue length at a mutation latch beyond which the server sheds load
/// with ServerBusy. High enough that the table experiments are governed
/// by the latch-wait-vs-timeout mechanism above; spurious busy episodes
/// for the application study come from `SPURIOUS_BUSY_P` instead.
pub const TABLE_BUSY_QUEUE_LIMIT: usize = 250;

/// Client-side per-operation timeout (the 2009 SDK default was 90 s; the
/// paper's clients saw timeouts — 30 s keeps runs short and matches the
/// SDK's configurable common choice).
pub const CLIENT_OP_TIMEOUT_S: f64 = 30.0;

/// Client SDK retry count for ServerBusy before surfacing an error.
pub const CLIENT_BUSY_RETRIES: u32 = 3;
/// Base backoff between ServerBusy retries (doubles each attempt).
pub const CLIENT_BUSY_BACKOFF_S: f64 = 2.0;

/// Full-partition property-filter scan: per-entity scan cost. "over a
/// half of the 32 concurrent clients got time-out exceptions ... when
/// querying the same table partition – with ∼220,000 entities
/// pre-populated – using property filters" (§6.1): 220 k × 0.13 ms ≈
/// 28.6 s base, so with load inflation and jitter roughly half the
/// concurrent scans cross the 30 s timeout.
pub const TABLE_SCAN_S_PER_ENTITY: f64 = 0.00013;

// ---------------------------------------------------------------------------
// Queue service (paper §3.3, Fig 3; recommendations §6.1)
// ---------------------------------------------------------------------------
// Anchors: "the maximum service-side throughput peaks at 64 concurrent
// clients with 569 and 424 ops/s" (Add, Receive); "Peek ... 3878 ops/s
// for 192 clients compared to 3392 ops/s for 128"; "With 16 or fewer
// writers each client obtained 15–20 ops/s"; ">10 ops/s ... up to 32
// writers".

/// Peek fixed overhead (read-only, any replica): single client ≈ 72 ops/s.
pub const QUEUE_PEEK_BASE_S: f64 = 0.0125;
/// Peek load-dependent growth (pins 3392@128 → 3878@192, still rising).
pub const QUEUE_PEEK_LOAD_S: f64 = 0.000185;

/// Add fixed overhead (3-replica synchronous append): ≈ 19 ops/s alone.
pub const QUEUE_ADD_BASE_S: f64 = 0.052;
/// Add load-dependent growth.
pub const QUEUE_ADD_LOAD_S: f64 = 0.00084;
/// Queue-head mutation latch hold for Add (peak ≈ 569 ops/s at 64).
pub const QUEUE_ADD_HOLD_S: f64 = 0.00139;
/// Add latch contention growth scale (drives the decline past 64).
pub const QUEUE_ADD_HOLD_NSCALE: f64 = 240.0;

/// Receive fixed overhead (sync + visibility assignment; slower than Add
/// per §6.1 "message retrieval was more affected by concurrency").
pub const QUEUE_RECV_BASE_S: f64 = 0.062;
/// Receive load growth.
pub const QUEUE_RECV_LOAD_S: f64 = 0.00095;
/// Receive latch hold (peak ≈ 424 ops/s at 64; the latch must bind a
/// little below the station asymptote, hence the higher hold than a
/// naive 1/424 split would suggest).
pub const QUEUE_RECV_HOLD_S: f64 = 0.00219;
/// Receive latch contention growth scale.
pub const QUEUE_RECV_HOLD_NSCALE: f64 = 240.0;

/// Per-kB payload cost for queue messages (512 B–8 kB all look similar,
/// §3.3 — this term is small by construction).
pub const QUEUE_PAYLOAD_S_PER_KB: f64 = 0.00003;

/// Maximum visibility timeout. "tasks take longer than the maximum
/// visibility timeout value (2 h)" (§5.2).
pub const QUEUE_MAX_VISIBILITY_S: f64 = 2.0 * 3600.0;

/// Default visibility timeout applied by Receive when unspecified (the
/// 2009 API default was 30 s).
pub const QUEUE_DEFAULT_VISIBILITY_S: f64 = 30.0;

// ---------------------------------------------------------------------------
// Reliability injection (paper Table 2 rates are *observed at app level*;
// service-level rates are set so ModisAzure's mix reproduces them).
// The rates themselves live with the fault-injection subsystem
// (`simfault::rates`, with per-constant derivations) and are re-exported
// here so calibration stays a one-stop shop.
// ---------------------------------------------------------------------------

pub use simfault::rates::{
    BLOB_CORRUPT_READ_P, BLOB_READ_FAIL_P, CONNECTION_FAIL_P, INTERNAL_ERROR_P, SPURIOUS_BUSY_P,
};

/// Jitter applied multiplicatively to service times (lognormal sigma).
pub const SERVICE_JITTER_SIGMA: f64 = 0.18;

#[cfg(test)]
mod tests {
    use super::*;

    /// Closed-form sanity of the Fig 1 calibration: the per-flow ceiling
    /// at 32 clients is about half its single-flow value.
    #[test]
    fn blob_download_ceiling_halves_at_32() {
        let cap = |n: f64| {
            BLOB_DL_PERFLOW_BASE / (1.0 + (n / BLOB_DL_PERFLOW_BETA).powf(BLOB_DL_PERFLOW_EXP))
        };
        let ratio = cap(32.0) / cap(1.0);
        assert!((ratio - 0.5).abs() < 0.07, "ratio={ratio}");
    }

    /// Upload anchors: ~1.25 MB/s at 64 clients, ~0.65 MB/s at 192.
    #[test]
    fn blob_upload_ceiling_hits_paper_points() {
        let cap = |n: f64| {
            BLOB_UL_PERFLOW_BASE / (1.0 + (n / BLOB_UL_PERFLOW_BETA).powf(BLOB_UL_PERFLOW_EXP))
        };
        let at64 = cap(64.0) / MB;
        let at192 = cap(192.0) / MB;
        assert!((at64 - 1.25).abs() < 0.25, "at64={at64}");
        assert!((at192 - 0.65).abs() < 0.15, "at192={at192}");
        // Aggregate at 192 must sit just under the 125 MB/s ingest pipe.
        assert!(at192 * 192.0 <= 125.0 + 1.0, "aggregate={}", at192 * 192.0);
        assert!(at192 * 192.0 > 110.0);
    }

    /// Queue Peek closed form: service-side throughput still rising from
    /// 128 to 192 clients, near the paper's 3392 → 3878 ops/s.
    #[test]
    fn queue_peek_throughput_anchors() {
        let agg = |n: f64| n / (QUEUE_PEEK_BASE_S + QUEUE_PEEK_LOAD_S * n);
        let a128 = agg(128.0);
        let a192 = agg(192.0);
        assert!(a192 > a128, "peek must still be rising at 192");
        assert!((a128 - 3392.0).abs() / 3392.0 < 0.08, "a128={a128}");
        assert!((a192 - 3878.0).abs() / 3878.0 < 0.08, "a192={a192}");
    }

    /// Queue Add: unconstrained demand crosses the latch cap near 64
    /// clients (the observed peak), and the cap at 64 is ≈ 569 ops/s.
    #[test]
    fn queue_add_peak_is_near_64_clients() {
        let unsat = |n: f64| n / (QUEUE_ADD_BASE_S + QUEUE_ADD_LOAD_S * n);
        let cap = |n: f64| 1.0 / (QUEUE_ADD_HOLD_S * (1.0 + n / QUEUE_ADD_HOLD_NSCALE));
        // Below the peak demand is under the cap; above, over.
        assert!(unsat(32.0) < cap(32.0));
        assert!(unsat(96.0) > cap(96.0));
        let peak = cap(64.0);
        assert!((peak - 569.0).abs() / 569.0 < 0.10, "peak={peak}");
        // Decline after the peak.
        assert!(cap(192.0) < cap(64.0));
        // Per-client anchors from §6.1.
        let pc16 = 1.0 / (QUEUE_ADD_BASE_S + QUEUE_ADD_LOAD_S * 16.0);
        let pc32 = 1.0 / (QUEUE_ADD_BASE_S + QUEUE_ADD_LOAD_S * 32.0);
        assert!((14.0..21.0).contains(&pc16), "pc16={pc16}");
        assert!(pc32 > 10.0, "pc32={pc32}");
    }

    /// Table Update: the per-entity latch saturates around 8 clients.
    #[test]
    fn table_update_peak_is_near_8_clients() {
        let unsat = |n: f64| n / (TABLE_UPDATE_BASE_S + 0.0);
        let cap = |n: f64| 1.0 / (TABLE_UPDATE_HOLD_S * (1.0 + n / TABLE_UPDATE_HOLD_NSCALE));
        assert!(unsat(4.0) < cap(4.0), "update saturated too early");
        assert!(unsat(16.0) > cap(16.0), "update saturates too late");
    }

    /// Property-filter scan over the pre-populated ~220 k-entity
    /// partition sits just under the client timeout, so load inflation
    /// plus jitter pushes roughly half of the concurrent scans over it.
    #[test]
    fn property_scan_straddles_timeout() {
        let scan = 220_000.0 * TABLE_SCAN_S_PER_ENTITY;
        assert!(
            scan > 0.80 * CLIENT_OP_TIMEOUT_S && scan < CLIENT_OP_TIMEOUT_S,
            "scan={scan}s vs timeout={CLIENT_OP_TIMEOUT_S}s"
        );
    }
}
