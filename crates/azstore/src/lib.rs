//! # azstore — a simulated Windows Azure storage stamp
//!
//! The storage substrate of the reproduction of *Early observations on
//! the performance of Windows Azure* (HPDC'10). One
//! [`StorageStamp`] hosts the three services the paper benchmarks:
//!
//! * [`blob`] — containers/blobs with fluid-flow payload transfers
//!   through calibrated pipes (Fig 1's bandwidth-vs-concurrency curves);
//! * [`table`] — schemaless entities with key-only indexing, per-entity
//!   and per-partition write latches (Fig 2's Insert/Query/Update/Delete
//!   scaling and the 64 kB timeout cliff);
//! * [`queue`] — visibility-timeout message queues with replica-sync
//!   mutation costs (Fig 3's Add/Peek/Receive scaling and §5.2's retry
//!   semantics).
//!
//! Each VM gets clients via [`StorageStamp::attach_client`], which also
//! instantiates the VM's storage-bandwidth throttle (13 MB/s for a 2009
//! small instance). All calibration constants live in [`calib`] with the
//! paper sentence they come from; [`stamp::FaultProfile`] switches the
//! Table 2 reliability injection on for application studies.
//!
//! ## Example
//! ```
//! use simcore::prelude::*;
//! use azstore::{StampConfig, StorageStamp};
//!
//! let sim = Sim::new(42);
//! let stamp = StorageStamp::standalone(&sim, StampConfig::default());
//! stamp.blob_service().seed("data", "input", 50.0e6); // a 50 MB blob
//! let client = stamp.attach_small_client();
//! let h = sim.spawn(async move {
//!     client.blob.get("data", "input").await.unwrap()
//! });
//! sim.run();
//! let dl = h.try_take().unwrap();
//! // A lone small instance downloads at ~13 MB/s.
//! assert!(dl.rate_bps() > 10.0e6);
//! ```

#![warn(missing_docs)]

pub mod admit;
pub mod blob;
pub mod calib;
pub mod error;
pub mod queue;
pub mod stamp;
pub mod station;
pub mod table;

pub use admit::{AdmissionConfig, AdmissionPolicy, DoorObs, FrontDoor};
pub use blob::{BlobClient, BlobService, DownloadStats};
pub use error::{Result, StorageError};
pub use queue::{Message, PopReceipt, QueueClient, QueueService, ReceivedMessage};
pub use stamp::{FaultProfile, StampConfig, StorageAccountClient, StorageStamp};
pub use station::CapacityScale;
pub use table::{Entity, PropValue, TableClient, TableService};

/// Tag a storage-layer span with its outcome ("ok" or the error's paper
/// label). No-op when the span is not recording.
pub(crate) fn trace_outcome<T>(sp: &simtrace::Span, res: &Result<T>) {
    if sp.is_recording() {
        match res {
            Ok(_) => sp.attr("outcome", "ok"),
            Err(e) => sp.attr("outcome", e),
        }
    }
}

/// Apply any active front-end fault episode (simfault `FrontendStorm`)
/// to the current operation: stall, then maybe fail with an internal
/// error. A single flag read when no injector is installed.
pub(crate) async fn injected_frontend_fault(sim: &simcore::Sim) -> Result<()> {
    if let Some(f) = simfault::frontend_fault(sim.now().as_secs_f64()) {
        if f.stall_s > 0.0 {
            sim.delay(simcore::SimDuration::from_secs_f64(f.stall_s))
                .await;
        }
        if f.error {
            return Err(StorageError::Internal);
        }
    }
    Ok(())
}

/// Apply any active partition-server reassignment episode (simfault
/// `PartitionStall`) before a mutation commit.
pub(crate) async fn injected_commit_stall(sim: &simcore::Sim) {
    if let Some(stall_s) = simfault::partition_stall(sim.now().as_secs_f64()) {
        sim.delay(simcore::SimDuration::from_secs_f64(stall_s))
            .await;
    }
}
