//! The blob service (paper §3.1, Fig 1).
//!
//! Blobs are modelled by size: payload *content* never exists, but every
//! byte is accounted for as a fluid flow through the calibrated pipes —
//! shared single-blob egress (3 × 1 GigE replicas ⇒ ~400 MB/s,
//! degrading past 128 readers), the front-end per-flow ceiling (RTT
//! inflation under concurrency; halves by ~32 clients), the ~125 MB/s
//! ingest pipe, and the requesting VM's own storage-bandwidth throttle.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dcnet::{LinkId, Network};
use simcore::prelude::*;

use simfault::RetryPolicy;
use simtrace::Layer;

use crate::calib;
use crate::error::{Result, StorageError};
use crate::stamp::{BlobLinks, StampConfig};
use crate::station::jitter;
use crate::trace_outcome;

/// Metadata of one stored blob.
#[derive(Debug, Clone)]
pub struct BlobMeta {
    /// Payload size in bytes.
    pub size: f64,
    /// Creation time.
    pub created: SimTime,
    /// Write-generation tag (changes on overwrite).
    pub etag: u64,
}

/// Outcome of a completed download.
#[derive(Debug, Clone, Copy)]
pub struct DownloadStats {
    /// Bytes received.
    pub bytes: f64,
    /// Total operation time (request + transfer).
    pub elapsed: SimDuration,
}

impl DownloadStats {
    /// Average goodput in bytes/s.
    pub fn rate_bps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            f64::INFINITY
        } else {
            self.bytes / s
        }
    }
}

struct BlobState {
    // container -> name -> meta
    containers: HashMap<String, HashMap<String, BlobMeta>>,
    next_etag: u64,
}

/// Server-side blob service.
pub struct BlobService {
    sim: Sim,
    net: Network,
    links: BlobLinks,
    cfg: StampConfig,
    state: RefCell<BlobState>,
    // Per-blob read pipes: the paper's ~400 MB/s ceiling is "against a
    // single blob" (three replicas of THAT blob), and the per-flow
    // front-end ceiling is that blob's partition server inflating RTTs
    // under load. Different blobs live on different replica sets and
    // partition servers — which is exactly why §6.1 recommends
    // replicating hot data across blobs.
    egress_links: RefCell<HashMap<(String, String), (LinkId, LinkId)>>,
    rng: RefCell<SimRng>,
    gets: std::cell::Cell<u64>,
    puts: std::cell::Cell<u64>,
    door: Option<Rc<crate::admit::FrontDoor>>,
}

impl BlobService {
    pub(crate) fn new(sim: &Sim, net: &Network, links: BlobLinks, cfg: &StampConfig) -> Rc<Self> {
        Rc::new(BlobService {
            sim: sim.clone(),
            net: net.clone(),
            links,
            cfg: cfg.clone(),
            state: RefCell::new(BlobState {
                containers: HashMap::new(),
                next_etag: 1,
            }),
            egress_links: RefCell::new(HashMap::new()),
            rng: RefCell::new(sim.rng(&cfg.scoped("blob.service"))),
            gets: std::cell::Cell::new(0),
            puts: std::cell::Cell::new(0),
            door: crate::admit::FrontDoor::build(sim, &cfg.admission),
        })
    }

    /// The service's admission gate, when one is configured.
    pub fn front_door(&self) -> Option<&Rc<crate::admit::FrontDoor>> {
        self.door.as_ref()
    }

    /// Front-door admission check (no-op `Ok(None)` when admission is
    /// off). Runs synchronously at op entry, before any await.
    fn admit(&self) -> Result<Option<crate::admit::AdmitPermit>> {
        match &self.door {
            Some(d) => d.admit().map(Some),
            None => Ok(None),
        }
    }

    /// Total GETs served (statistic).
    pub fn gets(&self) -> u64 {
        self.gets.get()
    }

    /// Total PUTs served.
    pub fn puts(&self) -> u64 {
        self.puts.get()
    }

    /// Directly seed a blob without timing (test/bootstrap fixture).
    pub fn seed(&self, container: &str, name: &str, size: f64) {
        let mut st = self.state.borrow_mut();
        let etag = st.next_etag;
        st.next_etag += 1;
        st.containers
            .entry(container.to_string())
            .or_default()
            .insert(
                name.to_string(),
                BlobMeta {
                    size,
                    created: self.sim.now(),
                    etag,
                },
            );
    }

    /// Number of blobs in a container.
    pub fn container_len(&self, container: &str) -> usize {
        self.state
            .borrow()
            .containers
            .get(container)
            .map_or(0, |c| c.len())
    }

    fn lookup(&self, container: &str, name: &str) -> Option<BlobMeta> {
        self.state
            .borrow()
            .containers
            .get(container)
            .and_then(|c| c.get(name))
            .cloned()
    }

    /// The replica-set egress pipe and partition-server front-end of one
    /// blob (created on first use).
    fn read_pipes_of(&self, container: &str, name: &str) -> (LinkId, LinkId) {
        let key = (container.to_string(), name.to_string());
        if let Some(&pair) = self.egress_links.borrow().get(&key) {
            return pair;
        }
        let egress = self.net.add_link(
            format!("blob.egress/{container}/{name}"),
            dcnet::LinkModel::SharedDegrading {
                capacity: calib::BLOB_EGRESS_BPS,
                knee: calib::BLOB_EGRESS_KNEE,
                gamma: calib::BLOB_EGRESS_GAMMA,
            },
        );
        let beta = if self.cfg.ablate_no_frontend_ceiling {
            1.0e12 // effectively flat: no RTT inflation with concurrency
        } else {
            calib::BLOB_DL_PERFLOW_BETA
        };
        let frontend = self.net.add_link(
            format!("blob.fe/{container}/{name}"),
            dcnet::LinkModel::PerFlow {
                base: calib::BLOB_DL_PERFLOW_BASE,
                beta,
                exponent: calib::BLOB_DL_PERFLOW_EXP,
            },
        );
        self.egress_links
            .borrow_mut()
            .insert(key, (egress, frontend));
        (egress, frontend)
    }

    fn fault_check(&self, p: f64) -> bool {
        self.cfg.faults.enabled && self.rng.borrow_mut().chance(p)
    }

    /// Connection-level fault draw, in `RetryPolicy` precheck form.
    fn connection_precheck(&self) -> Option<StorageError> {
        if self.fault_check(self.cfg.faults.connection_fail_p) {
            Some(StorageError::ConnectionFailed)
        } else {
            None
        }
    }

    /// GET-path fault draws (connection, spurious busy, internal), in
    /// the original short-circuit order.
    fn get_precheck(&self) -> Option<StorageError> {
        if self.fault_check(self.cfg.faults.connection_fail_p) {
            Some(StorageError::ConnectionFailed)
        } else if self.fault_check(self.cfg.faults.spurious_busy_p) {
            Some(StorageError::ServerBusy)
        } else if self.fault_check(self.cfg.faults.internal_error_p) {
            Some(StorageError::Internal)
        } else {
            None
        }
    }

    /// PUT-path fault draws (connection, spurious busy).
    fn put_precheck(&self) -> Option<StorageError> {
        if self.fault_check(self.cfg.faults.connection_fail_p) {
            Some(StorageError::ConnectionFailed)
        } else if self.fault_check(self.cfg.faults.spurious_busy_p) {
            Some(StorageError::ServerBusy)
        } else {
            None
        }
    }

    /// Blob transfers had no automatic retry or client timeout in the
    /// 2009 SDK (an 80 s gigablob download is not a hung op), so the
    /// policy is a bare single attempt — the precheck is its whole job.
    fn op_policy(&self) -> RetryPolicy {
        RetryPolicy::none()
    }

    async fn request_overhead(&self) {
        let s =
            calib::BLOB_REQ_LATENCY_S * jitter(&mut self.rng.borrow_mut(), self.cfg.jitter_sigma);
        self.sim.delay(SimDuration::from_secs_f64(s)).await;
    }
}

/// Per-VM blob client.
pub struct BlobClient {
    svc: Rc<BlobService>,
    /// The VM's storage-download throttle link.
    ingress: LinkId,
    /// The VM's storage-upload throttle link.
    egress: LinkId,
    client_id: u64,
}

impl BlobClient {
    pub(crate) fn new(
        svc: &Rc<BlobService>,
        ingress: LinkId,
        egress: LinkId,
        client_id: u64,
    ) -> Self {
        BlobClient {
            svc: Rc::clone(svc),
            ingress,
            egress,
            client_id,
        }
    }

    /// This client's download throttle link (tests).
    pub fn ingress_link(&self) -> LinkId {
        self.ingress
    }

    /// Download a blob; bytes flow through
    /// `[blob egress → download front-end → VM throttle]`.
    pub async fn get(&self, container: &str, name: &str) -> Result<DownloadStats> {
        let sp = simtrace::span(Layer::Store, "blob.get", || format!("{container}/{name}"));
        let res = self.get_traced(&sp, container, name).await;
        trace_outcome(&sp, &res);
        res
    }

    async fn get_traced(
        &self,
        sp: &simtrace::Span,
        container: &str,
        name: &str,
    ) -> Result<DownloadStats> {
        let svc = &self.svc;
        let op = async {
            // Data-path ops pass the front door; metadata ops
            // (exists/list/delete) are cheap enough to stay ungated.
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let fe = sp.child("frontend", || "request".into());
            svc.request_overhead().await;
            fe.end();
            let meta = svc.lookup(container, name).ok_or(StorageError::NotFound)?;
            if sp.is_recording() {
                sp.attr("bytes", format!("{:.0}", meta.size));
            }
            if svc.fault_check(svc.cfg.faults.read_fail_p) {
                // Abort partway: some bytes moved, time was spent.
                let frac = svc.rng.borrow_mut().f64() * 0.8 + 0.1;
                let (egress, frontend) = svc.read_pipes_of(container, name);
                let path = [egress, frontend, self.ingress];
                let st = sp.child("stream", || "replica_egress".into());
                svc.net
                    .transfer(&path, meta.size * frac, f64::INFINITY)
                    .await;
                st.end();
                return Err(StorageError::ReadFailed);
            }
            let started = svc.sim.now();
            let (egress, frontend) = svc.read_pipes_of(container, name);
            let path = [egress, frontend, self.ingress];
            let st = sp.child("stream", || "replica_egress".into());
            let stats = svc.net.transfer(&path, meta.size, f64::INFINITY).await;
            st.end();
            svc.gets.set(svc.gets.get() + 1);
            if svc.fault_check(svc.cfg.faults.corrupt_read_p) {
                return Err(StorageError::CorruptRead);
            }
            Ok(DownloadStats {
                bytes: stats.bytes,
                elapsed: svc.sim.now() - started
                    + SimDuration::from_secs_f64(calib::BLOB_REQ_LATENCY_S),
            })
        };
        svc.op_policy()
            .run_once(
                &svc.sim,
                || svc.get_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await
    }

    /// Upload (create or overwrite); bytes flow through
    /// `[VM throttle → upload front-end → ingest]`.
    pub async fn put(&self, container: &str, name: &str, size: f64) -> Result<DownloadStats> {
        self.put_inner(container, name, size, true).await
    }

    /// Upload only if the blob does not exist yet; the ModisAzure
    /// create-if-absent idiom whose failure mode is the paper's
    /// "Blob already exists".
    pub async fn put_new(&self, container: &str, name: &str, size: f64) -> Result<DownloadStats> {
        self.put_inner(container, name, size, false).await
    }

    async fn put_inner(
        &self,
        container: &str,
        name: &str,
        size: f64,
        overwrite: bool,
    ) -> Result<DownloadStats> {
        let sp = simtrace::span(
            Layer::Store,
            if overwrite {
                "blob.put"
            } else {
                "blob.put_new"
            },
            || format!("{container}/{name}"),
        );
        if sp.is_recording() {
            sp.attr("bytes", format!("{size:.0}"));
        }
        let res = self.put_traced(&sp, container, name, size, overwrite).await;
        trace_outcome(&sp, &res);
        res
    }

    async fn put_traced(
        &self,
        sp: &simtrace::Span,
        container: &str,
        name: &str,
        size: f64,
        overwrite: bool,
    ) -> Result<DownloadStats> {
        let svc = &self.svc;
        let op = async {
            // Data-path ops pass the front door; metadata ops
            // (exists/list/delete) are cheap enough to stay ungated.
            let _admit = svc.admit()?;
            crate::injected_frontend_fault(&svc.sim).await?;
            let fe = sp.child("frontend", || "request".into());
            svc.request_overhead().await;
            fe.end();
            if !overwrite && svc.lookup(container, name).is_some() {
                return Err(StorageError::AlreadyExists);
            }
            let started = svc.sim.now();
            let path = [self.egress, svc.links.ul_frontend, svc.links.ingest];
            let st = sp.child("stream", || "replica_ingest".into());
            let stats = svc.net.transfer(&path, size, f64::INFINITY).await;
            st.end();
            // Commit after the data is durable on all three replicas.
            let cm = sp.child("partition.commit", || "replica_commit".into());
            svc.request_overhead().await;
            cm.end();
            if !overwrite && svc.lookup(container, name).is_some() {
                // Raced with another writer while uploading.
                return Err(StorageError::AlreadyExists);
            }
            svc.seed(container, name, size);
            svc.puts.set(svc.puts.get() + 1);
            let _ = self.client_id;
            Ok(DownloadStats {
                bytes: stats.bytes,
                elapsed: svc.sim.now() - started,
            })
        };
        svc.op_policy()
            .run_once(
                &svc.sim,
                || svc.put_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await
    }

    /// Metadata-only existence probe (no payload movement).
    pub async fn exists(&self, container: &str, name: &str) -> Result<bool> {
        let svc = &self.svc;
        let op = async {
            crate::injected_frontend_fault(&svc.sim).await?;
            svc.request_overhead().await;
            Ok(svc.lookup(container, name).is_some())
        };
        svc.op_policy()
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await
    }

    /// Metadata of a blob without downloading it (HEAD).
    pub async fn get_metadata(&self, container: &str, name: &str) -> Result<BlobMeta> {
        let svc = &self.svc;
        let op = async {
            crate::injected_frontend_fault(&svc.sim).await?;
            svc.request_overhead().await;
            svc.lookup(container, name).ok_or(StorageError::NotFound)
        };
        svc.op_policy()
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await
    }

    /// List blobs in a container, optionally under a name prefix, capped
    /// at the API's 5000-result page. Results are name-ordered.
    pub async fn list(
        &self,
        container: &str,
        prefix: &str,
        limit: usize,
    ) -> Result<Vec<(String, BlobMeta)>> {
        let sp = simtrace::span(Layer::Store, "blob.list", || {
            format!("{container}/{prefix}*")
        });
        let svc = &self.svc;
        let limit = limit.clamp(1, 5000);
        let op = async {
            crate::injected_frontend_fault(&svc.sim).await?;
            svc.request_overhead().await;
            let mut out: Vec<(String, BlobMeta)> = svc
                .state
                .borrow()
                .containers
                .get(container)
                .map(|c| {
                    c.iter()
                        .filter(|(n, _)| n.starts_with(prefix))
                        .map(|(n, m)| (n.clone(), m.clone()))
                        .collect()
                })
                .unwrap_or_default();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out.truncate(limit);
            // Per-page enumeration cost (the listing walks the index).
            let extra = out.len() as f64 * 2.0e-5;
            svc.sim.delay(SimDuration::from_secs_f64(extra)).await;
            Ok(out)
        };
        let res = svc
            .op_policy()
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await;
        if sp.is_recording() {
            if let Ok(out) = &res {
                sp.attr("hits", out.len());
            }
        }
        trace_outcome(&sp, &res);
        res
    }

    /// Delete a blob (metadata op).
    pub async fn delete(&self, container: &str, name: &str) -> Result<()> {
        let sp = simtrace::span(Layer::Store, "blob.delete", || {
            format!("{container}/{name}")
        });
        let svc = &self.svc;
        let op = async {
            crate::injected_frontend_fault(&svc.sim).await?;
            svc.request_overhead().await;
            let mut st = svc.state.borrow_mut();
            match st
                .containers
                .get_mut(container)
                .and_then(|c| c.remove(name))
            {
                Some(_) => Ok(()),
                None => Err(StorageError::NotFound),
            }
        };
        let res = svc
            .op_policy()
            .run_once(
                &svc.sim,
                || svc.connection_precheck(),
                op,
                || StorageError::Timeout,
            )
            .await;
        trace_outcome(&sp, &res);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp::{StampConfig, StorageStamp};

    fn setup(seed: u64) -> (Sim, Rc<StorageStamp>) {
        let sim = Sim::new(seed);
        let stamp = StorageStamp::standalone(&sim, StampConfig::default());
        (sim, stamp)
    }

    #[test]
    fn put_then_get_roundtrip() {
        let (sim, stamp) = setup(1);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            c.blob.put("data", "x", 1.0e6).await.unwrap();
            c.blob.get("data", "x").await.unwrap()
        });
        sim.run();
        let dl = h.try_take().unwrap();
        assert_eq!(dl.bytes, 1.0e6);
        assert!(dl.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn get_missing_blob_is_not_found() {
        let (sim, stamp) = setup(2);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move { c.blob.get("data", "absent").await });
        sim.run();
        assert_eq!(h.try_take().unwrap().unwrap_err(), StorageError::NotFound);
    }

    #[test]
    fn put_new_conflicts_on_existing() {
        let (sim, stamp) = setup(3);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            c.blob.put_new("data", "x", 100.0).await.unwrap();
            c.blob.put_new("data", "x", 100.0).await
        });
        sim.run();
        assert_eq!(
            h.try_take().unwrap().unwrap_err(),
            StorageError::AlreadyExists
        );
    }

    #[test]
    fn single_client_download_near_13_mbps() {
        // Fig 1 anchor: one small-instance client downloads at ≈ 13 MB/s
        // (its per-VM storage allocation).
        let (sim, stamp) = setup(4);
        stamp.blob_service().seed("bench", "gig", 1.0e9);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move { c.blob.get("bench", "gig").await.unwrap() });
        sim.run();
        let rate = h.try_take().unwrap().rate_bps() / 1.0e6;
        assert!((11.0..13.2).contains(&rate), "rate={rate} MB/s");
    }

    #[test]
    fn thirty_two_clients_halve_per_client_bandwidth() {
        // Fig 1 anchor: "The bandwidth for 32 concurrent clients is half
        // of the bandwidth that a single client achieves."
        let (sim, stamp) = setup(5);
        stamp.blob_service().seed("bench", "gig", 200.0e6);
        let rates: Rc<RefCell<Vec<f64>>> = Rc::default();
        for _ in 0..32 {
            let c = stamp.attach_small_client();
            let r = rates.clone();
            sim.spawn(async move {
                let dl = c.blob.get("bench", "gig").await.unwrap();
                r.borrow_mut().push(dl.rate_bps() / 1.0e6);
            });
        }
        sim.run();
        let rates = rates.borrow();
        let mean: f64 = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!((5.2..7.8).contains(&mean), "mean per-client={mean} MB/s");
    }

    #[test]
    fn upload_rate_alone() {
        let (sim, stamp) = setup(7);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move { c.blob.put("up", "x", 50.0e6).await.unwrap() });
        sim.run();
        let stats = h.try_take().unwrap();
        let rate = stats.bytes / stats.elapsed.as_secs_f64() / 1.0e6;
        // "similar curve shape to the download but at about half the
        // bandwidth": single uploader ≈ 5–7 MB/s.
        assert!((4.5..7.5).contains(&rate), "rate={rate} MB/s");
    }

    #[test]
    fn exists_and_delete() {
        let (sim, stamp) = setup(8);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            assert!(!c.blob.exists("d", "x").await.unwrap());
            c.blob.put("d", "x", 10.0).await.unwrap();
            assert!(c.blob.exists("d", "x").await.unwrap());
            c.blob.delete("d", "x").await.unwrap();
            assert!(!c.blob.exists("d", "x").await.unwrap());
            c.blob.delete("d", "x").await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap().unwrap_err(), StorageError::NotFound);
    }

    #[test]
    fn metadata_and_listing() {
        let (sim, stamp) = setup(10);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            for (name, size) in [("a/1", 100.0), ("a/2", 200.0), ("b/1", 300.0)] {
                c.blob.put("d", name, size).await.unwrap();
            }
            let meta = c.blob.get_metadata("d", "a/2").await.unwrap();
            let under_a = c.blob.list("d", "a/", 100).await.unwrap();
            let all = c.blob.list("d", "", 100).await.unwrap();
            let page = c.blob.list("d", "", 2).await.unwrap();
            let missing = c.blob.get_metadata("d", "zzz").await;
            (
                meta.size,
                under_a.len(),
                all.len(),
                page.len(),
                missing.is_err(),
            )
        });
        sim.run();
        let (size, under_a, all, page, missing) = h.try_take().unwrap();
        assert_eq!(size, 200.0);
        assert_eq!(under_a, 2);
        assert_eq!(all, 3);
        assert_eq!(page, 2);
        assert!(missing);
    }

    #[test]
    fn listing_is_name_ordered() {
        let (sim, stamp) = setup(11);
        for name in ["zeta", "alpha", "mid"] {
            stamp.blob_service().seed("d", name, 1.0);
        }
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move { c.blob.list("d", "", 10).await.unwrap() });
        sim.run();
        let names: Vec<String> = h.try_take().unwrap().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn fault_injection_produces_failures_at_scale() {
        let sim = Sim::new(9);
        let mut cfg = StampConfig::default();
        cfg.faults = crate::stamp::FaultProfile::production();
        // Crank rates so a small run must observe failures.
        cfg.faults.corrupt_read_p = 0.2;
        cfg.faults.connection_fail_p = 0.1;
        let stamp = StorageStamp::standalone(&sim, cfg);
        stamp.blob_service().seed("d", "x", 1000.0);
        let c = stamp.attach_small_client();
        let h = sim.spawn(async move {
            let mut errs = 0;
            for _ in 0..200 {
                if c.blob.get("d", "x").await.is_err() {
                    errs += 1;
                }
            }
            errs
        });
        sim.run();
        let errs: i32 = h.try_take().unwrap();
        assert!(errs > 20, "expected many injected failures, got {errs}");
    }

    use std::cell::RefCell;
}
