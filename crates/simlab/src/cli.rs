//! Shared flag parsing for the regeneration binaries.
//!
//! The pre-simlab binaries scanned `std::env::args()` ad hoc: `--trace`
//! with a missing path silently disabled tracing, and `--shards` did
//! not exist. Here every malformed flag is a hard usage error — parse
//! errors exit with status 2 after printing the binary's usage line.

use std::path::PathBuf;

use simfault::FaultPlan;

/// Parsed command line of a regeneration binary.
#[derive(Debug, Default)]
pub struct Flags {
    /// `--quick`: scaled-down campaign.
    pub quick: bool,
    /// `--shards N`: worker shards (`None` = pick a default).
    pub shards: Option<usize>,
    /// `--faults <preset>`: fault plan for every cell.
    pub faults: Option<FaultPlan>,
    /// `--trace <path>`: Chrome trace of the representative cell.
    pub trace: Option<PathBuf>,
    /// `--out <path>`: output file override (used by `azlab bench`).
    pub out: Option<PathBuf>,
    /// `--tau <seconds>`: bounded-staleness bound override for the
    /// consistency campaign. Validated here — τ ≤ 0 (an empty
    /// consistency guarantee) is a usage error, not a config to run.
    pub tau: Option<f64>,
    /// `--list`: enumerate the known targets instead of running.
    pub list: bool,
    /// Positional words (subcommand + target for `azlab`).
    pub words: Vec<String>,
}

/// Parse an argument list (without the program name).
///
/// `--flag value` and `--flag=value` are both accepted; any other
/// dash-prefixed argument (including single-dash typos like `-quick`
/// and near-misses like `--sharsd`) is a hard error rather than a
/// positional word.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Flags, String> {
    let mut flags = Flags::default();
    // Rewrite `--flag=value` to `--flag value` so both spellings share
    // one code path.
    let mut split = Vec::new();
    for a in args {
        match a.split_once('=') {
            Some((f, v)) if f.starts_with("--") => {
                split.push(f.to_string());
                split.push(v.to_string());
            }
            _ => split.push(a),
        }
    }
    let mut it = split.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => flags.quick = true,
            "--list" => flags.list = true,
            "--shards" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--shards: missing value".to_string())?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--shards {v:?}: expected a positive integer"))?;
                if n == 0 {
                    return Err("--shards 0: shard count must be >= 1".to_string());
                }
                flags.shards = Some(n);
            }
            "--faults" => {
                let name = it
                    .next()
                    .ok_or_else(|| "--faults: missing preset name".to_string())?;
                flags.faults = Some(FaultPlan::by_name(&name).ok_or_else(|| {
                    format!(
                        "--faults {name:?}: unknown preset (expected one of: {})",
                        FaultPlan::PRESETS.join(", ")
                    )
                })?);
            }
            "--trace" => {
                let p = it
                    .next()
                    .ok_or_else(|| "--trace: missing output path".to_string())?;
                if p.starts_with("--") {
                    return Err(format!("--trace: missing output path (got flag {p:?})"));
                }
                flags.trace = Some(PathBuf::from(p));
            }
            "--out" => {
                let p = it
                    .next()
                    .ok_or_else(|| "--out: missing output path".to_string())?;
                flags.out = Some(PathBuf::from(p));
            }
            "--tau" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--tau: missing value (seconds)".to_string())?;
                let tau: f64 = v
                    .parse()
                    .map_err(|_| format!("--tau {v:?}: expected a number of seconds"))?;
                if !tau.is_finite() || tau <= 0.0 {
                    return Err(format!(
                        "--tau {v}: staleness bound must be a finite positive number of seconds"
                    ));
                }
                flags.tau = Some(tau);
            }
            other if other.starts_with('-') && other.len() > 1 => {
                return Err(format!("unknown flag {other:?}"));
            }
            word => flags.words.push(word.to_string()),
        }
    }
    Ok(flags)
}

/// Parse the process's arguments; on error print the message plus
/// `usage` to stderr and exit with status 2.
pub fn parse_or_exit(usage: &str) -> Flags {
    match parse(std::env::args().skip(1)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: {usage}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Flags, String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn happy_path() {
        let f = p(&[
            "run", "all", "--quick", "--shards", "4", "--faults", "paper", "--trace", "t.json",
        ])
        .unwrap();
        assert_eq!(f.words, vec!["run", "all"]);
        assert!(f.quick);
        assert_eq!(f.shards, Some(4));
        assert_eq!(f.faults.as_ref().unwrap().name, "paper");
        assert_eq!(f.trace.as_deref(), Some(std::path::Path::new("t.json")));
    }

    #[test]
    fn shards_rejects_zero_and_garbage() {
        assert!(p(&["--shards", "0"]).unwrap_err().contains("--shards 0"));
        assert!(p(&["--shards", "four"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(p(&["--shards"]).unwrap_err().contains("missing value"));
    }

    #[test]
    fn trace_requires_a_path() {
        assert!(p(&["--trace"]).unwrap_err().contains("missing output path"));
        assert!(p(&["--trace", "--quick"]).is_err());
    }

    #[test]
    fn faults_rejects_unknown_presets() {
        let e = p(&["--faults", "bogus"]).unwrap_err();
        assert!(e.contains("unknown preset") && e.contains("crash-partition"));
        assert!(p(&["--faults"]).is_err());
    }

    #[test]
    fn unknown_flags_are_errors() {
        assert!(p(&["--frobnicate"]).unwrap_err().contains("--frobnicate"));
        // A typo'd flag must not silently become a positional word (it
        // used to turn `--sharsd 4` into a bogus subcommand).
        assert!(p(&["run", "all", "--sharsd", "4"])
            .unwrap_err()
            .contains("--sharsd"));
        // Single-dash spellings are errors too, not positional words.
        assert!(p(&["-quick"]).unwrap_err().contains("-quick"));
        assert!(p(&["-q"]).unwrap_err().contains("-q"));
    }

    #[test]
    fn tau_rejects_nonpositive_and_garbage() {
        assert_eq!(p(&["--tau", "2.5"]).unwrap().tau, Some(2.5));
        assert_eq!(p(&["--tau=0.5"]).unwrap().tau, Some(0.5));
        assert!(p(&["--tau", "0"]).unwrap_err().contains("positive"));
        assert!(p(&["--tau", "-3"]).unwrap_err().contains("positive"));
        assert!(p(&["--tau", "inf"]).unwrap_err().contains("finite"));
        assert!(p(&["--tau", "nan"])
            .unwrap_err()
            .contains("finite positive"));
        assert!(p(&["--tau", "soon"]).unwrap_err().contains("number"));
        assert!(p(&["--tau"]).unwrap_err().contains("missing value"));
        assert_eq!(p(&[]).unwrap().tau, None);
    }

    #[test]
    fn equals_form_is_accepted() {
        let f = p(&["--shards=8", "--faults=paper", "--trace=t.json"]).unwrap();
        assert_eq!(f.shards, Some(8));
        assert_eq!(f.faults.as_ref().unwrap().name, "paper");
        assert_eq!(f.trace.as_deref(), Some(std::path::Path::new("t.json")));
        assert!(p(&["--shards=zero"]).unwrap_err().contains("integer"));
        assert!(p(&["--bogus=1"]).unwrap_err().contains("--bogus"));
    }

    #[test]
    fn empty_args_are_fine() {
        let f = p(&[]).unwrap();
        assert!(!f.quick && f.shards.is_none() && f.words.is_empty());
        assert!(!f.list);
    }

    #[test]
    fn list_is_a_bare_flag() {
        let f = p(&["run", "--list"]).unwrap();
        assert!(f.list);
        assert_eq!(f.words, vec!["run"]);
    }
}
