//! The deterministic sharded campaign runner.
//!
//! A campaign is `n` independent *cells*; cell `i` is a pure function of
//! its index (each experiment derives the cell's seed from the index, so
//! the cell's result does not depend on which thread runs it or when).
//! The runner's contract, enforced by `tests/shard_invariance.rs`:
//!
//! 1. **Fixed assignment** — cell `i` runs on shard `i mod N`; each
//!    shard walks its cells in ascending index order.
//! 2. **Canonical merge** — results are slotted by cell index and
//!    returned in order `0..n`, so the merged output is byte-identical
//!    for any `N` (including `N = 1`, the old serial path).
//! 3. **Per-thread installation** — the cell's [`CellCtx`] installs the
//!    `simfault` injector (and, for the traced cell, the `simtrace`
//!    tracer) on the worker thread that runs the cell. Both are
//!    thread-local RAII installs, so `--faults` applies to every sweep
//!    worker — the gap the per-figure binaries used to document.

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Mutex;

use simcore::Sim;
use simfault::FaultPlan;

/// Trace one cell of a campaign: dump a Chrome trace-event file of that
/// cell's first simulation and capture its latency breakdown.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Cell index to trace (cell 0 is the campaign's representative
    /// point — the first parameter-grid entry).
    pub cell: usize,
    /// Chrome trace-event JSON output path.
    pub path: PathBuf,
}

/// How to run a campaign's cells.
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Worker shards (0 or 1 = serial; the assignment contract makes
    /// the merged output identical either way).
    pub shards: usize,
    /// Fault plan installed around every cell's simulations.
    pub faults: Option<FaultPlan>,
    /// Optional trace capture of one cell.
    pub trace: Option<TraceSpec>,
    /// Bounded-staleness bound override (seconds) for campaigns with a
    /// consistency sweep (`--tau`). Pre-validated positive by the CLI.
    pub tau: Option<f64>,
}

impl RunOpts {
    /// Serial, no faults, no trace.
    pub fn serial() -> Self {
        RunOpts::default()
    }
}

/// Merged outcome of a [`run_cells`] call.
#[derive(Debug)]
pub struct RunOutcome<R> {
    /// Cell results in canonical order `0..n`.
    pub cells: Vec<R>,
    /// Latency breakdown + file note of the traced cell, if any.
    pub trace_summary: Option<String>,
}

/// Per-cell execution context, handed to the cell closure. Experiments
/// create their simulations through [`CellCtx::with_sim`] so the fault
/// plan and tracer are installed on whichever thread runs the cell.
pub struct CellCtx<'a> {
    faults: Option<&'a FaultPlan>,
    trace: Option<&'a TraceSpec>,
    /// Arms tracing for the first `with_sim` of the traced cell only
    /// (a cell may run several sims; the first is its representative).
    trace_armed: Cell<bool>,
    trace_out: Option<&'a Mutex<Option<String>>>,
}

impl<'a> CellCtx<'a> {
    /// A context with no fault plan and no tracing — library callers
    /// (the serial `run()` entry points, unit tests) use this; it makes
    /// `with_sim(seed, f)` exactly `f(&Sim::new(seed))`.
    pub fn detached() -> CellCtx<'static> {
        CellCtx {
            faults: None,
            trace: None,
            trace_armed: Cell::new(false),
            trace_out: None,
        }
    }

    fn for_cell(
        idx: usize,
        opts: &'a RunOpts,
        trace_out: &'a Mutex<Option<String>>,
    ) -> CellCtx<'a> {
        let traced = opts.trace.as_ref().is_some_and(|t| t.cell == idx);
        CellCtx {
            faults: opts.faults.as_ref(),
            trace: opts.trace.as_ref().filter(|_| traced),
            trace_armed: Cell::new(traced),
            trace_out: Some(trace_out),
        }
    }

    /// The fault plan this cell runs under, if any. Experiments use it
    /// to derive stamp-level steady-state fault rates; episode faults
    /// flow through the injector [`with_sim`](Self::with_sim) installs.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults
    }

    /// True if this is the campaign's traced cell (`--trace`). Cells
    /// whose measurement is closed-form (no `Sim` at all, e.g. the
    /// Fig 4 latency draws) use this to run a representative simulated
    /// scenario only when a trace was actually requested.
    pub fn is_traced(&self) -> bool {
        self.trace.is_some()
    }

    /// Create a `Sim`, install the cell's fault plan (and tracer, for
    /// the traced cell's first simulation) on the current thread, and
    /// run `f`. The scenario `f` drives the simulation itself —
    /// including `sim.run()` — exactly as the pre-simlab experiment
    /// code did, so a detached context adds nothing to the event
    /// sequence and the output stays byte-identical.
    pub fn with_sim<R>(&self, seed: u64, f: impl FnOnce(&Sim) -> R) -> R {
        let sim = Sim::new(seed);
        let _faults = self.faults.map(|p| simfault::install(&sim, p));
        if self.trace_armed.replace(false) {
            let spec = self.trace.expect("trace spec armed without spec");
            let tracer = simtrace::Tracer::new(&sim);
            let guard = tracer.install();
            let out = f(&sim);
            // Drain anything the scenario left pending before freezing
            // the trace (run() is a no-op on a drained sim).
            sim.run();
            drop(guard);
            let mut summary = format!("\n{}", tracer.latency_breakdown());
            let json = tracer.chrome_trace();
            match std::fs::write(&spec.path, &json) {
                Ok(()) => summary.push_str(&format!(
                    "[trace: {} spans, {} bytes -> {}]\n",
                    tracer.span_count(),
                    json.len(),
                    spec.path.display()
                )),
                Err(e) => summary.push_str(&format!(
                    "trace: failed to write {}: {e}\n",
                    spec.path.display()
                )),
            }
            if let Some(slot) = self.trace_out {
                *slot.lock().unwrap() = Some(summary);
            }
            out
        } else {
            f(&sim)
        }
    }
}

/// Run `n` cells under `opts`, returning results in canonical order.
///
/// Shard `s` (of `N = max(opts.shards, 1)`) runs cells `s, s+N, s+2N,
/// ...` in ascending order on its own OS thread; results stream back
/// over a channel and are slotted by index. With `N = 1` everything
/// runs on one worker thread in index order — the serial path.
pub fn run_cells<R, F>(n: usize, opts: &RunOpts, f: F) -> RunOutcome<R>
where
    R: Send,
    F: Fn(usize, &CellCtx) -> R + Sync,
{
    let shards = opts.shards.max(1).min(n.max(1));
    let trace_out: Mutex<Option<String>> = Mutex::new(None);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let cells = std::thread::scope(|scope| {
        for s in 0..shards {
            let tx = tx.clone();
            let f = &f;
            let opts = &*opts;
            let trace_out = &trace_out;
            scope.spawn(move || {
                let mut i = s;
                while i < n {
                    let ctx = CellCtx::for_cell(i, opts, trace_out);
                    let r = f(i, &ctx);
                    // Receiver outlives all senders inside the scope.
                    let _ = tx.send((i, r));
                    i += shards;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((i, r)) = rx.recv() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("shard dropped a cell result"))
            .collect()
    });
    RunOutcome {
        cells,
        trace_summary: trace_out.into_inner().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_come_back_in_canonical_order() {
        for shards in [1usize, 2, 3, 8, 64] {
            let opts = RunOpts {
                shards,
                ..RunOpts::default()
            };
            let out = run_cells(17, &opts, |i, _| {
                // Stagger completion so arrival order differs.
                std::thread::sleep(std::time::Duration::from_micros(
                    ((17 - i) % 5) as u64 * 200,
                ));
                i * 10
            });
            assert_eq!(out.cells, (0..17).map(|i| i * 10).collect::<Vec<_>>());
            assert!(out.trace_summary.is_none());
        }
    }

    #[test]
    fn zero_cells_is_fine() {
        let out = run_cells(0, &RunOpts::serial(), |i, _| i);
        assert!(out.cells.is_empty());
    }

    #[test]
    fn detached_ctx_is_a_plain_sim() {
        let direct = {
            let sim = Sim::new(42);
            let mut rng = sim.rng("x");
            rng.bits()
        };
        let via_ctx = CellCtx::detached().with_sim(42, |sim| {
            let mut rng = sim.rng("x");
            rng.bits()
        });
        assert_eq!(direct, via_ctx);
    }

    #[test]
    fn fault_plan_reaches_every_cell_thread() {
        let opts = RunOpts {
            shards: 4,
            faults: Some(FaultPlan::crash_partition()),
            ..RunOpts::default()
        };
        let out = run_cells(8, &opts, |i, ctx| {
            assert!(ctx.fault_plan().is_some());
            ctx.with_sim(i as u64, |_sim| {
                // The injector is installed on THIS thread: a query
                // inside the crash window must see the fault.
                simfault::enabled()
            })
        });
        assert!(out.cells.iter().all(|&enabled| enabled));
        // And it is uninstalled once the cell is done.
        assert!(!simfault::enabled());
    }

    #[test]
    fn traced_cell_writes_summary_and_file() {
        let dir = std::env::temp_dir().join("simlab-shard-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cell.trace.json");
        let opts = RunOpts {
            shards: 2,
            trace: Some(TraceSpec {
                cell: 3,
                path: path.clone(),
            }),
            ..RunOpts::default()
        };
        let out = run_cells(6, &opts, |i, ctx| {
            ctx.with_sim(i as u64, |sim| {
                let s = sim.clone();
                sim.spawn(async move {
                    s.delay(simcore::SimDuration::from_secs(1)).await;
                });
                sim.run();
                i
            })
        });
        assert_eq!(out.cells, vec![0, 1, 2, 3, 4, 5]);
        let summary = out.trace_summary.expect("summary captured");
        assert!(summary.contains(&path.display().to_string()));
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }
}
