//! # simlab — experiment orchestration for the reproduction
//!
//! The paper's evaluation is eight independent campaigns (Figs 1–5 and
//! 7, Tables 1–2), each a grid of *cells*: one cell is one deterministic
//! simulation (a `(parameter point, seed)` pair) whose result merges
//! into the campaign's tables, CSVs and anchor checks. Before this crate
//! each regeneration binary carried its own copy of that machinery —
//! sweep loop, ad-hoc statistics, anchor printing — and the thread-local
//! `simfault` injector never reached the sweep worker threads, so
//! `--faults` silently shaped only the traced replay.
//!
//! `simlab` makes orchestration a first-class subsystem:
//!
//! * [`shard`] — the deterministic sharded runner. A campaign's cells
//!   are split across worker threads with a **fixed shard→cell
//!   assignment** (cell `i` runs on shard `i mod N`, each shard walks
//!   its cells in ascending order) and merged back in canonical cell
//!   order, so the merged output is byte-identical for any `--shards N`
//!   — including `N = 1`, which reproduces the old serial path exactly.
//!   Each cell's [`CellCtx`](shard::CellCtx) installs the fault plan
//!   (and, for the traced cell, the tracer) *on the worker thread that
//!   runs the cell*, closing the thread-local gap.
//! * [`stats`] — mergeable streaming statistics: Welford
//!   mean/variance ([`simcore::stats::OnlineStats`]) paired with a
//!   fixed-bucket base-2 logarithmic histogram ([`stats::Log2Hist`])
//!   whose merge is exact integer addition, so percentile summaries of
//!   millions of samples cross shard boundaries without shipping or
//!   sorting sample vectors.
//! * [`anchor`] — declare a paper anchor once, get the OK/OFF report
//!   line, CSV row and manifest entry from the same declaration.
//! * [`manifest`] — the machine-readable `results/manifest.json`
//!   (per-campaign cell counts, wall-clock, anchor verdicts) written by
//!   the `azlab` driver.
//! * [`cli`] — shared flag parsing for the regeneration binaries, with
//!   hard usage errors (exit 2) for malformed `--shards`/`--trace`/
//!   `--faults` values instead of silent defaults.
//!
//! The determinism contract is spelled out in `DESIGN.md` §6 and
//! enforced by `tests/shard_invariance.rs` at the workspace root.

#![warn(missing_docs)]

pub mod anchor;
pub mod cli;
pub mod manifest;
pub mod shard;
pub mod stats;

pub use anchor::AnchorCheck;
pub use cli::Flags;
pub use manifest::{CampaignEntry, Manifest};
pub use shard::{run_cells, CellCtx, RunOpts, RunOutcome, TraceSpec};
pub use stats::{Log2Hist, StreamSummary};
