//! Mergeable streaming statistics.
//!
//! Campaign cells run on different shards and their summaries must merge
//! into exactly the same result regardless of how cells were grouped.
//! Welford mean/variance ([`OnlineStats`]) already merges exactly in
//! that sense; what was missing is a percentile sketch whose merge is
//! also exact. [`Log2Hist`] provides it: a fixed-bucket base-2
//! logarithmic histogram whose buckets are determined by the *bit
//! pattern* of the sample (the IEEE-754 exponent), so bucketing is
//! platform-independent, and whose merge is plain integer addition —
//! associative, commutative, and byte-deterministic.

pub use simcore::stats::OnlineStats;

/// Number of value buckets in a [`Log2Hist`].
pub const LOG2_BUCKETS: usize = 64;

/// Binary exponents are clamped to `[LOG2_MIN_EXP, LOG2_MIN_EXP +
/// LOG2_BUCKETS)`: bucket `k` covers `[2^(k-32), 2^(k-31))`, i.e. from
/// sub-nanosecond (2⁻³²) to ~4 × 10⁹ (2³¹) — wide enough for every
/// latency/duration/throughput quantity in the reproduction.
pub const LOG2_MIN_EXP: i32 = -32;

/// Fixed-bucket base-2 logarithmic histogram with an exact merge.
///
/// * `push(v)` buckets by `floor(log2(v))` extracted from the float's
///   bit pattern (no libm, no platform variance); zero and negative
///   samples land in a dedicated underflow bucket.
/// * `merge` adds counts bucket-wise — exact, order-independent.
/// * `quantile(p)` returns the geometric midpoint of the bucket holding
///   the `p`-quantile sample: a ≤ ±41 % relative error bound (half a
///   binade), deterministic, and computed without keeping samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    counts: [u64; LOG2_BUCKETS],
    /// Samples ≤ 0 (or below 2⁻³²).
    underflow: u64,
    total: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self::new()
    }
}

/// `floor(log2(v))` for a finite positive f64, from the bit pattern.
fn bin_exp(v: f64) -> i32 {
    let bits = v.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormal: below 2^-1022, far under the clamp floor anyway.
        i32::MIN / 2
    } else {
        biased - 1023
    }
}

impl Log2Hist {
    /// Empty histogram.
    pub fn new() -> Self {
        Log2Hist {
            counts: [0; LOG2_BUCKETS],
            underflow: 0,
            total: 0,
        }
    }

    fn bucket_of(v: f64) -> Option<usize> {
        if !v.is_finite() || v <= 0.0 {
            return None;
        }
        let e = bin_exp(v) - LOG2_MIN_EXP;
        if e < 0 {
            None
        } else {
            Some((e as usize).min(LOG2_BUCKETS - 1))
        }
    }

    /// Record one sample.
    pub fn push(&mut self, v: f64) {
        match Self::bucket_of(v) {
            Some(b) => self.counts[b] += 1,
            None => self.underflow += 1,
        }
        self.total += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Count in value bucket `k` (covering `[2^(k-32), 2^(k-31))`).
    pub fn bucket(&self, k: usize) -> u64 {
        self.counts[k]
    }

    /// Samples that were zero, negative, non-finite or below 2⁻³².
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Add `other`'s counts into `self`. Exact: merging is integer
    /// addition, so any grouping/order of merges yields identical state.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
    }

    /// The geometric midpoint of the bucket containing the `p`-quantile
    /// sample (`0.0` for an empty histogram or when the quantile falls
    /// in the underflow bucket).
    pub fn quantile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if rank <= seen {
            return 0.0;
        }
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let exp = k as i32 + LOG2_MIN_EXP;
                // sqrt(2^e * 2^(e+1)) = 2^(e + 0.5)
                return (2.0f64).powf(exp as f64 + 0.5);
            }
        }
        0.0
    }

    /// The `[lower, upper)` bounds of the bucket containing the
    /// `p`-quantile sample (`(0.0, 0.0)` for an empty histogram or when
    /// the quantile falls in the underflow bucket). Consumers that need
    /// a one-sided guarantee — a keepalive window that must cover at
    /// least the observed gap, a prewarm that must not fire late — take
    /// the conservative edge instead of [`quantile`](Self::quantile)'s
    /// midpoint.
    pub fn quantile_edges(&self, p: f64) -> (f64, f64) {
        if self.total == 0 {
            return (0.0, 0.0);
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if rank <= seen {
            return (0.0, 0.0);
        }
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let exp = k as i32 + LOG2_MIN_EXP;
                return ((2.0f64).powi(exp), (2.0f64).powi(exp + 1));
            }
        }
        (0.0, 0.0)
    }
}

/// [`OnlineStats`] and [`Log2Hist`] over the same sample stream: exact
/// count/mean/std/min/max plus deterministic approximate percentiles,
/// all mergeable across shards.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Welford moments (exact merge).
    pub stats: OnlineStats,
    /// Log₂ histogram (exact merge, approximate quantiles).
    pub hist: Log2Hist,
}

impl Default for StreamSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamSummary {
    /// Empty summary.
    pub fn new() -> Self {
        StreamSummary {
            // Not OnlineStats::default(): the derived Default seeds
            // min/max at 0.0, not ±∞, which poisons merged minima.
            stats: OnlineStats::new(),
            hist: Log2Hist::new(),
        }
    }

    /// Record one sample into both structures.
    pub fn push(&mut self, v: f64) {
        self.stats.push(v);
        self.hist.push(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Exact mean.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Exact sample standard deviation.
    pub fn std(&self) -> f64 {
        self.stats.std()
    }

    /// Exact minimum.
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// Exact maximum.
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Deterministic approximate `p`-quantile (see [`Log2Hist::quantile`]).
    pub fn quantile(&self, p: f64) -> f64 {
        self.hist.quantile(p)
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &StreamSummary) {
        self.stats.merge(&other.stats);
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_are_binades() {
        let mut h = Log2Hist::new();
        // 1.0 and 1.99 share bucket 32 (= [2^0, 2^1)); 2.0 is bucket 33.
        h.push(1.0);
        h.push(1.99);
        h.push(2.0);
        assert_eq!(h.bucket(32), 2);
        assert_eq!(h.bucket(33), 1);
        // Zero and negatives underflow.
        h.push(0.0);
        h.push(-5.0);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn quantile_edges_bracket_the_midpoint() {
        let mut h = Log2Hist::new();
        for v in [0.5, 1.0, 1.5, 3.0, 3.5, 40.0, 700.0] {
            h.push(v);
        }
        for p in [0.05, 0.5, 0.95, 0.99] {
            let (lo, hi) = h.quantile_edges(p);
            let mid = h.quantile(p);
            assert!(lo < mid && mid < hi, "p={p}: {lo} < {mid} < {hi}");
            assert!((hi - 2.0 * lo).abs() < 1e-12, "binade bucket: {lo}..{hi}");
        }
        assert_eq!(Log2Hist::new().quantile_edges(0.5), (0.0, 0.0));
    }

    #[test]
    fn bit_exponent_matches_log2_floor() {
        for v in [1e-9, 3.7e-4, 0.5, 1.0, 1.5, 2.0, 3.0, 1234.5, 9.9e8] {
            assert_eq!(bin_exp(v), v.log2().floor() as i32, "v={v}");
        }
    }

    #[test]
    fn huge_values_clamp_to_top_bucket() {
        let mut h = Log2Hist::new();
        h.push(1e300);
        assert_eq!(h.bucket(LOG2_BUCKETS - 1), 1);
    }

    #[test]
    fn quantile_brackets_the_sample() {
        let mut h = Log2Hist::new();
        for i in 1..=1000 {
            h.push(i as f64);
        }
        // Exact p50 is 500; the bucket midpoint must be within a binade.
        let q = h.quantile(0.5);
        assert!((250.0..1000.0).contains(&q), "p50 ~ {q}");
        let q99 = h.quantile(0.99);
        assert!(q99 >= q, "quantiles must be monotone: {q} .. {q99}");
        assert_eq!(h.quantile(0.0), h.quantile(1e-9));
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(Log2Hist::new().quantile(0.5), 0.0);
    }

    proptest! {
        /// Merging in any grouping equals pushing the concatenation:
        /// (A ∪ B) ∪ C == A ∪ (B ∪ C) == one-pass, bucket for bucket.
        #[test]
        fn log2_merge_is_associative(
            a in prop::collection::vec(0.0f64..1e6, 0..50),
            b in prop::collection::vec(0.0f64..1e6, 0..50),
            c in prop::collection::vec(0.0f64..1e6, 0..50),
        ) {
            let hist = |xs: &[f64]| {
                let mut h = Log2Hist::new();
                for &x in xs { h.push(x); }
                h
            };
            let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));

            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);

            let mut right_inner = hb.clone();
            right_inner.merge(&hc);
            let mut right = ha.clone();
            right.merge(&right_inner);

            let mut all = a.clone();
            all.extend_from_slice(&b);
            all.extend_from_slice(&c);
            let single = hist(&all);

            prop_assert_eq!(&left, &right);
            prop_assert_eq!(&left, &single);
        }

        /// Welford merge reproduces the one-pass moments to float
        /// round-off, for any split point.
        #[test]
        fn welford_merge_matches_single_pass(
            xs in prop::collection::vec(-1e3f64..1e3, 1..120),
            split in 0usize..120,
        ) {
            let split = split.min(xs.len());
            let mut merged = OnlineStats::new();
            let mut right = OnlineStats::new();
            for &x in &xs[..split] { merged.push(x); }
            for &x in &xs[split..] { right.push(x); }
            merged.merge(&right);

            let mut single = OnlineStats::new();
            for &x in &xs { single.push(x); }

            prop_assert_eq!(merged.count(), single.count());
            prop_assert!((merged.mean() - single.mean()).abs() < 1e-9);
            prop_assert!((merged.std() - single.std()).abs() < 1e-6);
            prop_assert_eq!(merged.min(), single.min());
            prop_assert_eq!(merged.max(), single.max());
        }
    }

    #[test]
    fn stream_summary_round_trip() {
        let mut a = StreamSummary::new();
        let mut b = StreamSummary::new();
        for i in 0..100 {
            a.push(1.0 + i as f64);
        }
        for i in 100..200 {
            b.push(1.0 + i as f64);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 200);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 200.0);
        assert!((m.mean() - 100.5).abs() < 1e-9);
        assert!(m.quantile(0.95) > m.quantile(0.5));
    }
}
