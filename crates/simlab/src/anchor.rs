//! The unified anchor-check framework: declare a paper anchor once and
//! derive the human-readable OK/OFF line, the CSV row and the manifest
//! entry from the same declaration.
//!
//! The report-line format reproduces the pre-simlab `bench::anchor_line`
//! byte for byte, so regenerated `*.anchors.txt` artifacts do not churn.

/// One paper-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct AnchorCheck {
    /// Anchor name (the `cloudbench::anchors` constant's name string).
    pub name: &'static str,
    /// Published value.
    pub paper: f64,
    /// Accepted relative tolerance.
    pub rel_tol: f64,
    /// What the campaign measured.
    pub measured: f64,
}

impl AnchorCheck {
    /// Relative error of the measurement against the paper value.
    pub fn rel_err(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured - self.paper) / self.paper
        }
    }

    /// Whether the measurement lands within tolerance.
    pub fn ok(&self) -> bool {
        self.rel_err().abs() <= self.rel_tol
    }

    /// The `  [OK ] name  paper X  measured Y  (+Z%)` report line.
    pub fn line(&self) -> String {
        let verdict = if self.ok() { "OK " } else { "OFF" };
        format!(
            "  [{verdict}] {:<40} paper {:>10.3}  measured {:>10.3}  ({:+.1}%)",
            self.name,
            self.paper,
            self.measured,
            self.rel_err() * 100.0
        )
    }

    /// CSV row `name,paper,measured,rel_err,ok`.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.6},{}",
            self.name,
            self.paper,
            self.measured,
            self.rel_err(),
            self.ok()
        )
    }
}

/// Render a titled block of anchor lines (the `*.anchors.txt` format).
pub fn render_block(title: &str, checks: &[AnchorCheck]) -> String {
    let mut out = format!("{title}\n");
    for c in checks {
        out.push_str(&c.line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_and_errors() {
        let a = AnchorCheck {
            name: "x",
            paper: 10.0,
            rel_tol: 0.1,
            measured: 10.5,
        };
        assert!(a.ok());
        assert!((a.rel_err() - 0.05).abs() < 1e-12);
        assert!(a.line().contains("[OK ]"));
        let b = AnchorCheck {
            measured: 20.0,
            ..a.clone()
        };
        assert!(!b.ok());
        assert!(b.line().contains("[OFF]"));
        assert!(b.csv_row().ends_with("false"));
    }

    #[test]
    fn line_format_matches_legacy_bench_output() {
        let a = AnchorCheck {
            name: "fig1 download, 1 client (MB/s)",
            paper: 13.0,
            rel_tol: 0.15,
            measured: 12.262,
        };
        assert_eq!(
            a.line(),
            "  [OK ] fig1 download, 1 client (MB/s)           paper     13.000  measured     12.262  (-5.7%)"
        );
    }

    #[test]
    fn zero_paper_value_edge() {
        let z = AnchorCheck {
            name: "z",
            paper: 0.0,
            rel_tol: 0.5,
            measured: 0.0,
        };
        assert!(z.ok());
    }

    #[test]
    fn block_has_title_and_one_line_per_check() {
        let c = AnchorCheck {
            name: "a",
            paper: 1.0,
            rel_tol: 0.1,
            measured: 1.0,
        };
        let s = render_block("Paper anchors (T):", &[c.clone(), c]);
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("Paper anchors (T):\n"));
    }
}
