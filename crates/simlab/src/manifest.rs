//! The machine-readable campaign manifest (`results/manifest.json`).
//!
//! Hand-rolled JSON (the workspace builds offline, no serde): fixed
//! field order, two-space indentation, `\n` line endings, floats via
//! Rust's shortest round-trip formatting — so the same campaign state
//! always serializes to the same bytes. Wall-clock (`wall_us`) is the
//! one nondeterministic field; [`Manifest::to_json_normalized`] zeroes
//! it for the shard-invariance comparison.

use crate::anchor::AnchorCheck;

/// One campaign's row in the manifest.
#[derive(Debug, Clone)]
pub struct CampaignEntry {
    /// Campaign name (`fig1` ... `ablations`).
    pub name: String,
    /// Cells executed.
    pub cells: usize,
    /// Wall-clock microseconds for the whole campaign. Microseconds,
    /// not milliseconds: several quick campaigns finish in well under a
    /// millisecond and recorded an unhelpful `0` at ms resolution.
    pub wall_us: u64,
    /// Anchor verdicts.
    pub anchors: Vec<AnchorCheck>,
    /// Files written into the results directory.
    pub artifacts: Vec<String>,
}

/// The full run manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Shard count the run used.
    pub shards: usize,
    /// Fault preset name (`"none"` when no `--faults` was given).
    pub faults: String,
    /// One entry per campaign, in execution order.
    pub campaigns: Vec<CampaignEntry>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Infinity/NaN; the manifest only carries finite
        // measurements, but don't emit invalid JSON if one slips in.
        "null".to_string()
    }
}

impl Manifest {
    /// Serialize to deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.render(false)
    }

    /// Like [`to_json`](Self::to_json) but with `wall_ms` zeroed —
    /// everything that remains must be identical across shard counts.
    pub fn to_json_normalized(&self) -> String {
        self.render(true)
    }

    fn render(&self, normalize: bool) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"shards\": {},\n", self.shards));
        s.push_str(&format!(
            "  \"faults\": \"{}\",\n",
            json_escape(&self.faults)
        ));
        s.push_str("  \"campaigns\": [");
        for (i, c) in self.campaigns.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&c.name)));
            s.push_str(&format!("      \"cells\": {},\n", c.cells));
            let wall = if normalize { 0 } else { c.wall_us };
            s.push_str(&format!("      \"wall_us\": {wall},\n"));
            s.push_str("      \"anchors\": [");
            for (j, a) in c.anchors.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "\n        {{\"name\": \"{}\", \"paper\": {}, \"measured\": {}, \"rel_err\": {}, \"ok\": {}}}",
                    json_escape(a.name),
                    json_f64(a.paper),
                    json_f64(a.measured),
                    json_f64(a.rel_err()),
                    a.ok()
                ));
            }
            if !c.anchors.is_empty() {
                s.push_str("\n      ");
            }
            s.push_str("],\n");
            s.push_str("      \"artifacts\": [");
            for (j, f) in c.artifacts.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\"", json_escape(f)));
            }
            s.push_str("]\n    }");
        }
        if !self.campaigns.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(wall: u64) -> Manifest {
        Manifest {
            quick: true,
            shards: 4,
            faults: "none".to_string(),
            campaigns: vec![CampaignEntry {
                name: "fig1".to_string(),
                cells: 6,
                wall_us: wall,
                anchors: vec![AnchorCheck {
                    name: "fig1 download, 1 client (MB/s)",
                    paper: 13.0,
                    rel_tol: 0.15,
                    measured: 12.262,
                }],
                artifacts: vec!["fig1.csv".to_string(), "fig1.anchors.txt".to_string()],
            }],
        }
    }

    #[test]
    fn serializes_deterministically() {
        assert_eq!(sample(123).to_json(), sample(123).to_json());
        assert_ne!(sample(123).to_json(), sample(456).to_json());
    }

    #[test]
    fn normalization_hides_wall_clock_only() {
        assert_eq!(
            sample(123).to_json_normalized(),
            sample(99999).to_json_normalized()
        );
        assert!(sample(123).to_json().contains("\"wall_us\": 123"));
        assert!(sample(123).to_json_normalized().contains("\"wall_us\": 0"));
    }

    #[test]
    fn json_is_structurally_sound() {
        let j = sample(5).to_json();
        // Cheap structural checks (no JSON parser in the workspace).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"campaigns\""));
        assert!(j.ends_with("}\n"));
        let empty = Manifest::default().to_json();
        assert!(empty.contains("\"campaigns\": []"));
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
