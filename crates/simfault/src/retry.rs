//! The unified retry/backoff policy.
//!
//! Every client-side retry loop in the reproduction — the storage SDK's
//! ServerBusy retries, the ModisAzure worker's idle poll backoff, the
//! manager's enqueue retry, fabric lifecycle ops — is an instance of the
//! same shape: attempt, classify, maybe wait, maybe try again. This
//! module is that shape, written once.
//!
//! Determinism contract: a [`RetryPolicy`] draws jitter only from the
//! RNG stream its caller hands it, creates a timeout event per attempt
//! only when `attempt_timeout` is set, and otherwise schedules nothing.
//! Replacing an open-coded loop with an equivalent policy is therefore
//! event-for-event identical — the seed-level fingerprints of every
//! pre-existing experiment binary prove it.

use std::cell::RefCell;
use std::future::Future;

use simcore::combinators::timeout;
use simcore::prelude::*;

/// How long to wait before attempt `n + 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// No wait between attempts.
    None,
    /// Constant wait (seconds).
    Fixed(f64),
    /// `base_s * factor^attempt`, capped at `max_s`.
    Exponential {
        /// Wait before the first retry (seconds).
        base_s: f64,
        /// Multiplier applied per attempt.
        factor: f64,
        /// Ceiling on the wait (seconds).
        max_s: f64,
    },
}

impl Backoff {
    /// The wait after failed attempt `attempt` (0-based), in seconds.
    pub fn delay_s(&self, attempt: u32) -> f64 {
        match *self {
            Backoff::None => 0.0,
            Backoff::Fixed(s) => s,
            Backoff::Exponential {
                base_s,
                factor,
                max_s,
            } => {
                // powi keeps the sequence bit-exact with the repeated
                // `*= factor` form the open-coded loops used.
                (base_s * factor.powi(attempt.min(1024) as i32)).min(max_s)
            }
        }
    }

    /// Stateful view for loops that walk the sequence and reset it on
    /// progress (the worker's idle poll).
    pub fn seq(self) -> BackoffSeq {
        BackoffSeq {
            backoff: self,
            attempt: 0,
        }
    }
}

/// A cursor over a [`Backoff`] sequence.
#[derive(Debug, Clone)]
pub struct BackoffSeq {
    backoff: Backoff,
    attempt: u32,
}

impl BackoffSeq {
    /// The next wait in the sequence (advances the cursor).
    pub fn next_delay_s(&mut self) -> f64 {
        let d = self.backoff.delay_s(self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        d
    }

    /// Rewind to the start of the sequence (progress was made).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Attempts taken since the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

/// Multiplicative jitter applied to each backoff wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Jitter {
    /// Deterministic waits.
    None,
    /// Uniform in `[0.5, 1.5)` — the 2009 storage SDK's spread, centred
    /// on the nominal wait.
    Centered,
}

/// A complete client retry policy: backoff shape, retry budget,
/// per-attempt timeout and jitter source.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Wait schedule between attempts.
    pub backoff: Backoff,
    /// Retry budget: total attempts = `retries + 1`.
    pub retries: u32,
    /// Client-side timeout wrapped around every attempt.
    pub attempt_timeout: Option<SimDuration>,
    /// Jitter applied to each wait.
    pub jitter: Jitter,
    /// simtrace counter bumped once per retry (not per attempt).
    pub retry_counter: Option<&'static str>,
}

/// Retry budget for loops that never give up (the manager's enqueue).
pub const FOREVER: u32 = u32::MAX;

impl RetryPolicy {
    /// Single attempt, no waiting — still useful for its timeout.
    pub fn none() -> Self {
        RetryPolicy {
            backoff: Backoff::None,
            retries: 0,
            attempt_timeout: None,
            jitter: Jitter::None,
            retry_counter: None,
        }
    }

    /// Fixed wait between attempts.
    pub fn fixed(delay_s: f64, retries: u32) -> Self {
        RetryPolicy {
            backoff: Backoff::Fixed(delay_s),
            retries,
            ..Self::none()
        }
    }

    /// Exponential backoff, uncapped by default.
    pub fn exponential(base_s: f64, factor: f64, retries: u32) -> Self {
        RetryPolicy {
            backoff: Backoff::Exponential {
                base_s,
                factor,
                max_s: f64::INFINITY,
            },
            retries,
            ..Self::none()
        }
    }

    /// Wrap every attempt in a client-side timeout.
    pub fn with_timeout(mut self, d: SimDuration) -> Self {
        self.attempt_timeout = Some(d);
        self
    }

    /// Apply jitter to the waits.
    pub fn with_jitter(mut self, j: Jitter) -> Self {
        self.jitter = j;
        self
    }

    /// Bump a simtrace counter on every retry.
    pub fn with_counter(mut self, name: &'static str) -> Self {
        self.retry_counter = Some(name);
        self
    }

    /// Single-attempt form of [`run`](Self::run): the connection
    /// precheck and the per-attempt timeout, no retries (budget and
    /// backoff are ignored). For operation classes the 2009 SDKs did
    /// not auto-retry — blob transfers and queue/table reads.
    pub async fn run_once<T, E, Fut>(
        &self,
        sim: &Sim,
        mut precheck: impl FnMut() -> Option<E>,
        fut: Fut,
        timeout_error: impl Fn() -> E,
    ) -> Result<T, E>
    where
        Fut: Future<Output = Result<T, E>>,
    {
        if let Some(e) = precheck() {
            return Err(e);
        }
        match self.attempt_timeout {
            Some(d) => match timeout(sim, d, fut).await {
                Ok(r) => r,
                Err(_) => Err(timeout_error()),
            },
            None => fut.await,
        }
    }

    /// Drive `op` under this policy.
    ///
    /// Per attempt: `precheck` runs first (connection-level fault
    /// injection — returning `Some(e)` fails the whole call without
    /// scheduling anything); then the attempt, wrapped in
    /// `attempt_timeout` when set (a timeout maps through
    /// `timeout_error` and is never retried — the 2009 SDK surfaced
    /// client timeouts directly); an `Err` that `retryable` accepts
    /// consumes budget, bumps the counter, waits the jittered backoff
    /// and retries. Budget exhaustion returns the last error.
    ///
    /// `rng` is the caller's jitter stream; required only when
    /// `jitter != Jitter::None`.
    pub async fn run<T, E, F, Fut>(
        &self,
        sim: &Sim,
        rng: Option<&RefCell<SimRng>>,
        mut precheck: impl FnMut() -> Option<E>,
        mut op: F,
        retryable: impl Fn(&E) -> bool,
        timeout_error: impl Fn() -> E,
    ) -> Result<T, E>
    where
        F: FnMut(u32) -> Fut,
        Fut: Future<Output = Result<T, E>>,
    {
        let mut attempt: u32 = 0;
        loop {
            if let Some(e) = precheck() {
                return Err(e);
            }
            let outcome = match self.attempt_timeout {
                Some(d) => match timeout(sim, d, op(attempt)).await {
                    Ok(r) => r,
                    Err(_) => return Err(timeout_error()),
                },
                None => op(attempt).await,
            };
            match outcome {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.retries && retryable(&e) => {
                    if let Some(name) = self.retry_counter {
                        simtrace::counter(name, 1);
                    }
                    let j = match self.jitter {
                        Jitter::None => 1.0,
                        Jitter::Centered => {
                            let rng = rng.expect("jittered RetryPolicy needs an RNG stream");
                            0.5 + rng.borrow_mut().f64()
                        }
                    };
                    let wait = self.backoff.delay_s(attempt) * j;
                    if wait > 0.0 {
                        sim.delay(SimDuration::from_secs_f64(wait)).await;
                    }
                    attempt = attempt.saturating_add(1);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Budgeted form of [`run`](Self::run): every retry withdraws one
    /// credit from `budget` first, and a successful call deposits the
    /// budget's earn-back fraction. With the budget empty a retryable
    /// error fails fast — under overload the whole fleet's *extra*
    /// traffic is bounded by the credits its successes earned, so
    /// retries cannot amplify the storm that is causing them.
    ///
    /// Returns the error together with [`GiveUp`] saying *why* the loop
    /// stopped, so callers can report budget exhaustion distinctly from
    /// plain attempt exhaustion or a non-retryable failure (the
    /// `SloTracker` shed-vs-timeout split rides on this).
    #[allow(clippy::too_many_arguments)]
    pub async fn run_budgeted<T, E, F, Fut>(
        &self,
        sim: &Sim,
        rng: Option<&RefCell<SimRng>>,
        budget: &RetryBudget,
        mut precheck: impl FnMut() -> Option<E>,
        mut op: F,
        retryable: impl Fn(&E) -> bool,
        timeout_error: impl Fn() -> E,
    ) -> Result<T, (E, GiveUp)>
    where
        F: FnMut(u32) -> Fut,
        Fut: Future<Output = Result<T, E>>,
    {
        let mut attempt: u32 = 0;
        loop {
            if let Some(e) = precheck() {
                return Err((e, GiveUp::NotRetryable));
            }
            let outcome = match self.attempt_timeout {
                Some(d) => match timeout(sim, d, op(attempt)).await {
                    Ok(r) => r,
                    // Timeouts are never retried (same contract as
                    // `run`): the attempt already cost a full deadline.
                    Err(_) => return Err((timeout_error(), GiveUp::NotRetryable)),
                },
                None => op(attempt).await,
            };
            match outcome {
                Ok(v) => {
                    budget.deposit();
                    return Ok(v);
                }
                Err(e) if !retryable(&e) => return Err((e, GiveUp::NotRetryable)),
                Err(e) if attempt >= self.retries => return Err((e, GiveUp::AttemptsExhausted)),
                Err(e) if !budget.try_withdraw() => return Err((e, GiveUp::BudgetExhausted)),
                Err(_) => {
                    if let Some(name) = self.retry_counter {
                        simtrace::counter(name, 1);
                    }
                    let j = match self.jitter {
                        Jitter::None => 1.0,
                        Jitter::Centered => {
                            let rng = rng.expect("jittered RetryPolicy needs an RNG stream");
                            0.5 + rng.borrow_mut().f64()
                        }
                    };
                    let wait = self.backoff.delay_s(attempt) * j;
                    if wait > 0.0 {
                        sim.delay(SimDuration::from_secs_f64(wait)).await;
                    }
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }
}

/// Why a [`run_budgeted`](RetryPolicy::run_budgeted) loop gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GiveUp {
    /// The error was not retryable (includes attempt timeouts and
    /// precheck failures).
    NotRetryable,
    /// The policy's per-call attempt budget (`retries`) ran out.
    AttemptsExhausted,
    /// The client's cross-call retry budget had no credit left.
    BudgetExhausted,
}

/// A per-client token bucket of retry credits (the "retry budget" of
/// the SRE literature): starts full, each retry withdraws one credit,
/// each *success* deposits `earn_per_success` back (capped at `max`).
/// Under sustained overload successes dry up, the bucket drains, and
/// the client's retry traffic throttles to its success-earned rate —
/// instead of multiplying every shed response into `retries` more
/// arrivals at exactly the moment the service can least afford them.
#[derive(Debug)]
pub struct RetryBudget {
    max: f64,
    earn_per_success: f64,
    balance: std::cell::Cell<f64>,
}

impl RetryBudget {
    /// A budget starting (and capped) at `max` credits, earning
    /// `earn_per_success` back per successful call.
    pub fn new(max: f64, earn_per_success: f64) -> Self {
        assert!(max >= 0.0 && earn_per_success >= 0.0);
        RetryBudget {
            max,
            earn_per_success,
            balance: std::cell::Cell::new(max),
        }
    }

    /// Withdraw one credit; `false` (no state change) when fewer than
    /// one credit remains.
    pub fn try_withdraw(&self) -> bool {
        let b = self.balance.get();
        if b >= 1.0 {
            self.balance.set(b - 1.0);
            true
        } else {
            false
        }
    }

    /// Deposit the per-success earn-back, capped at the maximum.
    pub fn deposit(&self) {
        self.balance
            .set((self.balance.get() + self.earn_per_success).min(self.max));
    }

    /// Current credit balance.
    pub fn balance(&self) -> f64 {
        self.balance.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn exponential_matches_doubling_loop() {
        // The storage SDK's loop: backoff = 2, then *= 2 per retry.
        let b = Backoff::Exponential {
            base_s: 2.0,
            factor: 2.0,
            max_s: f64::INFINITY,
        };
        let mut open_coded = 2.0;
        for attempt in 0..8 {
            assert_eq!(b.delay_s(attempt), open_coded, "attempt {attempt}");
            open_coded *= 2.0;
        }
    }

    #[test]
    fn exponential_caps_like_the_worker_idle_loop() {
        // Worker idle poll: 5 s doubling to a 600 s ceiling.
        let b = Backoff::Exponential {
            base_s: 5.0,
            factor: 2.0,
            max_s: 600.0,
        };
        let mut seq = b.seq();
        let mut got = Vec::new();
        for _ in 0..9 {
            got.push(seq.next_delay_s());
        }
        assert_eq!(
            got,
            vec![5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 600.0, 600.0]
        );
        seq.reset();
        assert_eq!(seq.next_delay_s(), 5.0);
    }

    #[test]
    fn fixed_and_none_backoffs() {
        assert_eq!(Backoff::Fixed(2.0).delay_s(7), 2.0);
        assert_eq!(Backoff::None.delay_s(0), 0.0);
    }

    #[test]
    fn budget_exhaustion_returns_last_error_after_all_attempts() {
        let sim = Sim::new(11);
        let attempts = Rc::new(Cell::new(0u32));
        let a = attempts.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            RetryPolicy::fixed(1.0, 3)
                .run(
                    &s,
                    None,
                    || None::<&'static str>,
                    |_| {
                        a.set(a.get() + 1);
                        async { Err::<(), _>("busy") }
                    },
                    |e| *e == "busy",
                    || "timeout",
                )
                .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Err("busy"));
        assert_eq!(attempts.get(), 4, "retries=3 means 4 attempts");
        // Three fixed 1 s waits elapsed between the four attempts.
        assert_eq!(sim.now().as_secs_f64(), 3.0);
    }

    #[test]
    fn non_retryable_error_fails_fast() {
        let sim = Sim::new(12);
        let attempts = Rc::new(Cell::new(0u32));
        let a = attempts.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            RetryPolicy::fixed(1.0, 5)
                .run(
                    &s,
                    None,
                    || None::<&'static str>,
                    |_| {
                        a.set(a.get() + 1);
                        async { Err::<(), _>("fatal") }
                    },
                    |e| *e == "busy",
                    || "timeout",
                )
                .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Err("fatal"));
        assert_eq!(attempts.get(), 1);
        assert_eq!(sim.now().as_secs_f64(), 0.0);
    }

    #[test]
    fn precheck_failure_schedules_nothing() {
        let sim = Sim::new(13);
        let s = sim.clone();
        let h = sim.spawn(async move {
            RetryPolicy::none()
                .with_timeout(SimDuration::from_secs_f64(30.0))
                .run(
                    &s,
                    None,
                    || Some("connection"),
                    |_| async { Ok::<u32, _>(1) },
                    |_| false,
                    || "timeout",
                )
                .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Err("connection"));
    }

    #[test]
    fn attempt_timeout_maps_through_timeout_error() {
        let sim = Sim::new(14);
        let s = sim.clone();
        let slow = sim.clone();
        let h = sim.spawn(async move {
            RetryPolicy::none()
                .with_timeout(SimDuration::from_secs_f64(5.0))
                .run(
                    &s,
                    None,
                    || None::<&'static str>,
                    move |_| {
                        let slow = slow.clone();
                        async move {
                            slow.delay(SimDuration::from_secs_f64(60.0)).await;
                            Ok::<(), _>(())
                        }
                    },
                    |_| true,
                    || "timeout",
                )
                .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Err("timeout"));
        assert_eq!(sim.now().as_secs_f64(), 5.0, "gave up at the timeout");
    }

    #[test]
    fn retry_budget_withdraws_and_earns_back() {
        let b = RetryBudget::new(2.0, 0.5);
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "bucket empty");
        b.deposit();
        assert!(!b.try_withdraw(), "half a credit is not a credit");
        b.deposit();
        assert!(b.try_withdraw(), "two successes earned one retry");
        for _ in 0..100 {
            b.deposit();
        }
        assert_eq!(b.balance(), 2.0, "capped at max");
    }

    #[test]
    fn budgeted_run_distinguishes_exhaustion_classes() {
        // Plenty of credit: attempts exhaust first.
        let sim = Sim::new(16);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let budget = RetryBudget::new(10.0, 0.0);
            let res = RetryPolicy::fixed(1.0, 2)
                .run_budgeted(
                    &s,
                    None,
                    &budget,
                    || None::<&'static str>,
                    |_| async { Err::<(), _>("busy") },
                    |e| *e == "busy",
                    || "timeout",
                )
                .await;
            (res, budget.balance())
        });
        sim.run();
        let (res, balance) = h.try_take().unwrap();
        assert_eq!(res, Err(("busy", GiveUp::AttemptsExhausted)));
        assert_eq!(balance, 8.0, "two retries withdrew two credits");

        // One credit: the budget runs dry before the attempt cap.
        let sim = Sim::new(17);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let budget = RetryBudget::new(1.0, 0.0);
            RetryPolicy::fixed(1.0, 5)
                .run_budgeted(
                    &s,
                    None,
                    &budget,
                    || None::<&'static str>,
                    |_| async { Err::<(), _>("busy") },
                    |e| *e == "busy",
                    || "timeout",
                )
                .await
        });
        sim.run();
        assert_eq!(
            h.try_take().unwrap(),
            Err(("busy", GiveUp::BudgetExhausted))
        );
        assert_eq!(sim.now().as_secs_f64(), 1.0, "one funded retry ran");

        // Non-retryable error reports as such and costs no credit.
        let sim = Sim::new(18);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let budget = RetryBudget::new(1.0, 0.0);
            let res = RetryPolicy::fixed(1.0, 5)
                .run_budgeted(
                    &s,
                    None,
                    &budget,
                    || None::<&'static str>,
                    |_| async { Err::<(), _>("fatal") },
                    |e| *e == "busy",
                    || "timeout",
                )
                .await;
            (res, budget.balance())
        });
        sim.run();
        let (res, balance) = h.try_take().unwrap();
        assert_eq!(res, Err(("fatal", GiveUp::NotRetryable)));
        assert_eq!(balance, 1.0);
    }

    #[test]
    fn budgeted_run_deposits_on_success() {
        let sim = Sim::new(19);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let budget = RetryBudget::new(4.0, 0.5);
            let tries = Cell::new(0u32);
            let res = RetryPolicy::fixed(1.0, 5)
                .run_budgeted(
                    &s,
                    None,
                    &budget,
                    || None::<&'static str>,
                    |_| {
                        tries.set(tries.get() + 1);
                        let n = tries.get();
                        async move {
                            if n <= 2 {
                                Err("busy")
                            } else {
                                Ok(())
                            }
                        }
                    },
                    |e| *e == "busy",
                    || "timeout",
                )
                .await;
            (res, budget.balance())
        });
        sim.run();
        let (res, balance) = h.try_take().unwrap();
        assert!(res.is_ok());
        // Two withdrawals then one success deposit: 4 - 2 + 0.5.
        assert_eq!(balance, 2.5);
    }

    #[test]
    fn centered_jitter_scales_waits_within_bounds() {
        let sim = Sim::new(15);
        let rng = RefCell::new(sim.rng("test.jitter"));
        let s = sim.clone();
        let h = sim.spawn(async move {
            let tries = Cell::new(0u32);
            RetryPolicy::fixed(10.0, 2)
                .with_jitter(Jitter::Centered)
                .run(
                    &s,
                    Some(&rng),
                    || None::<&'static str>,
                    |_| {
                        tries.set(tries.get() + 1);
                        let n = tries.get();
                        async move {
                            if n <= 2 {
                                Err("busy")
                            } else {
                                Ok(())
                            }
                        }
                    },
                    |e| *e == "busy",
                    || "timeout",
                )
                .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Ok(()));
        let elapsed = sim.now().as_secs_f64();
        // Two jittered 10 s waits, each in [5, 15).
        assert!((10.0..30.0).contains(&elapsed), "elapsed={elapsed}");
    }
}
