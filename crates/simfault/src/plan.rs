//! Declarative fault plans.
//!
//! A [`FaultPlan`] is everything the injector needs to know about what
//! should go wrong in a run: steady-state storage fault *rates* (the
//! paper's Table 2 calibration, drawn per-operation by the storage
//! services) plus scheduled *episodes* — windows of virtual time during
//! which a structural fault is active (a host crash, a network
//! partition, a front-end error storm).
//!
//! Rates model the background failure floor a healthy deployment shows;
//! episodes model the correlated incidents a chaos harness injects.
//! The default [`FaultPlan::paper`] has rates only, so a fault-enabled
//! ModisAzure campaign reproduces the Table 2 outcome shares as an
//! emergent property while staying byte-identical to the pre-simfault
//! calibration.

/// Steady-state storage fault rates (per-operation probabilities).
///
/// The paper's Table 2 rates are *observed at app level*; these
/// service-level rates are set so ModisAzure's operation mix reproduces
/// them (see each constant's derivation in [`rates`]).
pub mod rates {
    /// Probability a blob GET returns payload that fails verification
    /// ("Corrupt blob read": 3 107 of ~3.05 M task executions ≈ 0.10 %;
    /// a ModisAzure task does ~3.5 reads, so per-GET ≈ 0.10 % / 3.5).
    pub const BLOB_CORRUPT_READ_P: f64 = 5.8e-4;

    /// Probability a blob GET aborts mid-transfer ("Blob read fail" 0.02 %).
    pub const BLOB_READ_FAIL_P: f64 = 1.1e-4;

    /// Probability any storage call fails at connection setup
    /// ("Connection failure" 0.29 % of task executions at ~8 storage calls
    /// per execution ⇒ per-op ≈ 3.5e-4).
    pub const CONNECTION_FAIL_P: f64 = 6.8e-4;

    /// Probability of an unclassified internal server error, per operation
    /// ("Internal storage client error": 10 occurrences in 3 M executions).
    pub const INTERNAL_ERROR_P: f64 = 9.0e-7;

    /// Probability a blob op hits a transient server-busy episode even
    /// without queue overload ("Server busy" 0.04 % of executions at ~5
    /// blob ops per execution). Blob ops have no SDK retry, so these
    /// surface directly.
    pub const SPURIOUS_BUSY_P: f64 = 1.6e-4;
}

/// Steady-state storage fault switches, consumed by `azstore` when a
/// stamp is built from a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaults {
    /// Master switch; microbenchmarks run clean, ModisAzure runs faulty.
    pub enabled: bool,
    /// P(connection setup failure) per operation.
    pub connection_fail_p: f64,
    /// P(payload corruption) per blob GET.
    pub corrupt_read_p: f64,
    /// P(mid-transfer abort) per blob GET.
    pub read_fail_p: f64,
    /// P(spurious ServerBusy) per operation.
    pub spurious_busy_p: f64,
    /// P(internal error) per operation.
    pub internal_error_p: f64,
}

impl StorageFaults {
    /// Everything off — microbenchmark conditions.
    pub fn clean() -> Self {
        StorageFaults {
            enabled: false,
            connection_fail_p: 0.0,
            corrupt_read_p: 0.0,
            read_fail_p: 0.0,
            spurious_busy_p: 0.0,
            internal_error_p: 0.0,
        }
    }

    /// Rates calibrated to the ModisAzure Table 2 breakdown.
    pub fn paper() -> Self {
        StorageFaults {
            enabled: true,
            connection_fail_p: rates::CONNECTION_FAIL_P,
            corrupt_read_p: rates::BLOB_CORRUPT_READ_P,
            read_fail_p: rates::BLOB_READ_FAIL_P,
            spurious_busy_p: rates::SPURIOUS_BUSY_P,
            internal_error_p: rates::INTERNAL_ERROR_P,
        }
    }
}

/// What kind of structural fault an episode injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Datacenter link degradation: RTTs multiply by this factor.
    LinkDegrade {
        /// RTT multiplier (> 1).
        rtt_multiplier: f64,
    },
    /// Network partition: traffic effectively stops (RTTs stretch past
    /// every client timeout, so ops surface as timeouts, not magic).
    NetPartition,
    /// Storage front-end error storm: ops stall then may 500.
    FrontendStorm {
        /// P(InternalError) per operation during the storm.
        error_p: f64,
        /// Added front-end stall per operation (seconds).
        stall_s: f64,
    },
    /// Partition-server reassignment: mutations stall while the range
    /// map moves (the paper's partition layer is a black box; this is
    /// its visible symptom).
    PartitionStall {
        /// Added commit stall per mutation (seconds).
        stall_s: f64,
    },
    /// Fabric host crash: compute speed drops to zero until the window
    /// ends (VM restart).
    HostCrash {
        /// Index of the crashed host in the pool.
        host: u64,
    },
    /// Gray failure: the host keeps running at a fraction of its speed.
    GrayFailure {
        /// Index of the slow host.
        host: u64,
        /// Residual speed multiplier in (0, 1).
        speed: f64,
    },
    /// Whole-stamp network partition: every request to the stamp (and
    /// its inter-stamp replication traffic) times out while the window
    /// is active; the stamp itself keeps running and rejoins intact.
    StampPartition {
        /// Index of the partitioned stamp in the geo set.
        stamp: u64,
    },
    /// Whole-stamp crash: as [`FaultKind::StampPartition`] from the
    /// outside, but state written only to this stamp during the window
    /// is lost (the geo layer's RPO tail).
    StampCrash {
        /// Index of the crashed stamp in the geo set.
        stamp: u64,
    },
}

/// The RTT multiplier a [`FaultKind::NetPartition`] applies: large
/// enough that any operation spanning the partition outlives every
/// client timeout in the system, so partitions surface as the timeouts
/// the paper's clients actually saw.
pub const PARTITION_RTT_MULTIPLIER: f64 = 1.0e4;

/// One scheduled fault window on the virtual-time axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEpisode {
    /// Window start (virtual seconds).
    pub start_s: f64,
    /// Window length (virtual seconds).
    pub duration_s: f64,
    /// What goes wrong during the window.
    pub kind: FaultKind,
}

impl FaultEpisode {
    /// Window end (virtual seconds).
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// Is the window active at `t_s`?
    pub fn active_at(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.end_s()
    }

    /// Short label for traces ("host_crash", "net_partition", …).
    pub fn label(&self) -> &'static str {
        match self.kind {
            FaultKind::LinkDegrade { .. } => "link_degrade",
            FaultKind::NetPartition => "net_partition",
            FaultKind::FrontendStorm { .. } => "frontend_storm",
            FaultKind::PartitionStall { .. } => "partition_stall",
            FaultKind::HostCrash { .. } => "host_crash",
            FaultKind::GrayFailure { .. } => "gray_failure",
            FaultKind::StampPartition { .. } => "stamp_partition",
            FaultKind::StampCrash { .. } => "stamp_crash",
        }
    }
}

/// A complete, declarative fault schedule for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Preset name (for `--faults <name>` and trace labels).
    pub name: &'static str,
    /// Steady-state storage fault rates.
    pub storage: StorageFaults,
    /// Scheduled structural fault windows.
    pub episodes: Vec<FaultEpisode>,
}

impl FaultPlan {
    /// No faults at all — microbenchmark conditions.
    pub fn none() -> Self {
        FaultPlan {
            name: "none",
            storage: StorageFaults::clean(),
            episodes: Vec::new(),
        }
    }

    /// The paper-calibrated plan: Table 2 steady-state rates, no
    /// structural episodes. This is the ModisAzure default.
    pub fn paper() -> Self {
        FaultPlan {
            name: "paper",
            storage: StorageFaults::paper(),
            episodes: Vec::new(),
        }
    }

    /// Chaos preset for the CI smoke scenario: paper rates plus a
    /// front-end storm, a partition-server stall, a host crash, a
    /// network partition and a lingering gray failure, spread over the
    /// first day of the campaign.
    pub fn crash_partition() -> Self {
        FaultPlan {
            name: "crash-partition",
            storage: StorageFaults::paper(),
            episodes: vec![
                FaultEpisode {
                    start_s: 3_600.0,
                    duration_s: 900.0,
                    kind: FaultKind::FrontendStorm {
                        error_p: 0.15,
                        stall_s: 2.5,
                    },
                },
                FaultEpisode {
                    start_s: 5_400.0,
                    duration_s: 600.0,
                    kind: FaultKind::PartitionStall { stall_s: 12.0 },
                },
                FaultEpisode {
                    start_s: 7_200.0,
                    duration_s: 3_600.0,
                    kind: FaultKind::HostCrash { host: 3 },
                },
                FaultEpisode {
                    start_s: 14_400.0,
                    duration_s: 1_800.0,
                    kind: FaultKind::NetPartition,
                },
                FaultEpisode {
                    start_s: 21_600.0,
                    duration_s: 7_200.0,
                    kind: FaultKind::GrayFailure {
                        host: 5,
                        speed: 0.35,
                    },
                },
            ],
        }
    }

    /// Look a preset up by its `--faults` name.
    pub fn by_name(name: &str) -> Option<FaultPlan> {
        match name {
            "none" | "off" => Some(FaultPlan::none()),
            "paper" | "default" => Some(FaultPlan::paper()),
            "crash-partition" | "crash_partition" => Some(FaultPlan::crash_partition()),
            _ => None,
        }
    }

    /// Names accepted by [`FaultPlan::by_name`] (for usage messages).
    pub const PRESETS: &'static [&'static str] = &["none", "paper", "crash-partition"];

    /// True when installing this plan changes nothing.
    pub fn is_noop(&self) -> bool {
        !self.storage.enabled && self.episodes.is_empty()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        for name in FaultPlan::PRESETS {
            assert!(FaultPlan::by_name(name).is_some(), "{name}");
        }
        assert_eq!(FaultPlan::by_name("off"), Some(FaultPlan::none()));
        assert!(FaultPlan::by_name("bogus").is_none());
    }

    #[test]
    fn paper_plan_is_rates_only() {
        let p = FaultPlan::paper();
        assert!(p.storage.enabled);
        assert!(p.episodes.is_empty());
        assert!(!p.is_noop());
        assert!(FaultPlan::none().is_noop());
    }

    #[test]
    fn episode_windows_are_half_open() {
        let e = FaultEpisode {
            start_s: 100.0,
            duration_s: 50.0,
            kind: FaultKind::NetPartition,
        };
        assert!(!e.active_at(99.9));
        assert!(e.active_at(100.0));
        assert!(e.active_at(149.9));
        assert!(!e.active_at(150.0));
        assert_eq!(e.label(), "net_partition");
    }

    #[test]
    fn crash_partition_episodes_are_ordered_and_disjoint_kinds() {
        let p = FaultPlan::crash_partition();
        assert_eq!(p.episodes.len(), 5);
        for w in p.episodes.windows(2) {
            assert!(w[0].start_s <= w[1].start_s);
        }
        assert!(p.storage.enabled, "chaos preset keeps the paper rates");
    }
}
