//! # simfault — deterministic fault injection & unified retry policy
//!
//! The reproduction's chaos harness. The paper's most distinctive data
//! is its failure study (Table 2: ~3.05 M ModisAzure task executions
//! classified into outcome classes), and a simulator that only models
//! the happy path can't reproduce it mechanistically. This crate
//! supplies the two missing pieces:
//!
//! * [`plan`] — declarative [`FaultPlan`]s: steady-state storage fault
//!   rates (the Table 2 calibration, moved here from `azstore::calib`)
//!   plus scheduled structural episodes — host crashes, gray failures,
//!   network partitions, storage front-end storms, partition-server
//!   stalls.
//! * [`inject`] — the thread-local injector that activates a plan for
//!   one simulation, observing episode edges through the simcore
//!   kernel-event hook and answering model-layer queries
//!   ([`host_speed`], [`net_rtt_multiplier`], [`frontend_fault`],
//!   [`partition_stall`]) on their existing decision points.
//! * [`retry`] — the unified [`RetryPolicy`] (fixed / exponential /
//!   jittered backoff, per-attempt timeouts, retry budgets) that
//!   replaced the ad-hoc retry loops previously copied across the
//!   storage SDK clients, the ModisAzure worker/manager and fabric
//!   lifecycle code.
//!
//! ## Determinism
//!
//! Everything is a pure function of the seed and the plan: the injector
//! draws from its own named RNG streams (`simfault.*`), so installing a
//! plan with no episodes leaves every other stream — and therefore the
//! entire event sequence — untouched. Identical seed + identical plan
//! ⇒ byte-identical traces (property-tested in the workspace root).
//!
//! ## Example
//! ```
//! use simcore::prelude::*;
//! use simfault::{FaultKind, FaultPlan};
//!
//! let sim = Sim::new(7);
//! let mut plan = FaultPlan::paper();
//! plan.episodes.push(simfault::FaultEpisode {
//!     start_s: 60.0,
//!     duration_s: 30.0,
//!     kind: FaultKind::HostCrash { host: 0 },
//! });
//! let _guard = simfault::install(&sim, &plan);
//! // Model code now sees host 0 at zero speed inside [60, 90).
//! assert_eq!(simfault::host_speed(0, 75.0), Some((0.0, 90.0)));
//! ```

#![warn(missing_docs)]

pub mod inject;
pub mod plan;
pub mod retry;

pub use inject::{
    enabled, frontend_fault, host_speed, install, net_rtt_multiplier, partition_stall,
    stamp_crashed, stamp_down, FrontendFault, InstallGuard,
};
pub use plan::{rates, FaultEpisode, FaultKind, FaultPlan, StorageFaults};
pub use retry::{Backoff, BackoffSeq, GiveUp, Jitter, RetryBudget, RetryPolicy, FOREVER};
